//! The TCP server: accept loop, per-connection threads, admission
//! control and graceful drain.
//!
//! Architecture (one box per thread):
//!
//! ```text
//!   accept loop (run)        connection threads          worker pool
//!   ┌───────────────┐   ┌──────────────────────┐   ┌─────────────────┐
//!   │ nonblocking    │   │ read lines (100 ms    │   │ N threads drain │
//!   │ accept, polls  ├──▶│ timeout, polls the    ├──▶│ explore jobs;   │
//!   │ the shutdown   │   │ shutdown flag);       │   │ results return  │
//!   │ flag           │   │ cheap requests inline │◀──┤ over a channel  │
//!   └───────────────┘   └──────────────────────┘   └─────────────────┘
//! ```
//!
//! * **Backpressure** — an `explore` is admitted only while fewer than
//!   `max_inflight` explorations are queued or running; past that the
//!   client gets a typed [`Response::Busy`] immediately instead of an
//!   unbounded queue.
//! * **Panic isolation** — every request is handled under
//!   `catch_unwind`, twice for explorations (once around the whole
//!   handler, once inside the worker job), so one poisoned request
//!   produces one `internal` error response and the server keeps serving.
//! * **Graceful drain** — a `shutdown` request flips a shared flag; the
//!   accept loop stops, every connection thread finishes its buffered
//!   lines and exits at the next 100 ms poll, queued explorations drain,
//!   and [`Server::run`] returns `Ok(())` (the CLI maps that to exit 0).
//!   There is no in-process SIGINT hook (that would need `unsafe` signal
//!   code); embedders can wire one to [`Server::shutdown_handle`].

use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use crate::manager::{RecoveryReport, SessionManager};
use crate::pool::WorkerPool;
use crate::protocol::{ErrorKind, Request, Response, ServiceError};
use crate::replication::Replicator;

/// How long blocked reads and accept polls wait before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Maximum bytes one request line may occupy. A client streaming data
/// without a newline would otherwise grow the connection buffer without
/// bound; past this limit the connection gets one protocol error reply
/// and is closed. 4 MiB comfortably fits any real spec.
const MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads running explorations.
    pub workers: usize,
    /// Maximum explorations queued or running before `busy` replies.
    pub max_inflight: usize,
    /// Default per-exploration thread count (a request's `jobs` field
    /// overrides it).
    pub jobs: usize,
    /// Directory for the write-ahead session journal. `None` keeps every
    /// session purely in memory (the pre-journal behavior).
    pub state_dir: Option<PathBuf>,
    /// Journal records tolerated before a compaction snapshot rewrites
    /// the log down to the live sessions. 0 disables compaction.
    pub snapshot_every: usize,
    /// Run as a warm standby: refuse direct mutations, accept state over
    /// the replication stream until promoted.
    pub standby: bool,
    /// Ship every committed mutation to the standby at this `host:port`
    /// address (the primary half of a replicated pair).
    pub replicate_to: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_inflight: 64,
            jobs: 1,
            state_dir: None,
            snapshot_every: 1024,
            standby: false,
            replicate_to: None,
        }
    }
}

/// A bound, not-yet-running service instance.
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
    recovery: Option<RecoveryReport>,
    /// Chaos-only "power cord": when set, the accept loop severs every
    /// connection and returns immediately — no drain, no journal
    /// ceremony — simulating `kill -9` inside one test process.
    #[cfg(feature = "fault-inject")]
    kill: Arc<AtomicBool>,
}

/// Everything a connection thread needs, cloned per connection.
#[derive(Clone)]
struct ConnCtx {
    manager: Arc<SessionManager>,
    pool: Arc<WorkerPool>,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<AtomicUsize>,
    max_inflight: usize,
}

impl Server {
    /// Binds the listener. Pass port 0 to let the OS pick one (read it
    /// back with [`local_addr`](Server::local_addr)).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let (manager, recovery) = match &config.state_dir {
            None => (SessionManager::new(config.jobs), None),
            Some(dir) => {
                let (manager, report) =
                    SessionManager::recover(config.jobs, dir, config.snapshot_every)?;
                (manager, Some(report))
            }
        };
        if config.standby {
            manager.mark_standby();
        }
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            manager: Arc::new(manager),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
            recovery,
            #[cfg(feature = "fault-inject")]
            kill: Arc::new(AtomicBool::new(false)),
        })
    }

    /// What journal recovery restored at bind time; `None` without a
    /// `state_dir`.
    #[must_use]
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The session manager (shared with every connection).
    #[must_use]
    pub fn manager(&self) -> Arc<SessionManager> {
        Arc::clone(&self.manager)
    }

    /// The drain flag: storing `true` makes [`run`](Server::run) stop
    /// accepting, drain and return. The wire `shutdown` request sets the
    /// same flag; this handle exists for embedders (e.g. a signal hook).
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The chaos kill switch (chaos tests only): storing `true` makes
    /// [`run`](Server::run) sever every live connection and return
    /// without draining — the in-process equivalent of `kill -9`.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn kill_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.kill)
    }

    /// Serves until a `shutdown` request (or the
    /// [`shutdown_handle`](Server::shutdown_handle)) drains the server.
    ///
    /// # Errors
    ///
    /// Only fatal listener errors; per-connection and per-request
    /// failures are answered on the wire, never returned here.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut replicator = self
            .config
            .replicate_to
            .as_ref()
            .map(|addr| Replicator::start(Arc::clone(&self.manager), addr.clone()));
        let pool = Arc::new(WorkerPool::new(self.config.workers));
        let inflight = Arc::new(AtomicUsize::new(0));
        let ctx = ConnCtx {
            manager: self.manager,
            pool: Arc::clone(&pool),
            shutdown: Arc::clone(&self.shutdown),
            inflight,
            max_inflight: self.config.max_inflight,
        };
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // Live sockets, registered so the chaos kill switch can sever
        // them. Each handler *removes* its entry on exit — holding a
        // clone past the handler's death would keep the socket open and
        // rob the peer of the EOF that a server-initiated close promises.
        #[cfg(feature = "fault-inject")]
        let live_streams = LiveStreams::default();
        #[cfg(feature = "fault-inject")]
        let mut next_conn_id: u64 = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            #[cfg(feature = "fault-inject")]
            if self.kill.load(Ordering::SeqCst) {
                // Simulated `kill -9`: sever every connection and vanish.
                // No drain, no joins — in-flight work is abandoned just
                // as a real process death would abandon it. (Connection
                // and worker threads die on their next I/O or are leaked
                // for the remainder of the test process.)
                live_streams.sever_all();
                if let Some(replicator) = replicator.as_mut() {
                    replicator.stop();
                }
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    #[cfg(feature = "fault-inject")]
                    let registration = {
                        let id = next_conn_id;
                        next_conn_id += 1;
                        live_streams.register(id, stream.try_clone().ok())
                    };
                    let ctx = ctx.clone();
                    connections.retain(|h| !h.is_finished());
                    connections.push(std::thread::spawn(move || {
                        #[cfg(feature = "fault-inject")]
                        let _registration = registration;
                        handle_connection(stream, &ctx);
                    }));
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: connection threads notice the flag within one poll
        // interval and exit; then let the pool finish queued work.
        for handle in connections {
            let _ = handle.join();
        }
        drop(ctx);
        if let Some(replicator) = replicator.as_mut() {
            replicator.stop();
        }
        if let Ok(pool) = Arc::try_unwrap(pool) {
            pool.shutdown();
        }
        Ok(())
    }
}

/// Registry of live connection sockets, used only by the chaos kill
/// switch. Handlers deregister on exit (via [`StreamRegistration`]'s
/// `Drop`, so a panicking handler deregisters too); a clone that
/// outlived its handler would hold the TCP connection open and suppress
/// the EOF every server-initiated close guarantees the peer.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Default)]
struct LiveStreams {
    inner: Arc<std::sync::Mutex<std::collections::HashMap<u64, TcpStream>>>,
}

#[cfg(feature = "fault-inject")]
impl LiveStreams {
    fn register(&self, id: u64, stream: Option<TcpStream>) -> StreamRegistration {
        if let Some(stream) = stream {
            self.lock().insert(id, stream);
        }
        StreamRegistration { registry: self.clone(), id }
    }

    fn sever_all(&self) {
        for stream in self.lock().values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, std::collections::HashMap<u64, TcpStream>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Removes a connection's kill-switch entry when its handler exits.
#[cfg(feature = "fault-inject")]
struct StreamRegistration {
    registry: LiveStreams,
    id: u64,
}

#[cfg(feature = "fault-inject")]
impl Drop for StreamRegistration {
    fn drop(&mut self) {
        self.registry.lock().remove(&self.id);
    }
}

/// Writes one typed `protocol` error reply before a server-initiated
/// close, so the peer never sees a silent disconnect it caused.
fn refuse(writer: &mut TcpStream, message: String) {
    let mut out = Response::Error(ServiceError::new(ErrorKind::Protocol, message)).encode();
    out.push('\n');
    let _ = writer.write_all(out.as_bytes());
    let _ = writer.flush();
}

/// Reads newline-delimited requests off one socket until EOF, an I/O
/// error, or drain. Every close the *server* decides on (oversized line,
/// truncated request) is preceded by a typed `protocol` error reply —
/// never a silent disconnect.
fn handle_connection(stream: TcpStream, ctx: &ConnCtx) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            if line.len() > MAX_LINE_BYTES {
                // A completed line past the limit must be refused like a
                // partial one — parsing it would let a newline smuggled
                // at the end of a flood bypass the cap.
                refuse(&mut writer, format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                return;
            }
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let mut out = respond(text, ctx).encode();
            out.push('\n');
            if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            refuse(&mut writer, format!("request line exceeds {MAX_LINE_BYTES} bytes"));
            return;
        }
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    // The peer half-closed mid-request. Tell it what got
                    // lost before closing instead of vanishing silently.
                    refuse(
                        &mut writer,
                        format!(
                            "truncated request: EOF after {} bytes with no newline",
                            buf.len()
                        ),
                    );
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    IoErrorKind::WouldBlock | IoErrorKind::TimedOut | IoErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line with panic isolation.
fn respond(line: &str, ctx: &ConnCtx) -> Response {
    match catch_unwind(AssertUnwindSafe(|| route(line, ctx))) {
        Ok(response) => response,
        Err(payload) => Response::Error(ServiceError::new(
            ErrorKind::Internal,
            format!("request handler panicked: {}", panic_message(&payload)),
        )),
    }
}

/// Decodes and dispatches: `shutdown` flips the drain flag, `explore`
/// goes through admission control and the worker pool, everything else
/// is answered inline by the manager.
fn route(line: &str, ctx: &ConnCtx) -> Response {
    let (request, req_id) = match Request::decode_tagged(line) {
        Ok(decoded) => decoded,
        Err(e) => return Response::Error(e),
    };
    match request {
        Request::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
        Request::Explore { session, params } => {
            let Some(token) = InflightToken::try_acquire(&ctx.inflight, ctx.max_inflight)
            else {
                let inflight = ctx.inflight.load(Ordering::SeqCst);
                return Response::Busy {
                    inflight: inflight as u64,
                    max_inflight: ctx.max_inflight as u64,
                    retry_after_ms: retry_after_ms(inflight, ctx.max_inflight),
                };
            };
            let (tx, rx) = mpsc::channel::<Response>();
            let manager = Arc::clone(&ctx.manager);
            let job = Box::new(move || {
                let _token = token;
                let result =
                    catch_unwind(AssertUnwindSafe(|| manager.explore(&session, &params)));
                let response = match result {
                    Ok(Ok(run)) => Response::Explored { session, run },
                    Ok(Err(e)) => Response::Error(e),
                    Err(payload) => Response::Error(ServiceError::new(
                        ErrorKind::Internal,
                        format!("exploration panicked: {}", panic_message(&payload)),
                    )),
                };
                let _ = tx.send(response);
            });
            if ctx.pool.execute(job).is_err() {
                return Response::Error(ServiceError::new(
                    ErrorKind::Internal,
                    "server is shutting down",
                ));
            }
            rx.recv().unwrap_or_else(|_| {
                Response::Error(ServiceError::new(ErrorKind::Internal, "worker vanished"))
            })
        }
        other => ctx.manager.dispatch_tagged(&other, req_id.as_deref()),
    }
}

/// Backoff hint for a `busy` reply, scaled by how oversubscribed the
/// pool is: one explore-slot's worth of queueing (50 ms) per excess
/// in-flight request, clamped to a sane 25 ms..=2 s window.
fn retry_after_ms(inflight: usize, max_inflight: usize) -> u64 {
    let excess = inflight.saturating_sub(max_inflight) as u64;
    (50 * (excess + 1)).clamp(25, 2000)
}

/// RAII admission token: holding one counts toward `max_inflight`.
struct InflightToken(Arc<AtomicUsize>);

impl InflightToken {
    fn try_acquire(inflight: &Arc<AtomicUsize>, max: usize) -> Option<Self> {
        inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < max).then_some(n + 1))
            .ok()
            .map(|_| Self(Arc::clone(inflight)))
    }
}

impl Drop for InflightToken {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Best-effort panic payload extraction.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        req: &Request,
    ) -> Response {
        let mut line = req.encode();
        line.push('\n');
        stream.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::decode(reply.trim()).unwrap()
    }

    #[test]
    fn ping_shutdown_drains_cleanly() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig { workers: 1, ..ServeConfig::default() })
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert!(matches!(
            roundtrip(&mut stream, &mut reader, &Request::Ping),
            Response::Pong { version: crate::protocol::PROTOCOL_VERSION }
        ));
        // A malformed line gets a typed error, not a dropped connection.
        stream.write_all(b"this is not json\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(matches!(
            Response::decode(reply.trim()).unwrap(),
            Response::Error(ServiceError { kind: ErrorKind::Protocol, .. })
        ));
        assert_eq!(
            roundtrip(&mut stream, &mut reader, &Request::Shutdown),
            Response::ShuttingDown
        );
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_line_gets_protocol_error_then_close() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig { workers: 1, ..ServeConfig::default() })
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // Stream just past the limit with no newline: the server must
        // answer with a typed protocol error and close, not buffer on.
        let blob = vec![b'x'; MAX_LINE_BYTES + 1];
        stream.write_all(&blob).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(matches!(
            Response::decode(reply.trim()).unwrap(),
            Response::Error(ServiceError { kind: ErrorKind::Protocol, .. })
        ));
        reply.clear();
        assert_eq!(reader.read_line(&mut reply).unwrap(), 0, "connection must be closed");
        // The server itself keeps serving: shut it down over a fresh
        // connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(
            roundtrip(&mut stream, &mut reader, &Request::Shutdown),
            Response::ShuttingDown
        );
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn zero_max_inflight_reports_busy() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig { workers: 1, max_inflight: 0, ..ServeConfig::default() },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let explore = Request::Explore {
            session: "any".into(),
            params: crate::protocol::ExploreParams::default(),
        };
        assert_eq!(
            roundtrip(&mut stream, &mut reader, &explore),
            Response::Busy { inflight: 0, max_inflight: 0, retry_after_ms: 50 }
        );
        roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn truncated_request_gets_protocol_error_not_silent_close() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig { workers: 1, ..ServeConfig::default() })
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        {
            // Send half a request, then half-close the write side: the
            // server must answer with a typed protocol error, not vanish.
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            writer.write_all(b"{\"v\":1,\"type\":\"pi").unwrap();
            writer.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let decoded = Response::decode(reply.trim()).unwrap();
            let Response::Error(e) = decoded else { panic!("{decoded:?}") };
            assert_eq!(e.kind, ErrorKind::Protocol);
            assert!(e.message.contains("truncated"), "{}", e.message);
        }
        // An oversized line that *does* end in a newline is refused the
        // same way, never parsed.
        {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut blob = vec![b' '; MAX_LINE_BYTES + 1];
            *blob.last_mut().unwrap() = b'\n';
            writer.write_all(&blob).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            assert!(matches!(
                Response::decode(reply.trim()).unwrap(),
                Response::Error(ServiceError { kind: ErrorKind::Protocol, .. })
            ));
            reply.clear();
            assert_eq!(reader.read_line(&mut reply).unwrap(), 0);
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        handle.join().unwrap().unwrap();
    }
}
