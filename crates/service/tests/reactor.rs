//! Hostile-edge tests for the epoll reactor: slow, greedy, and absent
//! clients must each be contained without disturbing anyone else.
//!
//! The happy paths (digest parity, typed errors, busy replies) live in
//! `service_e2e.rs`; this suite pokes at the readiness machinery itself
//! — slowloris drip-feeding, idle reaping, write backpressure against a
//! non-reading client, and reply ordering under pipelining.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use chop_service::{
    ErrorKind, ExploreParams, OpenParams, Request, Response, ServeConfig, Server,
};

/// The five-node running example (mul feeding an add chain).
const SPEC: &str = "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n";

fn test_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

fn start_server(config: ServeConfig) -> (std::net::SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run().expect("server drains cleanly"));
    (addr, handle)
}

fn open_params(spec: &str, partitions: u32) -> OpenParams {
    OpenParams { spec: spec.into(), partitions, ..OpenParams::default() }
}

fn encode_line(request: &Request) -> Vec<u8> {
    let mut line = request.encode();
    line.push('\n');
    line.into_bytes()
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    assert!(reader.read_line(&mut line).expect("read reply") > 0, "unexpected EOF");
    Response::decode(line.trim()).expect("decodable reply")
}

fn shutdown_via_fresh_conn(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(&encode_line(&Request::Shutdown)).expect("send shutdown");
    assert_eq!(read_response(&mut reader), Response::ShuttingDown);
}

#[test]
fn slowloris_byte_drip_does_not_starve_other_connections() {
    let (addr, server) =
        start_server(ServeConfig { workers: 1, jobs: test_jobs(), ..ServeConfig::default() });

    // The slowloris: one ping delivered a byte at a time, ~2 s end to
    // end. A thread-per-connection server shrugs this off; a naive
    // single-threaded loop would serve nobody else until the newline.
    let drip = {
        let line = encode_line(&Request::Ping);
        let pause = Duration::from_millis(2_000 / line.len() as u64);
        thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("slow connect");
            for byte in line {
                stream.write_all(&[byte]).expect("drip one byte");
                stream.flush().expect("flush");
                thread::sleep(pause);
            }
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("slow reply");
            assert!(
                matches!(Response::decode(reply.trim()), Ok(Response::Pong { .. })),
                "the slow client still deserves its pong: {reply:?}"
            );
        })
    };

    // Meanwhile a normal client hammers pings; every one must complete
    // promptly even though the reactor is "mid-request" on the dripper.
    let mut stream = TcpStream::connect(addr).expect("fast connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut worst = Duration::ZERO;
    for _ in 0..100 {
        let started = Instant::now();
        stream.write_all(&encode_line(&Request::Ping)).expect("fast ping");
        assert!(matches!(read_response(&mut reader), Response::Pong { .. }));
        worst = worst.max(started.elapsed());
    }
    assert!(
        worst < Duration::from_millis(500),
        "a fast ping stalled {worst:?} behind a slowloris"
    );

    drip.join().expect("slow client");
    shutdown_via_fresh_conn(addr);
    server.join().expect("server thread");
}

#[test]
fn idle_connection_gets_typed_error_then_close_while_active_one_survives() {
    let (addr, server) = start_server(ServeConfig {
        workers: 1,
        jobs: test_jobs(),
        idle_timeout_ms: 300,
        ..ServeConfig::default()
    });

    // A steadily-active connection must outlive many timeout windows:
    // every completed request resets its idle clock. Keep it pinging
    // from a thread for the whole test so it is genuinely active while
    // the idle victim gets reaped.
    let stop = Arc::new(AtomicBool::new(false));
    let keepalive = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut active = TcpStream::connect(addr).expect("active connect");
            let mut reader = BufReader::new(active.try_clone().expect("clone"));
            let mut pongs = 0usize;
            while !stop.load(Ordering::SeqCst) {
                active.write_all(&encode_line(&Request::Ping)).expect("keepalive ping");
                assert!(matches!(read_response(&mut reader), Response::Pong { .. }));
                pongs += 1;
                thread::sleep(Duration::from_millis(100));
            }
            pongs
        })
    };

    // An idle one is reaped: one typed protocol error, then EOF — never
    // a silent vanish.
    let idle = TcpStream::connect(addr).expect("idle connect");
    idle.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    let mut idle_reader = BufReader::new(idle);
    let mut line = String::new();
    idle_reader.read_line(&mut line).expect("reap notice");
    let decoded = Response::decode(line.trim()).expect("decodable reap notice");
    let Response::Error(e) = decoded else { panic!("expected error, got {decoded:?}") };
    assert_eq!(e.kind, ErrorKind::Protocol);
    assert!(e.message.contains("idle timeout"), "{}", e.message);
    line.clear();
    assert_eq!(idle_reader.read_line(&mut line).expect("eof"), 0, "must close after notice");

    // The keepalive connection survived well past the 300 ms window.
    thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::SeqCst);
    let pongs = keepalive.join().expect("keepalive thread");
    assert!(pongs >= 5, "keepalive only got {pongs} pongs before the reap finished");

    shutdown_via_fresh_conn(addr);
    server.join().expect("server thread");
}

#[test]
fn non_reading_client_is_backpressured_not_buffered_without_bound() {
    let (addr, server) =
        start_server(ServeConfig { workers: 1, jobs: test_jobs(), ..ServeConfig::default() });

    // 1M pipelined pings (~22 MiB of requests → ~34 MiB of replies) at
    // a client that refuses to read, with an indexed `open` every 50k
    // requests as an ordering marker. The reactor queues replies up to
    // its soft cap and then *stops reading*: pending output is bounded
    // by cap + kernel socket buffers (loopback autotuning tops out
    // around 10 MiB end to end) and the writer stalls well short of the
    // total, instead of the server buffering everything.
    const TOTAL: usize = 1_000_000;
    const MARKER_EVERY: usize = 50_000;
    let ping = encode_line(&Request::Ping);
    let mut burst: Vec<u8> = Vec::new();
    for i in 0..TOTAL {
        if i % MARKER_EVERY == 0 {
            burst.extend(encode_line(&Request::Open {
                session: format!("marker-{:02}", i / MARKER_EVERY),
                params: open_params(SPEC, 1),
            }));
        } else {
            burst.extend_from_slice(&ping);
        }
    }
    let total_bytes = burst.len();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let written = Arc::new(AtomicUsize::new(0));
    let writer_done = Arc::new(AtomicBool::new(false));
    let write_thread = {
        let written = Arc::clone(&written);
        let writer_done = Arc::clone(&writer_done);
        thread::spawn(move || {
            for chunk in burst.chunks(64 * 1024) {
                writer.write_all(chunk).expect("write burst chunk");
                written.fetch_add(chunk.len(), Ordering::SeqCst);
            }
            writer.flush().expect("flush");
            writer_done.store(true, Ordering::SeqCst);
        })
    };

    // Give the writer ample time: an unbounded server would swallow all
    // ~5.5 MiB in well under a second; a bounded one strands most of it
    // in the client thread.
    thread::sleep(Duration::from_millis(1500));
    let stalled_at = written.load(Ordering::SeqCst);
    assert!(
        !writer_done.load(Ordering::SeqCst) && stalled_at < total_bytes,
        "writer should be stalled by backpressure ({stalled_at}/{total_bytes} bytes written)"
    );

    // Start consuming: every reply arrives, in request order (markers
    // land exactly where they were sent), and the writer unwedges as
    // the queue drains.
    let mut reader = BufReader::new(stream);
    for i in 0..TOTAL {
        let reply = read_response(&mut reader);
        if i % MARKER_EVERY == 0 {
            let Response::Opened { session, .. } = reply else {
                panic!("marker {i} got {reply:?}");
            };
            assert_eq!(session, format!("marker-{:02}", i / MARKER_EVERY));
        } else {
            assert!(matches!(reply, Response::Pong { .. }), "reply {i}: {reply:?}");
        }
    }
    write_thread.join().expect("writer thread");
    assert_eq!(written.load(Ordering::SeqCst), total_bytes);

    shutdown_via_fresh_conn(addr);
    server.join().expect("server thread");
}

#[test]
fn pipelined_mix_of_inline_and_dispatched_requests_answers_in_order() {
    let (addr, server) =
        start_server(ServeConfig { workers: 2, jobs: test_jobs(), ..ServeConfig::default() });

    // One syscall carrying open + explore + ping + explore + ping: the
    // explores park the connection in the worker pool mid-pipeline, and
    // the pings behind them must not jump the queue.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let explore = Request::Explore { session: "pipe".into(), params: ExploreParams::default() };
    let mut burst = Vec::new();
    burst.extend(encode_line(&Request::Open {
        session: "pipe".into(),
        params: open_params(SPEC, 1),
    }));
    burst.extend(encode_line(&explore));
    burst.extend(encode_line(&Request::Ping));
    burst.extend(encode_line(&explore));
    burst.extend(encode_line(&Request::Ping));
    stream.write_all(&burst).expect("pipelined burst");

    assert!(matches!(read_response(&mut reader), Response::Opened { .. }));
    let first = read_response(&mut reader);
    let Response::Explored { run: first_run, .. } = first else { panic!("{first:?}") };
    assert!(matches!(read_response(&mut reader), Response::Pong { .. }));
    let second = read_response(&mut reader);
    let Response::Explored { run: second_run, .. } = second else { panic!("{second:?}") };
    assert!(matches!(read_response(&mut reader), Response::Pong { .. }));
    assert_eq!(first_run.digest, second_run.digest, "explores are deterministic");

    stream.write_all(&encode_line(&Request::Shutdown)).expect("shutdown");
    assert_eq!(read_response(&mut reader), Response::ShuttingDown);
    server.join().expect("server thread");
}

#[test]
fn hundreds_of_concurrent_connections_are_all_served() {
    let (addr, server) =
        start_server(ServeConfig { workers: 1, jobs: test_jobs(), ..ServeConfig::default() });

    // 200 connections held open at once (kept modest for CI fd limits;
    // BENCH_serve.json exercises 1024). Each gets two pings with every
    // other connection still live in between.
    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = (0..200)
        .map(|i| {
            let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("conn {i}: {e}"));
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            (stream, reader)
        })
        .collect();
    for round in 0..2 {
        for (i, (stream, reader)) in conns.iter_mut().enumerate() {
            stream.write_all(&encode_line(&Request::Ping)).expect("ping");
            assert!(
                matches!(read_response(reader), Response::Pong { .. }),
                "conn {i} round {round}"
            );
        }
    }
    drop(conns);

    shutdown_via_fresh_conn(addr);
    server.join().expect("server thread");
}

#[test]
fn connection_refused_over_the_cap_names_the_limit() {
    let (addr, server) = start_server(ServeConfig {
        workers: 1,
        jobs: test_jobs(),
        max_connections: 8,
        ..ServeConfig::default()
    });

    let held: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).expect("held connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            stream.write_all(&encode_line(&Request::Ping)).expect("ping");
            assert!(matches!(read_response(&mut reader), Response::Pong { .. }));
            stream
        })
        .collect();

    let ninth = TcpStream::connect(addr).expect("ninth connect");
    ninth.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    let mut reader = BufReader::new(ninth);
    let mut line = String::new();
    reader.read_line(&mut line).expect("refusal");
    let decoded = Response::decode(line.trim()).expect("decodable refusal");
    let Response::Error(e) = decoded else { panic!("expected error, got {decoded:?}") };
    assert!(e.message.contains("connection limit reached (8 connections)"), "{}", e.message);
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("eof"), 0);

    drop(held);
    // Slots free asynchronously; retry until readmitted.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut stream = TcpStream::connect(addr).expect("retry connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        stream.write_all(&encode_line(&Request::Ping)).expect("ping");
        if matches!(read_response(&mut reader), Response::Pong { .. }) {
            break;
        }
        assert!(Instant::now() < deadline, "never readmitted after slots freed");
        thread::sleep(Duration::from_millis(50));
    }

    shutdown_via_fresh_conn(addr);
    server.join().expect("server thread");
}

#[test]
fn half_close_after_full_request_still_gets_the_reply() {
    // A client that sends a complete request and immediately shuts down
    // its write side (common with `echo ... | nc`) must still receive
    // the reply before the server closes.
    let (addr, server) =
        start_server(ServeConfig { workers: 1, jobs: test_jobs(), ..ServeConfig::default() });

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&encode_line(&Request::Ping)).expect("ping");
    writer.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply after half-close");
    assert!(matches!(Response::decode(reply.trim()), Ok(Response::Pong { .. })), "{reply:?}");
    reply.clear();
    assert_eq!(reader.read_line(&mut reply).expect("eof"), 0, "clean close after reply");
    // The stream object must stay alive until here — dropping it earlier
    // would RST the connection instead of half-closing it.
    let mut sink = Vec::new();
    let _ = reader.into_inner().read_to_end(&mut sink);

    shutdown_via_fresh_conn(addr);
    server.join().expect("server thread");
}
