//! Journal round-trip properties: *any* sequence of mutating requests,
//! journaled and replayed, reproduces an identical `SessionManager` —
//! same session list, byte-identical explore digests — with or without
//! compaction. Plus deterministic recovery cases for a torn tail record
//! and CRC corruption, driven through the public manager API against an
//! on-disk journal mangled by hand (no fault-inject feature needed).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use chop_service::journal::JOURNAL_FILE;
use chop_service::{ExploreParams, OpenParams, SessionManager};
use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

const SPECS: [&str; 2] = [
    "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n",
    "a = input 16\nb = input 16\nc = input 16\np = mul a b\nq = add b c\nr = sub p q\n\
     s = add r a\ny = output s\n",
];

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chop-jprops-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One mutating request against a small fixed universe of session names
/// and specs. Invalid ops (unknown session, duplicate open, bad move)
/// are generated on purpose: failed mutations must not be journaled, so
/// replay equivalence has to hold through them.
#[derive(Debug, Clone)]
enum Op {
    Open { name: usize, spec: usize, partitions: u32 },
    Repartition { name: usize, node: u32, to: u32 },
    SetConstraints { name: usize, performance_ns: f64, delay_ns: f64 },
    Close { name: usize },
}

fn op() -> BoxedStrategy<Op> {
    prop_oneof![
        (0..NAMES.len(), 0..SPECS.len(), 1u32..4)
            .prop_map(|(name, spec, partitions)| Op::Open { name, spec, partitions }),
        (0..NAMES.len(), 0u32..8, 0u32..4).prop_map(|(name, node, to)| Op::Repartition {
            name,
            node,
            to
        }),
        (0..NAMES.len(), 1u32..4, 1u32..4).prop_map(|(name, p, d)| Op::SetConstraints {
            name,
            performance_ns: f64::from(p) * 20_000.0,
            delay_ns: f64::from(d) * 20_000.0,
        }),
        (0..NAMES.len()).prop_map(|name| Op::Close { name }),
    ]
    .boxed()
}

fn apply(mgr: &SessionManager, op: &Op) {
    // Outcomes are intentionally ignored: failures must leave no trace
    // in the journal, successes must leave exactly one record.
    let _ = match op {
        Op::Open { name, spec, partitions } => mgr.open(
            NAMES[*name],
            &OpenParams {
                spec: SPECS[*spec].into(),
                partitions: *partitions,
                ..OpenParams::default()
            },
        ),
        Op::Repartition { name, node, to } => {
            mgr.repartition(NAMES[*name], *node, *to).map(|()| 0)
        }
        Op::SetConstraints { name, performance_ns, delay_ns } => {
            mgr.set_constraints(NAMES[*name], *performance_ns, *delay_ns).map(|()| 0)
        }
        Op::Close { name } => mgr.close(NAMES[*name]).map(|()| 0),
    };
}

/// Sorted session names and their explore digests.
fn fingerprint(mgr: &SessionManager) -> Vec<(String, String)> {
    let (names, _, _) = mgr.stats(None).expect("stats");
    names
        .into_iter()
        .map(|name| {
            let digest = mgr.explore(&name, &ExploreParams::default()).expect("explore").digest;
            (name, digest)
        })
        .collect()
}

proptest! {
    // Each case explores every surviving session twice (before and after
    // recovery); keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_mutation_sequence_replays_to_identical_state(
        ops in collection::vec(op(), 0..12),
        snapshot_every in prop_oneof![Just(0usize), Just(2), Just(8)],
    ) {
        let dir = state_dir("seq");
        let before = {
            let (mgr, _) = SessionManager::recover(1, &dir, snapshot_every).expect("journal");
            for op in &ops {
                apply(&mgr, op);
            }
            fingerprint(&mgr)
            // Dropped with sessions open — the crash.
        };
        let (recovered, report) = SessionManager::recover(1, &dir, snapshot_every)
            .expect("recover");
        prop_assert_eq!(report.records_skipped, 0, "clean log must replay fully");
        prop_assert_eq!(report.sessions_restored, before.len());
        let after = fingerprint(&recovered);
        prop_assert_eq!(before, after, "replay must reproduce sessions and digests");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash mid-append: the journal's last record is physically cut short.
/// Recovery keeps everything before it and warns about the tail.
#[test]
fn torn_tail_record_recovers_the_prefix() {
    let dir = state_dir("torn");
    {
        let (mgr, _) = SessionManager::recover(1, &dir, 0).expect("journal");
        mgr.open("kept", &OpenParams { spec: SPECS[0].into(), ..OpenParams::default() })
            .expect("open kept");
        mgr.open("torn", &OpenParams { spec: SPECS[1].into(), ..OpenParams::default() })
            .expect("open torn");
    }
    let path = dir.join(JOURNAL_FILE);
    let raw = std::fs::read(&path).expect("read journal");
    std::fs::write(&path, &raw[..raw.len() - 30]).expect("tear the tail");

    let (mgr, report) = SessionManager::recover(1, &dir, 0).expect("recover");
    assert_eq!(report.records_skipped, 1);
    assert_eq!(report.sessions_restored, 1);
    assert_eq!(mgr.stats(None).expect("stats").0, vec!["kept".to_owned()]);
    // The torn bytes were truncated away: the next lifecycle is clean.
    mgr.open("fresh", &OpenParams { spec: SPECS[0].into(), ..OpenParams::default() })
        .expect("open after recovery");
    drop(mgr);
    let (_, report) = SessionManager::recover(1, &dir, 0).expect("re-recover");
    assert_eq!(report.records_skipped, 0, "truncation must leave a clean boundary");
    assert_eq!(report.sessions_restored, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bit rot: a payload byte inside an interior record flips, its CRC no
/// longer matches, and replay stops at the corrupt record — the sessions
/// journaled before it survive, nothing panics.
#[test]
fn crc_corruption_recovers_records_before_the_damage() {
    let dir = state_dir("crc");
    {
        let (mgr, _) = SessionManager::recover(1, &dir, 0).expect("journal");
        mgr.open("first", &OpenParams { spec: SPECS[0].into(), ..OpenParams::default() })
            .expect("open first");
        mgr.open("second", &OpenParams { spec: SPECS[1].into(), ..OpenParams::default() })
            .expect("open second");
        mgr.open("third", &OpenParams { spec: SPECS[0].into(), ..OpenParams::default() })
            .expect("open third");
    }
    let path = dir.join(JOURNAL_FILE);
    let mut raw = std::fs::read(&path).expect("read journal");
    // Flip a byte in the middle of the second record's payload.
    let first_nl = raw.iter().position(|&b| b == b'\n').expect("first newline");
    let second_nl = first_nl
        + 1
        + raw[first_nl + 1..].iter().position(|&b| b == b'\n').expect("second newline");
    let target = (first_nl + second_nl) / 2;
    raw[target] ^= 0x01;
    std::fs::write(&path, &raw).expect("corrupt journal");

    let (mgr, report) = SessionManager::recover(1, &dir, 0).expect("recover");
    assert_eq!(
        report.records_skipped, 2,
        "the corrupt record and everything after it are untrusted"
    );
    assert_eq!(report.sessions_restored, 1);
    assert_eq!(mgr.stats(None).expect("stats").0, vec!["first".to_owned()]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compaction happening mid-life must be invisible to recovery: the same
/// sessions come back, at a fraction of the records.
#[test]
fn compaction_preserves_recovery_equivalence() {
    let dir = state_dir("compact");
    let before = {
        let (mgr, _) = SessionManager::recover(1, &dir, 2).expect("journal");
        for i in 0..4 {
            let name = format!("s{i}");
            mgr.open(&name, &OpenParams { spec: SPECS[0].into(), ..OpenParams::default() })
                .expect("open");
            if i % 2 == 0 {
                mgr.close(&name).expect("close");
            }
        }
        fingerprint(&mgr)
    };
    let (recovered, report) = SessionManager::recover(1, &dir, 2).expect("recover");
    assert!(report.records_replayed <= 4, "log must have been compacted: {report:?}");
    assert_eq!(fingerprint(&recovered), before);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A request that never succeeded must leave no journal record — replay
/// equivalence would otherwise break on the retry.
#[test]
fn failed_mutations_are_not_journaled() {
    let dir = state_dir("failures");
    {
        let (mgr, _) = SessionManager::recover(1, &dir, 0).expect("journal");
        mgr.open("only", &OpenParams { spec: SPECS[0].into(), ..OpenParams::default() })
            .expect("open");
        // A duplicate open, an unknown-session move, a bad constraint:
        // all refused, none journaled.
        let _ =
            mgr.open("only", &OpenParams { spec: SPECS[0].into(), ..OpenParams::default() });
        let _ = mgr.repartition("ghost", 0, 0);
        let _ = mgr.set_constraints("only", -1.0, 1.0);
    }
    let (_, report) = SessionManager::recover(1, &dir, 0).expect("recover");
    assert_eq!(report.records_replayed, 1, "only the successful open is on disk");
    assert_eq!(report.records_skipped, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
