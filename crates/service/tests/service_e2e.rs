//! End-to-end tests: a real server on an ephemeral port, real TCP
//! clients, and the acceptance criteria from the service design —
//! concurrent clients get digests byte-identical to in-process runs,
//! `repartition` after `explore` re-predicts only the touched partitions,
//! and `shutdown` drains the server to a clean exit.

use std::net::TcpStream;
use std::thread;

use chop_core::prelude::Heuristic;
use chop_service::{
    build_session, BackendSpec, Client, ErrorKind, ExploreParams, HashRing, OpenParams,
    Request, Response, Router, RouterConfig, ServeConfig, Server,
};

/// The five-node running example (mul feeding an add chain).
const SPEC: &str = "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n";

/// A larger spec so three partitions stay non-trivial.
const WIDE_SPEC: &str = "a = input 16\nb = input 16\nc = input 16\n\
                         p = mul a b\nq = add b c\nr = sub p q\n\
                         s = add r a\ny = output s\n";

/// Worker threads per exploration, honoring the suite-wide override.
fn test_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

fn start_server(config: ServeConfig) -> (std::net::SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run().expect("server drains cleanly"));
    (addr, handle)
}

fn open_params(spec: &str, partitions: u32) -> OpenParams {
    OpenParams { spec: spec.into(), partitions, ..OpenParams::default() }
}

fn explore(client: &mut Client, session: &str) -> chop_service::RunSummary {
    let response = client
        .request(&Request::Explore {
            session: session.into(),
            params: ExploreParams::default(),
        })
        .expect("explore request");
    match response {
        Response::Explored { run, .. } => run,
        other => panic!("expected explored, got {other:?}"),
    }
}

#[test]
fn concurrent_clients_match_in_process_digests() {
    let jobs = test_jobs();
    let (addr, server) = start_server(ServeConfig {
        workers: 4,
        max_inflight: 64,
        jobs,
        ..ServeConfig::default()
    });

    // Four clients, four distinct sessions with distinct shapes, all in
    // flight at once.
    let cases: Vec<(String, &str, u32)> = (0..4)
        .map(|i| {
            let spec = if i % 2 == 0 { SPEC } else { WIDE_SPEC };
            (format!("client-{i}"), spec, 1 + i % 3)
        })
        .collect();

    let digests: Vec<(String, String)> = {
        let workers: Vec<_> = cases
            .iter()
            .cloned()
            .map(|(session, spec, partitions)| {
                thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let opened = client
                        .request(&Request::Open {
                            session: session.clone(),
                            params: open_params(spec, partitions),
                        })
                        .expect("open request");
                    assert!(matches!(opened, Response::Opened { .. }), "{opened:?}");
                    (session.clone(), explore(&mut client, &session).digest)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    };

    // Every digest must be byte-identical to an in-process run of the
    // same spec through the same construction path.
    for ((session, spec, partitions), (got_session, got_digest)) in cases.iter().zip(&digests) {
        assert_eq!(session, got_session);
        let local = build_session(&open_params(spec, *partitions), jobs)
            .expect("in-process session")
            .explore(Heuristic::Iterative)
            .expect("in-process explore");
        assert_eq!(&local.digest(), got_digest, "session {session}");
    }

    let mut client = Client::connect(addr).expect("connect for shutdown");
    let ack = client.request(&Request::Shutdown).expect("shutdown request");
    assert_eq!(ack, Response::ShuttingDown);
    server.join().expect("server thread"); // run() already asserted Ok
}

#[test]
fn repartition_after_explore_repredicts_only_touched_partitions() {
    let (addr, server) = start_server(ServeConfig {
        workers: 2,
        max_inflight: 8,
        jobs: test_jobs(),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let opened = client
        .request(&Request::Open { session: "inc".into(), params: open_params(WIDE_SPEC, 3) })
        .expect("open");
    assert!(matches!(opened, Response::Opened { .. }), "{opened:?}");

    let before = explore(&mut client, "inc");
    assert!(before.predictor_calls > 0, "first run must predict: {before:?}");

    let stats_before =
        match client.request(&Request::Stats { session: Some("inc".into()) }).expect("stats") {
            Response::Stats { cache, .. } => cache,
            other => panic!("expected stats, got {other:?}"),
        };

    let moved = client
        .request(&Request::Repartition { session: "inc".into(), node: 3, to: 0 })
        .expect("repartition");
    assert_eq!(moved, Response::Repartitioned { session: "inc".into(), node: 3, to: 0 });

    let after = explore(&mut client, "inc");

    // Untouched partitions come from the shared cache: the re-explore
    // must hit the cache and predict strictly less than the cold run.
    assert!(after.cache_hits >= 1, "expected cache hits after repartition: {after:?}");
    assert!(
        after.predictor_calls < before.predictor_calls,
        "expected fewer predictions ({} -> {})",
        before.predictor_calls,
        after.predictor_calls
    );

    // The same delta must be visible through the stats endpoint (the
    // shared cache's lifetime counters moved by at least the run's hits).
    let stats_after =
        match client.request(&Request::Stats { session: Some("inc".into()) }).expect("stats") {
            Response::Stats { cache, last_run, .. } => {
                assert_eq!(last_run.as_ref().map(|r| &r.digest), Some(&after.digest));
                cache
            }
            other => panic!("expected stats, got {other:?}"),
        };
    assert!(
        stats_after.hits >= stats_before.hits + after.cache_hits,
        "cache hit counter must advance: {stats_before:?} -> {stats_after:?}"
    );

    assert_eq!(client.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
    server.join().expect("server thread");
}

#[test]
fn saturated_server_answers_busy_not_queueing_forever() {
    // max_inflight: 0 means every explore is "one too many".
    let (addr, server) =
        start_server(ServeConfig { workers: 1, max_inflight: 0, ..ServeConfig::default() });
    let mut client = Client::connect(addr).expect("connect");
    let opened = client
        .request(&Request::Open { session: "s".into(), params: open_params(SPEC, 1) })
        .expect("open");
    assert!(matches!(opened, Response::Opened { .. }), "{opened:?}");
    let busy = client
        .request(&Request::Explore { session: "s".into(), params: ExploreParams::default() })
        .expect("explore");
    assert_eq!(busy, Response::Busy { inflight: 0, max_inflight: 0, retry_after_ms: 50 });
    assert_eq!(client.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
    server.join().expect("server thread");
}

/// Live router membership: `add_pair` grows the ring and migrates exactly
/// the sessions whose consistent-hash slot moved (genesis + history via
/// `export`/`import`), `router_status` reflects the ring, `remove_pair`
/// drains the departing pair back — and every session explores to an
/// unchanged digest through the router after each change.
#[test]
fn router_membership_changes_migrate_sessions_live() {
    let jobs = test_jobs();
    let serve = || ServeConfig { workers: 2, max_inflight: 16, jobs, ..ServeConfig::default() };
    let (addr1, backend1) = start_server(serve());
    let (addr2, backend2) = start_server(serve());
    let (addr3, backend3) = start_server(serve());
    let (addr1, addr2, addr3) = (addr1.to_string(), addr2.to_string(), addr3.to_string());

    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            pairs: vec![
                BackendSpec { primary: addr1.clone(), standby: None },
                BackendSpec { primary: addr2.clone(), standby: None },
            ],
            health_interval: std::time::Duration::from_secs(30),
        },
    )
    .expect("bind router");
    let router_addr = router.local_addr().expect("router addr").to_string();
    let router_thread = thread::spawn(move || router.run().expect("router runs"));

    // Six sessions opened through the router, digests recorded while the
    // ring has two pairs.
    let mut client = Client::connect(router_addr.as_str()).expect("connect router");
    let sessions: Vec<String> = (0..6).map(|i| format!("mem-{i}")).collect();
    let mut digests = Vec::new();
    for session in &sessions {
        let opened = client
            .request(&Request::Open {
                session: session.clone(),
                params: open_params(WIDE_SPEC, 3),
            })
            .expect("open via router");
        assert!(matches!(opened, Response::Opened { .. }), "{opened:?}");
        digests.push(explore(&mut client, session).digest);
    }

    // Grow the ring. The reply lists the new membership, and the router's
    // status endpoint agrees.
    let added = client.request(&Request::AddPair { pair: addr3.clone() }).expect("add_pair");
    let Response::PairAdded { pairs } = added else { panic!("expected pair_added: {added:?}") };
    assert_eq!(pairs, vec![addr1.clone(), addr2.clone(), addr3.clone()]);
    let status = client.request(&Request::RouterStatus).expect("router_status");
    let Response::RouterStatus { pairs } = status else {
        panic!("expected status: {status:?}")
    };
    assert_eq!(pairs.len(), 3, "{pairs:?}");
    assert!(pairs[2].starts_with(&format!("{addr3}: active={addr3}")), "{pairs:?}");

    // The migration moved exactly the sessions the grown ring assigns to
    // the new label (the ring is public and deterministic, so the test
    // can compute the expectation independently).
    let grown = HashRing::new(vec![addr1.clone(), addr2.clone(), addr3.clone()], 64);
    let mut expected_on_3: Vec<String> = sessions
        .iter()
        .filter(|s| grown.assign_label(s) == Some(addr3.as_str()))
        .cloned()
        .collect();
    expected_on_3.sort();
    let sessions_on = |addr: &str| -> Vec<String> {
        let mut probe = Client::connect(addr).expect("probe backend");
        match probe.request(&Request::Stats { session: None }).expect("stats") {
            Response::Stats { sessions, .. } => sessions,
            other => panic!("expected stats, got {other:?}"),
        }
    };
    assert_eq!(sessions_on(&addr3), expected_on_3, "migrated set must match the ring");

    // Every session still answers through the router, digest unchanged —
    // the moved ones now served by the new backend from imported history.
    for (session, digest) in sessions.iter().zip(&digests) {
        assert_eq!(&explore(&mut client, session).digest, digest, "after add_pair: {session}");
    }

    // Shrink the ring again: the departing pair's sessions drain back and
    // the digests still hold.
    let removed =
        client.request(&Request::RemovePair { pair: addr3.clone() }).expect("remove_pair");
    let Response::PairRemoved { pairs } = removed else {
        panic!("expected pair_removed: {removed:?}")
    };
    assert_eq!(pairs, vec![addr1.clone(), addr2.clone()]);
    assert!(sessions_on(&addr3).is_empty(), "removed pair must be drained");
    for (session, digest) in sessions.iter().zip(&digests) {
        assert_eq!(
            &explore(&mut client, session).digest,
            digest,
            "after remove_pair: {session}"
        );
    }

    // Unknown and last-pair removals get typed errors.
    let bogus = client.request(&Request::RemovePair { pair: "nope:1".into() }).expect("reply");
    assert!(matches!(&bogus, Response::Error(e) if e.kind == ErrorKind::Spec), "{bogus:?}");

    assert_eq!(client.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
    router_thread.join().expect("router thread");
    for (addr, handle) in [(addr1, backend1), (addr2, backend2), (addr3, backend3)] {
        let mut direct = Client::connect(addr.as_str()).expect("backend connect");
        direct.request(&Request::Shutdown).expect("backend shutdown");
        handle.join().expect("backend thread");
    }
}

#[test]
fn malformed_lines_get_typed_errors_and_sessions_are_isolated() {
    let (addr, server) = start_server(ServeConfig {
        workers: 1,
        max_inflight: 4,
        jobs: 1,
        ..ServeConfig::default()
    });

    // Raw socket: garbage must come back as a typed protocol error, and
    // the connection must stay usable afterwards.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut stream = TcpStream::connect(addr).expect("connect raw");
        stream.write_all(b"this is not json\n").expect("write garbage");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read error line");
        let response = Response::decode(line.trim()).expect("decodable error");
        match response {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::Protocol),
            other => panic!("expected protocol error, got {other:?}"),
        }
        stream.write_all(format!("{}\n", Request::Ping.encode()).as_bytes()).expect("ping");
        line.clear();
        reader.read_line(&mut line).expect("read pong");
        assert!(matches!(Response::decode(line.trim()), Ok(Response::Pong { .. })), "{line}");
    }

    // Typed session errors: unknown session, duplicate open.
    let mut client = Client::connect(addr).expect("connect");
    let missing = client
        .request(&Request::Explore {
            session: "ghost".into(),
            params: ExploreParams::default(),
        })
        .expect("explore ghost");
    assert!(
        matches!(&missing, Response::Error(e) if e.kind == ErrorKind::UnknownSession),
        "{missing:?}"
    );
    let open = Request::Open { session: "dup".into(), params: open_params(SPEC, 1) };
    assert!(matches!(client.request(&open).expect("open"), Response::Opened { .. }));
    let again = client.request(&open).expect("reopen");
    assert!(
        matches!(&again, Response::Error(e) if e.kind == ErrorKind::SessionExists),
        "{again:?}"
    );

    assert_eq!(client.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
    server.join().expect("server thread");
}
