//! Property tests for cluster-epoch fencing: arbitrary interleavings of
//! promotions, crash/restarts (journal replay) and replication syncs
//! across a two-node pair must keep every node's epoch monotonic, keep a
//! promotion from standby strictly increasing, never leave two unfenced
//! primaries sharing an epoch, and replay `role_change` records back
//! into exactly the pre-crash role.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use chop_service::{Request, Response, SessionManager};

/// Distinguishes concurrent proptest cases' state dirs.
static CASE: AtomicUsize = AtomicUsize::new(0);

/// One node of the pair: a journaled manager plus the restart-invariant
/// bits a real `chop serve` process carries (state dir, advertised
/// address, the `--standby` flag re-applied on every start).
struct Node {
    manager: Option<SessionManager>,
    dir: PathBuf,
    addr: String,
    standby_flag: bool,
}

impl Node {
    fn start(dir: PathBuf, addr: String, standby_flag: bool) -> Self {
        let mut node = Self { manager: None, dir, addr, standby_flag };
        node.boot();
        node
    }

    /// Recover-and-gate, mirroring `Server::bind`: the journaled role
    /// outranks the CLI flag, which only picks the *initial* role.
    fn boot(&mut self) {
        let (manager, _) = SessionManager::recover(1, &self.dir, 0).expect("recover journal");
        if self.standby_flag && manager.epoch() == 0 && !manager.is_fenced() {
            manager.mark_standby();
        }
        manager.set_advertised(self.addr.clone());
        self.manager = Some(manager);
    }

    /// Crash (no drain ceremony — the journal is fsynced per record) and
    /// restart on the same state dir.
    fn crash_restart(&mut self) {
        self.manager = None;
        self.boot();
    }

    fn m(&self) -> &SessionManager {
        self.manager.as_ref().expect("node is booted")
    }

    /// `(epoch, standby, fenced)` — the observable role.
    fn role(&self) -> (u64, bool, bool) {
        (self.m().epoch(), self.m().is_standby(), self.m().is_fenced())
    }
}

/// Ships one snapshot-first sync from `sender` to `receiver`, the way
/// the replicator does: a parked (standby) sender ships nothing, and a
/// typed refusal flows back through `observe_fencing`, demoting the
/// sender only when the refusal proves a strictly newer epoch.
fn sync(sender: &Node, receiver: &Node) {
    if sender.m().is_standby() {
        return;
    }
    let request = Request::ReplSnapshot {
        seq: 1,
        records: Vec::new(),
        epoch: sender.m().epoch(),
        primary: Some(sender.addr.clone()),
    };
    if let Response::Error(e) = receiver.m().dispatch(&request) {
        sender.m().observe_fencing(&e);
    }
}

/// Op codes: 0/1 promote A/B, 2/3 crash-restart A/B, 4/5 sync A→B/B→A.
fn ops() -> BoxedStrategy<Vec<u8>> {
    collection::vec(0u8..6, 1..24).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn epoch_fencing_invariants_hold_under_interleaving(ops in ops()) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let base = std::env::temp_dir()
            .join(format!("chop-epoch-props-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut nodes = [
            Node::start(base.join("a"), "node-a:1991".into(), false),
            Node::start(base.join("b"), "node-b:1991".into(), true),
        ];
        let mut high_epochs = [0u64, 0u64];

        for &op in &ops {
            let which = usize::from(op % 2);
            match op {
                0 | 1 => {
                    // A promotion must be a strict epoch bump from
                    // standby and an idempotent no-op on a primary.
                    let before = nodes[which].role();
                    let (_, epoch) = nodes[which].m().promote();
                    if before.1 {
                        prop_assert_eq!(epoch, before.0 + 1, "promote must bump the epoch");
                        prop_assert!(!nodes[which].m().is_standby());
                        prop_assert!(!nodes[which].m().is_fenced());
                    } else {
                        prop_assert_eq!(epoch, before.0, "re-promotion must not bump");
                    }
                }
                2 | 3 => {
                    // Journal replay must reproduce the pre-crash role
                    // exactly — `role_change` records are replay-stable.
                    let before = nodes[which].role();
                    nodes[which].crash_restart();
                    prop_assert_eq!(
                        nodes[which].role(), before,
                        "restart must replay the pre-crash role"
                    );
                }
                4 => sync(&nodes[0], &nodes[1]),
                _ => sync(&nodes[1], &nodes[0]),
            }

            for (node, high) in nodes.iter().zip(&mut high_epochs) {
                let epoch = node.m().epoch();
                prop_assert!(
                    epoch >= *high,
                    "epoch went backwards: {} -> {}", *high, epoch
                );
                *high = epoch;
            }
            let (a, b) = (&nodes[0], &nodes[1]);
            if !a.m().is_standby() && !b.m().is_standby() {
                prop_assert_ne!(
                    a.m().epoch(), b.m().epoch(),
                    "two unfenced primaries must never share an epoch"
                );
            }
        }
        drop(nodes);
        let _ = std::fs::remove_dir_all(&base);
    }
}
