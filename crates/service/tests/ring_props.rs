//! Property tests for the router's consistent-hash ring: placement must
//! be deterministic across restarts (failover transparency depends on a
//! restarted router agreeing with its predecessor), and removing one
//! backend must remap *only* the sessions that lived on it — every other
//! session keeps its pair, so a node loss never shuffles the fleet.

use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use chop_service::HashRing;

/// Backend labels shaped like the real thing: `host:port` strings,
/// deduplicated (a fleet never lists one node twice) and at least two
/// strong so a removal always leaves survivors.
fn labels() -> BoxedStrategy<Vec<String>> {
    collection::vec("[a-z][a-z0-9.-]{0,10}:[0-9]{2,5}", 2..8)
        .prop_map(|raw| {
            let mut seen = Vec::new();
            for label in raw {
                if !seen.contains(&label) {
                    seen.push(label);
                }
            }
            let mut filler = 0;
            while seen.len() < 2 {
                seen.push(format!("fallback{filler}:1991"));
                filler += 1;
            }
            seen
        })
        .boxed()
}

fn sessions() -> BoxedStrategy<Vec<String>> {
    collection::vec("[a-zA-Z0-9_-]{1,24}", 1..64).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The same labels produce the same assignments, run after run and
    // regardless of listing order: placement is a pure function of the
    // label and key strings, never of process state.
    #[test]
    fn assignment_is_deterministic_and_order_independent(
        labels in labels(),
        keys in sessions(),
    ) {
        let ring = HashRing::new(labels.clone(), 64);
        let rebuilt = HashRing::new(labels.clone(), 64);
        let mut reversed_labels = labels.clone();
        reversed_labels.reverse();
        let reversed = HashRing::new(reversed_labels, 64);
        for key in &keys {
            let label = ring.assign_label(key).expect("non-empty ring");
            prop_assert_eq!(
                rebuilt.assign_label(key), Some(label),
                "a rebuilt ring must agree on {}", key
            );
            prop_assert_eq!(
                reversed.assign_label(key), Some(label),
                "label listing order must not move {}", key
            );
        }
    }

    // Removing one backend remaps only the sessions that were assigned
    // to it; every other session stays on its original backend.
    #[test]
    fn removing_one_backend_remaps_only_its_sessions(
        labels in labels(),
        keys in sessions(),
        victim_seed in 0usize..1024,
    ) {
        let ring = HashRing::new(labels.clone(), 64);
        let victim = labels[victim_seed % labels.len()].clone();
        let survivors: Vec<String> =
            labels.iter().filter(|l| **l != victim).cloned().collect();
        let shrunk = HashRing::new(survivors, 64);
        for key in &keys {
            let before = ring.assign_label(key).expect("non-empty ring");
            let after = shrunk.assign_label(key).expect("survivors remain");
            if before == victim {
                prop_assert_ne!(
                    after, victim.as_str(),
                    "{}'s sessions must leave the removed backend", key
                );
            } else {
                prop_assert_eq!(
                    after, before,
                    "{} did not live on the removed backend and must not move", key
                );
            }
        }
    }

    // Adding a backend only ever *pulls* sessions onto the new node —
    // no session moves between two pre-existing backends.
    #[test]
    fn adding_a_backend_only_moves_sessions_onto_it(
        labels in labels(),
        keys in sessions(),
    ) {
        let (newcomer, veterans) = labels.split_first().expect("at least two labels");
        let small = HashRing::new(veterans.to_vec(), 64);
        let grown = HashRing::new(labels.clone(), 64);
        for key in &keys {
            let before = small.assign_label(key).expect("non-empty ring");
            let after = grown.assign_label(key).expect("non-empty ring");
            if after != newcomer.as_str() {
                prop_assert_eq!(
                    after, before,
                    "{} must stay put unless captured by the new backend", key
                );
            }
        }
    }
}
