//! Property tests: `decode(encode(m)) == m` for **every** protocol
//! variant, with fuzzed payloads (including JSON-hostile strings — quotes,
//! backslashes, control characters, non-ASCII) since the wire format is
//! hand-written rather than serde-derived.

use chop_core::prelude::{CacheStats, Completion, Heuristic};
use chop_service::{
    ExploreParams, OpenParams, Request, Response, RunSummary, ServiceError, PROTOCOL_VERSION,
};
use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// A session-ish identifier.
fn name() -> BoxedStrategy<String> {
    "[a-z][a-z0-9_-]{0,12}".boxed()
}

/// Strings that stress the JSON escaper: quotes, backslashes, control
/// characters, multi-byte UTF-8, braces. Built from literal fragments so
/// the regex stub can't mangle the escapes.
fn hostile_text() -> BoxedStrategy<String> {
    let fragment = prop_oneof![
        Just("a = input 16"),
        Just("\n"),
        Just("\""),
        Just("\\"),
        Just("\t"),
        Just("\r"),
        Just("\u{0}"),
        Just("\u{1f}"),
        Just("π"),
        Just("🦀"),
        Just("{},:[]"),
        Just(" "),
    ];
    collection::vec(fragment, 0..8).prop_map(|parts| parts.concat()).boxed()
}

fn heuristic() -> BoxedStrategy<Heuristic> {
    prop_oneof![Just(Heuristic::Enumeration), Just(Heuristic::Iterative)].boxed()
}

fn completion() -> BoxedStrategy<Completion> {
    prop_oneof![
        Just(Completion::Complete),
        Just(Completion::TruncatedDeadline),
        Just(Completion::TruncatedTrials),
        Just(Completion::DegradedToIterative),
    ]
    .boxed()
}

fn opt_u64() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), (0u64..1_000_000_000).prop_map(Some)].boxed()
}

fn opt_u32() -> BoxedStrategy<Option<u32>> {
    prop_oneof![Just(None), (1u32..64).prop_map(Some)].boxed()
}

fn open_params() -> BoxedStrategy<OpenParams> {
    let head = (hostile_text(), 1u32..9, opt_u32());
    let tail = (prop_oneof![Just(64u32), Just(84u32)], 1.0f64..1e9, 1.0f64..1e9, any::<bool>());
    (head, tail)
        .prop_map(|((spec, partitions, chips), (package_pins, perf, delay, multi_cycle))| {
            OpenParams {
                spec,
                partitions,
                chips,
                package_pins,
                performance_ns: perf,
                delay_ns: delay,
                multi_cycle,
            }
        })
        .boxed()
}

fn explore_params() -> BoxedStrategy<ExploreParams> {
    (heuristic(), opt_u64(), opt_u64(), opt_u32())
        .prop_map(|(heuristic, deadline_ms, max_trials, jobs)| ExploreParams {
            heuristic,
            deadline_ms,
            max_trials,
            jobs,
        })
        .boxed()
}

fn run_summary() -> BoxedStrategy<RunSummary> {
    let head = (heuristic(), hostile_text(), 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000);
    let tail = (
        completion(),
        any::<bool>(),
        0.0f64..1e6,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000,
        0u64..1_000_000,
        0u64..1_000_000_000,
    );
    (head, tail)
        .prop_map(
            |(
                (heuristic, digest, trials, feasible_trials, feasible),
                (
                    completion,
                    degraded,
                    elapsed_ms,
                    predictor_calls,
                    cache_hits,
                    cache_misses,
                    subtrees_skipped,
                    combinations_skipped,
                ),
            )| RunSummary {
                heuristic,
                digest,
                trials,
                feasible_trials,
                feasible,
                completion,
                degraded,
                elapsed_ms,
                predictor_calls,
                cache_hits,
                cache_misses,
                subtrees_skipped,
                combinations_skipped,
            },
        )
        .boxed()
}

fn cache_stats() -> BoxedStrategy<CacheStats> {
    (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000, 0u64..1_000, 0u64..1_000_000_000)
        .prop_map(|(hits, misses, evictions, entries, bytes)| CacheStats {
            hits,
            misses,
            evictions,
            entries,
            bytes,
        })
        .boxed()
}

fn service_error() -> BoxedStrategy<ServiceError> {
    use chop_service::ErrorKind;
    let kind = prop_oneof![
        Just(ErrorKind::Protocol),
        Just(ErrorKind::UnknownSession),
        Just(ErrorKind::SessionExists),
        Just(ErrorKind::Spec),
        Just(ErrorKind::Engine),
        Just(ErrorKind::Internal),
        Just(ErrorKind::Standby),
    ];
    (kind, hostile_text()).prop_map(|(kind, message)| ServiceError::new(kind, message)).boxed()
}

/// Every [`Request`] variant, with fuzzed payloads.
fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        (name(), open_params()).prop_map(|(session, params)| Request::Open { session, params }),
        (name(), explore_params())
            .prop_map(|(session, params)| Request::Explore { session, params }),
        (name(), 0u32..64, 0u32..8).prop_map(|(session, node, to)| Request::Repartition {
            session,
            node,
            to
        }),
        (name(), 1.0f64..1e9, 1.0f64..1e9).prop_map(|(session, performance_ns, delay_ns)| {
            Request::SetConstraints { session, performance_ns, delay_ns }
        }),
        prop_oneof![Just(None), name().prop_map(Some)]
            .prop_map(|session| Request::Stats { session }),
        name().prop_map(|session| Request::Close { session }),
        Just(Request::Shutdown),
        (0u64..1_000_000, hostile_text())
            .prop_map(|(seq, record)| Request::ReplApply { seq, record }),
        (0u64..1_000_000, collection::vec(hostile_text(), 0..4))
            .prop_map(|(seq, records)| Request::ReplSnapshot { seq, records }),
        Just(Request::Promote),
    ]
    .boxed()
}

/// Valid `req_id` envelope tags (1..=128 bytes, arbitrary content).
fn req_id() -> BoxedStrategy<Option<String>> {
    prop_oneof![
        Just(None),
        "[a-z0-9-]{1,32}".prop_map(Some),
        hostile_text().prop_map(|s| {
            let mut id = s;
            while id.len() > 128 {
                id.pop();
            }
            if id.is_empty() {
                id.push('x');
            }
            Some(id)
        }),
    ]
    .boxed()
}

/// Every [`Response`] variant, with fuzzed payloads.
fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        Just(Response::Pong { version: PROTOCOL_VERSION }),
        (name(), 1u64..64)
            .prop_map(|(session, partitions)| Response::Opened { session, partitions }),
        (name(), run_summary()).prop_map(|(session, run)| Response::Explored { session, run }),
        (name(), 0u32..64, 0u32..8).prop_map(|(session, node, to)| Response::Repartitioned {
            session,
            node,
            to
        }),
        (
            collection::vec(name(), 0..5),
            cache_stats(),
            prop_oneof![Just(None), run_summary().prop_map(Some)],
        )
            .prop_map(|(sessions, cache, last_run)| Response::Stats {
                sessions,
                cache,
                last_run
            }),
        (name(), 1.0f64..1e9, 1.0f64..1e9).prop_map(|(session, performance_ns, delay_ns)| {
            Response::ConstraintsSet { session, performance_ns, delay_ns }
        }),
        name().prop_map(|session| Response::Closed { session }),
        Just(Response::ShuttingDown),
        (0u64..128, 0u64..128, 0u64..5_000).prop_map(
            |(inflight, max_inflight, retry_after_ms)| Response::Busy {
                inflight,
                max_inflight,
                retry_after_ms
            }
        ),
        (0u64..1_000_000).prop_map(|seq| Response::ReplAck { seq }),
        (0u64..1_000).prop_map(|sessions| Response::Promoted { sessions }),
        service_error().prop_map(Response::Error),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_round_trips(req in request()) {
        let line = req.encode();
        prop_assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
        prop_assert_eq!(Request::decode(&line).expect(&line), req);
    }

    #[test]
    fn every_response_round_trips(resp in response()) {
        let line = resp.encode();
        prop_assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
        prop_assert_eq!(Response::decode(&line).expect(&line), resp);
    }

    #[test]
    fn requests_survive_a_double_round_trip(req in request()) {
        // encode → decode → encode must be a fixed point (canonical form).
        let once = req.encode();
        let twice = Request::decode(&once).expect(&once).encode();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn responses_survive_a_double_round_trip(resp in response()) {
        let once = resp.encode();
        let twice = Response::decode(&once).expect(&once).encode();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn req_id_envelopes_round_trip(req in request(), id in req_id()) {
        let line = req.encode_tagged(id.as_deref());
        prop_assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
        let (decoded, decoded_id) = Request::decode_tagged(&line).expect(&line);
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(decoded_id, id);
    }

    #[test]
    fn untagged_decode_ignores_the_envelope(req in request(), id in req_id()) {
        // A plain decode must accept a tagged line and just drop the tag.
        let line = req.encode_tagged(id.as_deref());
        prop_assert_eq!(Request::decode(&line).expect(&line), req);
    }
}
