//! Property tests: `decode(encode(m)) == m` for **every** protocol
//! variant, with fuzzed payloads (including JSON-hostile strings — quotes,
//! backslashes, control characters, non-ASCII) since the wire format is
//! hand-written rather than serde-derived.

use chop_core::prelude::{CacheStats, Completion, Heuristic, MoveKind};
use chop_service::{
    BudgetEnvelope, ExploreParams, MoveSummary, OpenParams, OptimizeParams, OptimizeSummary,
    Request, Response, RunSummary, ServiceError, PROTOCOL_VERSION,
};
use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// A session-ish identifier.
fn name() -> BoxedStrategy<String> {
    "[a-z][a-z0-9_-]{0,12}".boxed()
}

/// Strings that stress the JSON escaper: quotes, backslashes, control
/// characters, multi-byte UTF-8, braces. Built from literal fragments so
/// the regex stub can't mangle the escapes.
fn hostile_text() -> BoxedStrategy<String> {
    let fragment = prop_oneof![
        Just("a = input 16"),
        Just("\n"),
        Just("\""),
        Just("\\"),
        Just("\t"),
        Just("\r"),
        Just("\u{0}"),
        Just("\u{1f}"),
        Just("π"),
        Just("🦀"),
        Just("{},:[]"),
        Just(" "),
    ];
    collection::vec(fragment, 0..8).prop_map(|parts| parts.concat()).boxed()
}

fn heuristic() -> BoxedStrategy<Heuristic> {
    prop_oneof![Just(Heuristic::Enumeration), Just(Heuristic::Iterative)].boxed()
}

fn completion() -> BoxedStrategy<Completion> {
    prop_oneof![
        Just(Completion::Complete),
        Just(Completion::TruncatedDeadline),
        Just(Completion::TruncatedTrials),
        Just(Completion::DegradedToIterative),
    ]
    .boxed()
}

fn opt_u64() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), (0u64..1_000_000_000).prop_map(Some)].boxed()
}

fn opt_u32() -> BoxedStrategy<Option<u32>> {
    prop_oneof![Just(None), (1u32..64).prop_map(Some)].boxed()
}

fn open_params() -> BoxedStrategy<OpenParams> {
    let head = (hostile_text(), 1u32..9, opt_u32());
    let tail = (prop_oneof![Just(64u32), Just(84u32)], 1.0f64..1e9, 1.0f64..1e9, any::<bool>());
    (head, tail)
        .prop_map(|((spec, partitions, chips), (package_pins, perf, delay, multi_cycle))| {
            OpenParams {
                spec,
                partitions,
                chips,
                package_pins,
                performance_ns: perf,
                delay_ns: delay,
                multi_cycle,
            }
        })
        .boxed()
}

fn budget() -> BoxedStrategy<BudgetEnvelope> {
    (opt_u64(), opt_u64())
        .prop_map(|(deadline_ms, max_trials)| BudgetEnvelope { deadline_ms, max_trials })
        .boxed()
}

fn explore_params() -> BoxedStrategy<ExploreParams> {
    (heuristic(), budget(), opt_u32())
        .prop_map(|(heuristic, budget, jobs)| ExploreParams { heuristic, budget, jobs })
        .boxed()
}

fn optimize_params() -> BoxedStrategy<OptimizeParams> {
    // Wire numbers ride on JSON doubles, so seeds cap at 2^53 − 1 (the
    // largest exactly-representable integer; larger seeds are rejected
    // on decode rather than silently rounded).
    let head = (0u64..(1 << 53), budget(), heuristic(), opt_u32(), opt_u32(), opt_u32());
    let tail = (
        collection::vec(0u32..64, 0..4),
        collection::vec(collection::vec(0u32..64, 0..3), 0..3),
        collection::vec((0u32..64, 0u32..64), 0..3),
    );
    (head, tail)
        .prop_map(
            |(
                (seed, budget, heuristic, kicks, kick_moves, jobs),
                (pinned, groups, exclusions),
            )| {
                OptimizeParams {
                    seed,
                    budget,
                    heuristic,
                    kicks,
                    kick_moves,
                    jobs,
                    pinned,
                    groups,
                    exclusions,
                }
            },
        )
        .boxed()
}

fn move_kind() -> BoxedStrategy<MoveKind> {
    prop_oneof![Just(MoveKind::Gain), Just(MoveKind::Kick)].boxed()
}

fn move_summary() -> BoxedStrategy<MoveSummary> {
    (collection::vec(0u32..256, 1..4), 0u32..8, 0u32..8, 1u32..16, move_kind())
        .prop_map(|(nodes, from, to, pass, kind)| MoveSummary { nodes, from, to, pass, kind })
        .boxed()
}

fn optimize_summary() -> BoxedStrategy<OptimizeSummary> {
    let head = (hostile_text(), any::<bool>(), 0.0f64..2e18, 0.0f64..1e6, 0u64..1_000_000);
    let tail =
        (0u32..64, 0u32..8, completion(), collection::vec(move_summary(), 0..5), run_summary());
    (head, tail)
        .prop_map(
            |(
                (digest, feasible, initial_score, final_score, evaluations),
                (passes, kicks, completion, moves, run),
            )| OptimizeSummary {
                digest,
                feasible,
                initial_score,
                final_score,
                evaluations,
                passes,
                kicks,
                completion,
                moves,
                run,
            },
        )
        .boxed()
}

fn run_summary() -> BoxedStrategy<RunSummary> {
    let head = (heuristic(), hostile_text(), 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000);
    let tail = (
        completion(),
        any::<bool>(),
        0.0f64..1e6,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000,
        0u64..1_000_000,
        0u64..1_000_000_000,
    );
    (head, tail)
        .prop_map(
            |(
                (heuristic, digest, trials, feasible_trials, feasible),
                (
                    completion,
                    degraded,
                    elapsed_ms,
                    predictor_calls,
                    cache_hits,
                    cache_misses,
                    subtrees_skipped,
                    combinations_skipped,
                ),
            )| RunSummary {
                heuristic,
                digest,
                trials,
                feasible_trials,
                feasible,
                completion,
                degraded,
                elapsed_ms,
                predictor_calls,
                cache_hits,
                cache_misses,
                subtrees_skipped,
                combinations_skipped,
            },
        )
        .boxed()
}

fn cache_stats() -> BoxedStrategy<CacheStats> {
    (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000, 0u64..1_000, 0u64..1_000_000_000)
        .prop_map(|(hits, misses, evictions, entries, bytes)| CacheStats {
            hits,
            misses,
            evictions,
            entries,
            bytes,
        })
        .boxed()
}

fn service_error() -> BoxedStrategy<ServiceError> {
    use chop_service::ErrorKind;
    let kind = prop_oneof![
        Just(ErrorKind::Protocol),
        Just(ErrorKind::UnknownSession),
        Just(ErrorKind::SessionExists),
        Just(ErrorKind::Spec),
        Just(ErrorKind::Engine),
        Just(ErrorKind::Internal),
        Just(ErrorKind::Standby),
        Just(ErrorKind::Fenced),
    ];
    let primary = prop_oneof![Just(None), hostile_text().prop_map(Some)];
    let epoch = prop_oneof![Just(None), (0u64..1_000).prop_map(Some)];
    (kind, hostile_text(), primary, epoch)
        .prop_map(|(kind, message, primary, epoch)| {
            let mut err = ServiceError::new(kind, message);
            err.primary = primary;
            err.epoch = epoch;
            err
        })
        .boxed()
}

/// Every [`Request`] variant, with fuzzed payloads.
fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        (name(), open_params()).prop_map(|(session, params)| Request::Open { session, params }),
        (name(), explore_params())
            .prop_map(|(session, params)| Request::Explore { session, params }),
        (name(), optimize_params())
            .prop_map(|(session, params)| Request::Optimize { session, params }),
        (name(), collection::vec((0u32..64, 0u32..8), 0..5))
            .prop_map(|(session, moves)| Request::ApplyMoves { session, moves }),
        (name(), 0u32..64, 0u32..8).prop_map(|(session, node, to)| Request::Repartition {
            session,
            node,
            to
        }),
        (name(), 1.0f64..1e9, 1.0f64..1e9).prop_map(|(session, performance_ns, delay_ns)| {
            Request::SetConstraints { session, performance_ns, delay_ns }
        }),
        prop_oneof![Just(None), name().prop_map(Some)]
            .prop_map(|session| Request::Stats { session }),
        name().prop_map(|session| Request::Close { session }),
        Just(Request::Shutdown),
        (
            0u64..1_000_000,
            hostile_text(),
            0u64..100,
            prop_oneof![Just(None), hostile_text().prop_map(Some)]
        )
            .prop_map(|(seq, record, epoch, primary)| Request::ReplApply {
                seq,
                record,
                epoch,
                primary
            }),
        (
            0u64..1_000_000,
            collection::vec(hostile_text(), 0..4),
            0u64..100,
            prop_oneof![Just(None), hostile_text().prop_map(Some)]
        )
            .prop_map(|(seq, records, epoch, primary)| Request::ReplSnapshot {
                seq,
                records,
                epoch,
                primary
            }),
        Just(Request::Promote),
        // `primary && fenced` never encodes (fencing demotes), so the
        // strategy sticks to the three reachable roles.
        (
            0u64..100,
            prop_oneof![Just((true, false)), Just((false, false)), Just((false, true))]
        )
            .prop_map(|(epoch, (primary, fenced))| Request::RoleChange {
                epoch,
                primary,
                fenced
            }),
        hostile_text().prop_map(|pair| Request::AddPair { pair }),
        hostile_text().prop_map(|pair| Request::RemovePair { pair }),
        Just(Request::RouterStatus),
        name().prop_map(|session| Request::Export { session }),
        collection::vec(hostile_text(), 0..4).prop_map(|records| Request::Import { records }),
    ]
    .boxed()
}

/// Valid `req_id` envelope tags (1..=128 bytes, arbitrary content).
fn req_id() -> BoxedStrategy<Option<String>> {
    prop_oneof![
        Just(None),
        "[a-z0-9-]{1,32}".prop_map(Some),
        hostile_text().prop_map(|s| {
            let mut id = s;
            while id.len() > 128 {
                id.pop();
            }
            if id.is_empty() {
                id.push('x');
            }
            Some(id)
        }),
    ]
    .boxed()
}

/// Every [`Response`] variant, with fuzzed payloads.
fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        (
            // A role-less (legacy) pong never encodes an epoch, so pair
            // the two: epoch rides only when a role is present.
            prop_oneof![
                Just(None),
                (
                    prop_oneof![
                        Just("primary".to_owned()),
                        Just("standby".to_owned()),
                        Just("fenced".to_owned())
                    ],
                    0u64..100,
                )
                    .prop_map(Some)
            ],
            prop_oneof![Just(None), hostile_text().prop_map(Some)],
        )
            .prop_map(|(role_epoch, peer)| {
                let (role, epoch) = match role_epoch {
                    Some((role, epoch)) => (Some(role), epoch),
                    None => (None, 0),
                };
                Response::Pong { version: PROTOCOL_VERSION, role, epoch, peer }
            }),
        (name(), 1u64..64)
            .prop_map(|(session, partitions)| Response::Opened { session, partitions }),
        (name(), run_summary()).prop_map(|(session, run)| Response::Explored { session, run }),
        (name(), optimize_summary()).prop_map(|(session, result)| Response::Optimized {
            session,
            result: Box::new(result)
        }),
        (name(), 0u64..1_000)
            .prop_map(|(session, moves)| Response::MovesApplied { session, moves }),
        (name(), 0u32..64, 0u32..8).prop_map(|(session, node, to)| Response::Repartitioned {
            session,
            node,
            to
        }),
        (
            collection::vec(name(), 0..5),
            cache_stats(),
            collection::vec(0u64..4_096, 0..9),
            prop_oneof![Just(None), run_summary().prop_map(Some)],
        )
            .prop_map(|(sessions, cache, shard_entries, last_run)| Response::Stats {
                sessions,
                cache,
                shard_entries,
                last_run
            }),
        (name(), 1.0f64..1e9, 1.0f64..1e9).prop_map(|(session, performance_ns, delay_ns)| {
            Response::ConstraintsSet { session, performance_ns, delay_ns }
        }),
        name().prop_map(|session| Response::Closed { session }),
        Just(Response::ShuttingDown),
        (0u64..128, 0u64..128, 0u64..5_000).prop_map(
            |(inflight, max_inflight, retry_after_ms)| Response::Busy {
                inflight,
                max_inflight,
                retry_after_ms
            }
        ),
        (0u64..1_000_000).prop_map(|seq| Response::ReplAck { seq }),
        (0u64..1_000, 0u64..100)
            .prop_map(|(sessions, epoch)| Response::Promoted { sessions, epoch }),
        collection::vec(hostile_text(), 0..4).prop_map(|pairs| Response::PairAdded { pairs }),
        collection::vec(hostile_text(), 0..4).prop_map(|pairs| Response::PairRemoved { pairs }),
        collection::vec(hostile_text(), 0..4)
            .prop_map(|pairs| Response::RouterStatus { pairs }),
        (name(), collection::vec(hostile_text(), 0..4))
            .prop_map(|(session, records)| Response::Exported { session, records }),
        (name(), 0u64..1_000)
            .prop_map(|(session, records)| Response::Imported { session, records }),
        service_error().prop_map(Response::Error),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_round_trips(req in request()) {
        let line = req.encode();
        prop_assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
        prop_assert_eq!(Request::decode(&line).expect(&line), req);
    }

    #[test]
    fn every_response_round_trips(resp in response()) {
        let line = resp.encode();
        prop_assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
        prop_assert_eq!(Response::decode(&line).expect(&line), resp);
    }

    #[test]
    fn requests_survive_a_double_round_trip(req in request()) {
        // encode → decode → encode must be a fixed point (canonical form).
        let once = req.encode();
        let twice = Request::decode(&once).expect(&once).encode();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn responses_survive_a_double_round_trip(resp in response()) {
        let once = resp.encode();
        let twice = Response::decode(&once).expect(&once).encode();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn req_id_envelopes_round_trip(req in request(), id in req_id()) {
        let line = req.encode_tagged(id.as_deref());
        prop_assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
        let (decoded, decoded_id) = Request::decode_tagged(&line).expect(&line);
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(decoded_id, id);
    }

    #[test]
    fn untagged_decode_ignores_the_envelope(req in request(), id in req_id()) {
        // A plain decode must accept a tagged line and just drop the tag.
        let line = req.encode_tagged(id.as_deref());
        prop_assert_eq!(Request::decode(&line).expect(&line), req);
    }

    #[test]
    fn legacy_flat_budget_aliases_the_nested_envelope(
        session in name(),
        budget in budget(),
        jobs in opt_u32(),
    ) {
        // Pre-envelope clients sent `deadline_ms` / `max_trials` as flat
        // top-level fields. Hand-build such a line and check it decodes
        // to exactly what the canonical nested `"budget"` object yields.
        let mut flat = format!(
            "{{\"v\":1,\"type\":\"explore\",\"session\":\"{session}\",\"heuristic\":\"I\""
        );
        if let Some(deadline) = budget.deadline_ms {
            flat.push_str(&format!(",\"deadline_ms\":{deadline}"));
        }
        if let Some(trials) = budget.max_trials {
            flat.push_str(&format!(",\"max_trials\":{trials}"));
        }
        if let Some(jobs) = jobs {
            flat.push_str(&format!(",\"jobs\":{jobs}"));
        }
        flat.push('}');
        let canonical = Request::Explore {
            session,
            params: ExploreParams { heuristic: Heuristic::Iterative, budget, jobs },
        };
        let decoded = Request::decode(&flat).expect(&flat);
        prop_assert_eq!(&decoded, &canonical);
        // And the re-encoded canonical form still round-trips.
        let line = canonical.encode();
        prop_assert_eq!(Request::decode(&line).expect(&line), canonical);
    }
}
