//! Chaos harness: a real server behind the fault-injecting
//! [`ChaosProxy`], clients that retry through resets, stalls and torn
//! requests, and crash/recovery runs that must reproduce byte-identical
//! digests. Compiled only with `--features fault-inject`.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use chop_core::prelude::Heuristic;
use chop_service::chaos::{ChaosProxy, ConnFault};
use chop_service::{
    build_session, BackendSpec, Client, ClientError, ErrorKind, ExploreParams, OpenParams,
    Replicator, Request, Response, RetryPolicy, Router, RouterConfig, ServeConfig, Server,
    SessionManager,
};

const SPEC: &str = "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n";

const WIDE_SPEC: &str = "a = input 16\nb = input 16\nc = input 16\n\
                         p = mul a b\nq = add b c\nr = sub p q\n\
                         s = add r a\ny = output s\n";

fn test_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

fn start_server(config: ServeConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run().expect("server drains cleanly"));
    (addr, handle)
}

fn open_params(spec: &str, partitions: u32) -> OpenParams {
    OpenParams { spec: spec.into(), partitions, ..OpenParams::default() }
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chop-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn explored_digest(client: &mut Client, session: &str) -> String {
    let response = client
        .request(&Request::Explore {
            session: session.into(),
            params: ExploreParams::default(),
        })
        .expect("explore");
    match response {
        Response::Explored { run, .. } => run.digest,
        other => panic!("expected explored, got {other:?}"),
    }
}

/// The digest an uninterrupted in-process run of the same spec produces.
fn reference_digest(spec: &str, partitions: u32, jobs: usize) -> String {
    build_session(&open_params(spec, partitions), jobs)
        .expect("in-process session")
        .explore(Heuristic::Iterative)
        .expect("in-process explore")
        .digest()
}

#[test]
fn reset_mid_request_is_survived_by_idempotent_retry() {
    let (addr, server) = start_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let proxy = ChaosProxy::start(addr).expect("proxy");

    // The first connection dies 20 bytes into the request — mid-line, so
    // the open may or may not have reached the server. The retry
    // reconnects (next connection is fault-free) and, because the open
    // carries a req_id, a duplicate delivery is answered from the dedup
    // window instead of failing with SessionExists.
    proxy.push_fault(ConnFault::ResetAfter(20));
    let mut client = Client::connect(proxy.addr()).expect("connect via proxy");
    let open = Request::Open { session: "chaos".into(), params: open_params(SPEC, 2) };
    let policy = RetryPolicy::with_budget_ms(5_000);
    let response =
        client.request_with_retry(&open, Some("chaos-open-1"), &policy).expect("retried open");
    assert_eq!(response, Response::Opened { session: "chaos".into(), partitions: 2 });

    // An explicit replay of the same req_id must echo the same outcome.
    let replay = client.request_tagged(&open, Some("chaos-open-1")).expect("replay");
    assert_eq!(replay, response);

    // And the session the retries produced is the real one: its digest
    // matches an uninterrupted in-process run.
    assert_eq!(
        explored_digest(&mut client, "chaos"),
        reference_digest(SPEC, 2, test_jobs()),
        "digest after chaotic open must match the uninterrupted run"
    );

    drop(proxy);
    let mut direct = Client::connect(addr).expect("direct connect");
    direct.request(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn torn_request_gets_a_typed_protocol_error() {
    let (addr, server) = start_server(ServeConfig { workers: 1, ..ServeConfig::default() });
    let proxy = ChaosProxy::start(addr).expect("proxy");

    // Forward only 10 bytes of the request upstream, then half-close the
    // server-bound side: the server sees EOF mid-line and must answer
    // with a typed protocol error — never a silent close.
    proxy.push_fault(ConnFault::TruncateRequest(10));
    let mut client = Client::connect(proxy.addr()).expect("connect via proxy");
    let response = client.request(&Request::Ping);
    match response {
        Ok(Response::Error(e)) => {
            assert_eq!(e.kind, ErrorKind::Protocol);
            assert!(e.message.contains("truncated"), "{}", e.message);
        }
        other => panic!("expected typed protocol error, got {other:?}"),
    }

    drop(proxy);
    let mut direct = Client::connect(addr).expect("direct connect");
    direct.request(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn stalled_connection_is_outwaited_by_attempt_timeout() {
    let (addr, server) = start_server(ServeConfig { workers: 1, ..ServeConfig::default() });
    let proxy = ChaosProxy::start(addr).expect("proxy");

    // The first connection sits black-holed for 30 s — far past the test
    // budget. The per-attempt read timeout must trip, and the retry's
    // fresh connection (fault-free) completes the ping.
    proxy.push_fault(ConnFault::StallMs(30_000));
    let mut client = Client::connect(proxy.addr()).expect("connect via proxy");
    let policy = RetryPolicy {
        attempt_timeout: Some(Duration::from_millis(200)),
        ..RetryPolicy::with_budget_ms(10_000)
    };
    let response = client.request_with_retry(&Request::Ping, None, &policy).expect("ping");
    assert!(matches!(response, Response::Pong { .. }), "{response:?}");

    drop(proxy);
    let mut direct = Client::connect(addr).expect("direct connect");
    direct.request(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn untagged_mutation_is_refused_transport_retry_under_chaos() {
    let (addr, server) = start_server(ServeConfig { workers: 1, ..ServeConfig::default() });
    let proxy = ChaosProxy::start(addr).expect("proxy");

    proxy.push_fault(ConnFault::ResetAfter(5));
    let mut client = Client::connect(proxy.addr()).expect("connect via proxy");
    let open = Request::Open { session: "never".into(), params: open_params(SPEC, 1) };
    let err = client
        .request_with_retry(&open, None, &RetryPolicy::with_budget_ms(2_000))
        .expect_err("untagged mutation must not be blindly retried");
    assert!(matches!(err, ClientError::Io(_) | ClientError::ConnectionClosed), "{err}");

    drop(proxy);
    let mut direct = Client::connect(addr).expect("direct connect");
    direct.request(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread");
}

/// The crash/recovery acceptance criterion: kill a journaled server
/// mid-life, restart on the same state dir, and the recovered sessions
/// must re-explore to byte-identical digests at jobs 1 *and*
/// `CHOP_TEST_JOBS`, with a repeated `req_id` mutation still answered
/// idempotently.
#[test]
fn recovered_server_reproduces_digests_and_idempotency() {
    let dir = state_dir("recover");
    let config = ServeConfig {
        workers: 2,
        state_dir: Some(dir.clone()),
        snapshot_every: 0,
        ..ServeConfig::default()
    };

    // Life before the crash: one session opened with a req_id, then
    // mutated. The journal fsyncs every record, so an abrupt kill loses
    // nothing — the CLI suite proves the literal kill -9; here the server
    // is dropped with sessions still open (no close, no flush ceremony).
    let open = Request::Open { session: "wal".into(), params: open_params(WIDE_SPEC, 3) };
    {
        let (addr, server) = start_server(config.clone());
        let mut client = Client::connect(addr).expect("connect");
        let opened = client.request_tagged(&open, Some("wal-open")).expect("open");
        assert_eq!(opened, Response::Opened { session: "wal".into(), partitions: 3 });
        let moved = client
            .request_tagged(
                &Request::Repartition { session: "wal".into(), node: 3, to: 0 },
                Some("wal-move"),
            )
            .expect("repartition");
        assert!(matches!(moved, Response::Repartitioned { .. }), "{moved:?}");
        client.request(&Request::Shutdown).expect("shutdown");
        server.join().expect("server thread");
    }

    // The uninterrupted reference: same open + repartition, no crash, no
    // journal, fresh manager.
    let uninterrupted = |jobs: usize| -> String {
        let mgr = SessionManager::new(jobs);
        mgr.open("ref", &open_params(WIDE_SPEC, 3)).expect("open");
        mgr.repartition("ref", 3, 0).expect("repartition");
        mgr.explore("ref", &ExploreParams::default()).expect("explore").digest
    };

    // Restart on the same state dir and compare, at both job counts.
    for jobs in [1, test_jobs()] {
        let (addr, server) = start_server(ServeConfig { jobs, ..config.clone() });
        let mut client = Client::connect(addr).expect("connect recovered");

        // The recovered server must answer the replayed open from its
        // rebuilt dedup window — Opened, not SessionExists.
        let replay = client.request_tagged(&open, Some("wal-open")).expect("replayed open");
        assert_eq!(
            replay,
            Response::Opened { session: "wal".into(), partitions: 3 },
            "recovered server must answer a repeated req_id idempotently"
        );

        let digest = explored_digest(&mut client, "wal");
        assert_eq!(
            digest,
            uninterrupted(jobs),
            "recovered digest must be byte-identical at jobs={jobs}"
        );

        client.request(&Request::Shutdown).expect("shutdown");
        server.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal append failure mid-service refuses the mutation with a
/// typed internal error, and the sessions the failure spared survive a
/// recovery untouched.
#[test]
fn append_failure_is_typed_and_spares_existing_sessions() {
    use chop_core::prelude::fault::IoFaultPlan;

    let dir = state_dir("append-fault");
    let (mgr, _) = SessionManager::recover(1, &dir, 0).expect("fresh journaled manager");
    mgr.open("stable", &open_params(SPEC, 2)).expect("open");
    let stable_digest =
        mgr.explore("stable", &ExploreParams::default()).expect("explore").digest;

    // Every further append fails: mutations are refused, reads keep
    // working.
    mgr.inject_journal_faults(IoFaultPlan::none().fail_after(0));
    let err = mgr.open("doomed", &open_params(SPEC, 1)).expect_err("append must fail");
    assert_eq!(err.kind, ErrorKind::Internal);
    assert!(err.message.contains("journal"), "{}", err.message);
    assert_eq!(mgr.session_count(), 1);
    drop(mgr);

    let (recovered, report) = SessionManager::recover(1, &dir, 0).expect("recover");
    assert_eq!(report.sessions_restored, 1);
    assert_eq!(report.records_skipped, 0);
    assert_eq!(
        recovered.explore("stable", &ExploreParams::default()).expect("explore").digest,
        stable_digest,
        "sessions journaled before the fault must recover byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Polls `addr` until `session` shows up in its stats (replication is
/// asynchronous; a standby converges, it does not confirm).
fn wait_for_session(addr: &str, session: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut probe) = Client::connect(addr) {
            if let Ok(Response::Stats { sessions, .. }) =
                probe.request(&Request::Stats { session: None })
            {
                if sessions.iter().any(|s| s == session) {
                    return;
                }
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "standby at {addr} never saw session {session:?}"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// The headline failover drill: a replicated pair behind a `Router`, the
/// primary's power cord pulled mid-session (every live connection severed
/// without drain), and the retried tagged explore must come back from the
/// promoted standby with a digest byte-identical to an uninterrupted run
/// — at jobs 1 and `CHOP_TEST_JOBS`.
#[test]
fn killed_primary_fails_over_to_byte_identical_standby() {
    for jobs in [1, test_jobs()] {
        let tag = format!("failover-{jobs}");
        let standby_dir = state_dir(&format!("{tag}-standby"));
        let primary_dir = state_dir(&format!("{tag}-primary"));

        let standby_server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                jobs,
                state_dir: Some(standby_dir.clone()),
                standby: true,
                ..ServeConfig::default()
            },
        )
        .expect("bind standby");
        let standby_addr = standby_server.local_addr().expect("standby addr").to_string();
        let standby_thread = thread::spawn(move || standby_server.run().expect("standby runs"));

        let primary_server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                jobs,
                state_dir: Some(primary_dir.clone()),
                replicate_to: Some(standby_addr.clone()),
                ..ServeConfig::default()
            },
        )
        .expect("bind primary");
        let primary_addr = primary_server.local_addr().expect("primary addr").to_string();
        let kill = primary_server.kill_handle();
        let primary_thread = thread::spawn(move || primary_server.run());

        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig {
                pairs: vec![BackendSpec {
                    primary: primary_addr.clone(),
                    standby: Some(standby_addr.clone()),
                }],
                // Slow health checks: this test exercises the
                // request-path failover, not the health loop.
                health_interval: Duration::from_secs(30),
            },
        )
        .expect("bind router");
        let router_addr = router.local_addr().expect("router addr").to_string();
        let router_thread = thread::spawn(move || router.run().expect("router runs"));

        // Open through the router, tagged, and wait until replication has
        // delivered the session to the standby.
        let mut client = Client::connect(router_addr.as_str()).expect("connect router");
        let open = Request::Open { session: "fo".into(), params: open_params(WIDE_SPEC, 3) };
        let opened = client.request_tagged(&open, Some("fo-open")).expect("open via router");
        assert_eq!(opened, Response::Opened { session: "fo".into(), partitions: 3 });
        wait_for_session(&standby_addr, "fo");

        // Pull the primary's power cord: the kill flag severs every live
        // connection (including the router's cached one and the
        // replication stream) and the accept loop returns without drain.
        kill.store(true, std::sync::atomic::Ordering::SeqCst);
        primary_thread.join().expect("primary thread").expect("killed run returns");

        // The in-flight explore dies with the primary; the retry rides
        // through the router's promote-and-replay.
        let explore =
            Request::Explore { session: "fo".into(), params: ExploreParams::default() };
        let response = client
            .request_with_retry(
                &explore,
                Some("fo-explore"),
                &RetryPolicy::with_budget_ms(20_000),
            )
            .expect("explore survives the failover");
        let digest = match response {
            Response::Explored { run, .. } => run.digest,
            other => panic!("expected explored, got {other:?}"),
        };
        assert_eq!(
            digest,
            reference_digest(WIDE_SPEC, 3, jobs),
            "promoted standby must explore to the uninterrupted digest at jobs={jobs}"
        );

        // The replicated dedup window answers the replayed open on the
        // promoted standby — Opened, not SessionExists.
        let replay = client.request_tagged(&open, Some("fo-open")).expect("replayed open");
        assert_eq!(replay, opened, "promoted standby must keep req_id idempotency");

        client.request(&Request::Shutdown).expect("router shutdown");
        router_thread.join().expect("router thread");
        let mut direct = Client::connect(standby_addr.as_str()).expect("standby connect");
        direct.request(&Request::Shutdown).expect("standby shutdown");
        standby_thread.join().expect("standby thread");
        let _ = std::fs::remove_dir_all(&standby_dir);
        let _ = std::fs::remove_dir_all(&primary_dir);
    }
}

/// Power loss with a crowd in the room: the kill flag severs dozens of
/// live reactor connections — some idle, some mid-pipeline, one frozen
/// mid-line — without drain, and a restart on the same state dir still
/// re-explores every journaled session to the uninterrupted digest at
/// jobs 1 and `CHOP_TEST_JOBS`.
#[test]
fn kill_with_many_live_connections_recovers_byte_identical() {
    use std::io::{Read, Write};

    let dir = state_dir("kill-crowd");
    let config = ServeConfig {
        workers: 2,
        state_dir: Some(dir.clone()),
        snapshot_every: 0,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let kill = server.kill_handle();
    let server_thread = thread::spawn(move || server.run());

    // Committed state the crash must not lose: two tagged opens and a
    // tagged repartition.
    let open_a = Request::Open { session: "crowd-a".into(), params: open_params(SPEC, 2) };
    let open_b = Request::Open { session: "crowd-b".into(), params: open_params(WIDE_SPEC, 3) };
    let mut client = Client::connect(addr).expect("connect");
    client.request_tagged(&open_a, Some("crowd-a-open")).expect("open a");
    client.request_tagged(&open_b, Some("crowd-b-open")).expect("open b");
    let moved = client
        .request_tagged(
            &Request::Repartition { session: "crowd-b".into(), node: 3, to: 0 },
            Some("crowd-b-move"),
        )
        .expect("repartition");
    assert!(matches!(moved, Response::Repartitioned { .. }), "{moved:?}");

    // The crowd: 32 extra connections in assorted states — idle after a
    // ping, never-spoke, and one frozen mid-request-line.
    let mut crowd = Vec::new();
    for i in 0..32 {
        let mut stream = std::net::TcpStream::connect(addr).expect("crowd connect");
        if i % 3 == 0 {
            stream.write_all(b"{\"v\":1,\"type\":\"ping\"}\n").expect("crowd ping");
            let mut buf = [0u8; 256];
            let n = stream.read(&mut buf).expect("crowd pong");
            assert!(n > 0, "crowd conn {i} got EOF instead of a pong");
        } else if i % 3 == 1 {
            // Half a request, no newline: the reactor is holding partial
            // input for this connection when the cord is pulled.
            stream.write_all(b"{\"v\":1,\"ty").expect("crowd partial");
        }
        crowd.push(stream);
    }

    // Pull the cord. Every live connection is severed without drain.
    kill.store(true, std::sync::atomic::Ordering::SeqCst);
    server_thread.join().expect("server thread").expect("killed run returns");
    for (i, stream) in crowd.iter_mut().enumerate() {
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("crowd read timeout");
        let mut buf = [0u8; 256];
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("crowd conn {i} got {n} bytes after the kill"),
        }
    }

    // Restart on the same dir: both sessions recover and re-explore to
    // the digests an uninterrupted run produces, and the dedup window
    // still answers the replayed open.
    let reference_b = |jobs: usize| -> String {
        let mgr = SessionManager::new(jobs);
        mgr.open("ref", &open_params(WIDE_SPEC, 3)).expect("open");
        mgr.repartition("ref", 3, 0).expect("repartition");
        mgr.explore("ref", &ExploreParams::default()).expect("explore").digest
    };
    for jobs in [1, test_jobs()] {
        let (addr, server) = start_server(ServeConfig { jobs, ..config.clone() });
        let mut client = Client::connect(addr).expect("connect recovered");
        let replay = client.request_tagged(&open_a, Some("crowd-a-open")).expect("replay");
        assert_eq!(
            replay,
            Response::Opened { session: "crowd-a".into(), partitions: 2 },
            "recovered server must answer a repeated req_id idempotently"
        );
        assert_eq!(
            explored_digest(&mut client, "crowd-a"),
            reference_digest(SPEC, 2, jobs),
            "crowd-a digest must be byte-identical at jobs={jobs}"
        );
        assert_eq!(
            explored_digest(&mut client, "crowd-b"),
            reference_b(jobs),
            "crowd-b digest must be byte-identical at jobs={jobs}"
        );
        client.request(&Request::Shutdown).expect("shutdown");
        server.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The replication-equivalence satellite: a standby fed one snapshot
/// handoff plus tail records must recover (from its own journal) the same
/// session set as the dead primary's journal replayed locally.
#[test]
fn standby_journal_recovers_the_same_sessions_as_the_primary_journal() {
    let standby_dir = state_dir("repl-standby");
    let primary_dir = state_dir("repl-primary");

    let standby_server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            state_dir: Some(standby_dir.clone()),
            standby: true,
            ..ServeConfig::default()
        },
    )
    .expect("bind standby");
    let standby_addr = standby_server.local_addr().expect("standby addr").to_string();
    let standby_thread = thread::spawn(move || standby_server.run().expect("standby runs"));

    // A journaled in-process primary. History committed *before* the
    // replicator attaches reaches the standby only via the snapshot-first
    // resync; the mutations after it arrive as tail records.
    let (primary, _) = SessionManager::recover(1, &primary_dir, 0).expect("journaled primary");
    let primary = std::sync::Arc::new(primary);
    primary.open("alpha", &open_params(SPEC, 2)).expect("open alpha");
    primary.open("beta", &open_params(WIDE_SPEC, 3)).expect("open beta");
    primary.set_constraints("alpha", 40_000.0, 40_000.0).expect("constrain");
    let mut replicator =
        Replicator::start(std::sync::Arc::clone(&primary), standby_addr.clone());
    primary.open("gamma", &open_params(SPEC, 1)).expect("open gamma");
    primary.close("beta").expect("close beta");
    wait_for_session(&standby_addr, "gamma");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut probe = Client::connect(standby_addr.as_str()).expect("probe standby");
        let Ok(Response::Stats { sessions, .. }) =
            probe.request(&Request::Stats { session: None })
        else {
            panic!("standby stats")
        };
        if !sessions.iter().any(|s| s == "beta") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "standby never saw beta close");
        thread::sleep(Duration::from_millis(20));
    }

    // The primary dies; the standby drains gracefully (its own journal is
    // already current — every applied record went through it).
    replicator.stop();
    drop(primary);
    let mut direct = Client::connect(standby_addr.as_str()).expect("standby connect");
    direct.request(&Request::Shutdown).expect("standby shutdown");
    standby_thread.join().expect("standby thread");

    let (from_primary, primary_report) =
        SessionManager::recover(1, &primary_dir, 0).expect("recover primary journal");
    let (from_standby, standby_report) =
        SessionManager::recover(1, &standby_dir, 0).expect("recover standby journal");
    assert_eq!(
        standby_report.sessions_restored, primary_report.sessions_restored,
        "both journals must restore the same number of sessions"
    );
    let (mut primary_sessions, _, _) = from_primary.stats(None).expect("primary stats");
    let (mut standby_sessions, _, _) = from_standby.stats(None).expect("standby stats");
    primary_sessions.sort();
    standby_sessions.sort();
    assert_eq!(
        standby_sessions, primary_sessions,
        "standby journal must reproduce the primary's session set"
    );
    for session in &primary_sessions {
        assert_eq!(
            from_standby.explore(session, &ExploreParams::default()).expect("explore").digest,
            from_primary.explore(session, &ExploreParams::default()).expect("explore").digest,
            "session {session:?} must explore identically from either journal"
        );
    }
    let _ = std::fs::remove_dir_all(&standby_dir);
    let _ = std::fs::remove_dir_all(&primary_dir);
}

/// The warm-restart drill: a server with a cache snapshot configured is
/// kill -9'd (no drain, so no final snapshot write — only the periodic
/// cadence ran), and a restart on the same snapshot path must explore a
/// fresh session to a byte-identical digest *without a single predictor
/// call* — the whole run served from the restored cache.
#[test]
fn killed_server_restarts_warm_from_cache_snapshot() {
    use chop_core::prelude::{load_snapshot, PredictionCache};

    for jobs in [1, test_jobs()] {
        let snap = std::env::temp_dir()
            .join(format!("chop-chaos-snap-{jobs}-{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&snap);
        let config = ServeConfig {
            workers: 2,
            jobs,
            cache_snapshot: Some(snap.clone()),
            // Snapshot on every insertion: the only persistence this
            // test may rely on, since the kill skips the drain write.
            cache_snapshot_every: 1,
            ..ServeConfig::default()
        };

        // Life before the crash: open + explore to warm the cache.
        let server = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let kill = server.kill_handle();
        let server_thread = thread::spawn(move || server.run());
        let mut client = Client::connect(addr).expect("connect");
        let open = Request::Open { session: "warm".into(), params: open_params(WIDE_SPEC, 3) };
        client.request(&open).expect("open");
        let first = explored_digest(&mut client, "warm");
        assert_eq!(first, reference_digest(WIDE_SPEC, 3, jobs));

        // The snapshot thread persists on its own cadence; wait until a
        // trial load shows every cache entry on disk before pulling the
        // cord.
        let entries = match client.request(&Request::Stats { session: None }) {
            Ok(Response::Stats { cache, .. }) => cache.entries,
            other => panic!("expected stats, got {other:?}"),
        };
        assert!(entries > 0, "the warming explore must populate the cache");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let scratch = PredictionCache::with_config(256, 1);
            let loaded = load_snapshot(&snap, &scratch).unwrap_or_default();
            if loaded.entries as u64 == entries {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "snapshot never caught up: {} of {entries} entries on disk",
                loaded.entries
            );
            thread::sleep(Duration::from_millis(20));
        }

        // Kill -9: every connection severed, no drain, no final write.
        kill.store(true, std::sync::atomic::Ordering::SeqCst);
        server_thread.join().expect("server thread").expect("killed run returns");

        // Restart on the same snapshot path. No journal: the session is
        // gone, but the cache is content-addressed, so a fresh open of
        // the same spec must explore entirely from the restored entries.
        let (addr, server) = start_server(config);
        let mut client = Client::connect(addr).expect("connect restarted");
        client.request(&open).expect("re-open");
        let response = client
            .request(&Request::Explore {
                session: "warm".into(),
                params: ExploreParams::default(),
            })
            .expect("explore after restart");
        let run = match response {
            Response::Explored { run, .. } => run,
            other => panic!("expected explored, got {other:?}"),
        };
        assert_eq!(
            run.digest, first,
            "snapshot-restored digest must be byte-identical at jobs={jobs}"
        );
        assert_eq!(
            run.predictor_calls, 0,
            "a snapshot-warmed explore must be served entirely from cache"
        );
        assert!(run.cache_hits > 0, "the restored entries must actually be used");

        client.request(&Request::Shutdown).expect("shutdown");
        server.join().expect("server thread");
        let _ = std::fs::remove_file(&snap);
    }
}

/// Reserves an ephemeral port and frees it for a server that must come
/// back on a *known* address (rejoin drills restart nodes in place).
fn reserve_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = listener.local_addr().expect("reserved addr").to_string();
    drop(listener);
    addr
}

/// Polls `addr` until its pong reports one of `roles` (role transitions
/// are asynchronous — a restarted stale primary demotes only once its
/// own replication stream gets fenced).
fn wait_for_role(addr: &str, roles: &[&str]) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut probe) = Client::connect(addr) {
            if let Ok(Response::Pong { role: Some(role), .. }) = probe.request(&Request::Ping) {
                if roles.contains(&role.as_str()) {
                    return;
                }
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "node at {addr} never reached a role in {roles:?}"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// Binds a server on a reserved address and runs it on its own thread,
/// returning the kill flag and the join handle.
fn start_at(
    addr: &str,
    config: ServeConfig,
) -> (std::sync::Arc<std::sync::atomic::AtomicBool>, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(addr, config).expect("bind reserved addr");
    let kill = server.kill_handle();
    let handle = thread::spawn(move || server.run());
    (kill, handle)
}

/// The self-healing headline: kill the primary, promote the standby,
/// restart the old primary on its own journal — its replication stream is
/// fenced by the newer epoch, so it demotes itself and resyncs
/// snapshot-first (including a session it never saw). Then kill the *new*
/// primary: the rejoined node promotes back (failback). Every surviving
/// node explores every session to the uninterrupted digest, at jobs 1 and
/// `CHOP_TEST_JOBS`.
#[test]
fn killed_primary_rejoins_demoted_and_fails_back_byte_identical() {
    for jobs in [1, test_jobs()] {
        let tag = format!("rejoin-{jobs}");
        let a_dir = state_dir(&format!("{tag}-a"));
        let b_dir = state_dir(&format!("{tag}-b"));
        let a_addr = reserve_addr();
        let b_addr = reserve_addr();
        let config = |dir: &PathBuf, peer: &str, standby: bool| ServeConfig {
            workers: 2,
            jobs,
            state_dir: Some(dir.clone()),
            standby,
            peer: Some(peer.to_owned()),
            ..ServeConfig::default()
        };

        // Epoch 0: A is primary, B its warm standby, linked symmetrically.
        let (a_kill, a_thread) = start_at(&a_addr, config(&a_dir, &b_addr, false));
        let (b_kill, b_thread) = start_at(&b_addr, config(&b_dir, &a_addr, true));
        let mut client = Client::connect(a_addr.as_str()).expect("connect A");
        let open = Request::Open { session: "cyc".into(), params: open_params(WIDE_SPEC, 3) };
        client.request_tagged(&open, Some("cyc-open")).expect("open cyc");
        wait_for_session(&b_addr, "cyc");

        // Pull A's cord; promote B to epoch 1 and commit a session the
        // dead primary has never heard of.
        a_kill.store(true, std::sync::atomic::Ordering::SeqCst);
        a_thread.join().expect("A thread").expect("killed run returns");
        let mut b_client = Client::connect(b_addr.as_str()).expect("connect B");
        assert_eq!(
            b_client.request(&Request::Promote).expect("promote B"),
            Response::Promoted { sessions: 1, epoch: 1 }
        );
        let post = Request::Open { session: "post".into(), params: open_params(SPEC, 2) };
        b_client.request_tagged(&post, Some("post-open")).expect("open post");

        // Restart the old primary in place, on its own journal, with the
        // same symmetric peer link. It comes back believing it is an
        // epoch-0 primary; the fenced refusal of its first snapshot
        // demotes it, and B's stream (parked until promotion) resyncs it.
        let (_a_kill, a_thread) = start_at(&a_addr, config(&a_dir, &b_addr, false));
        wait_for_role(&a_addr, &["fenced", "standby"]);
        wait_for_session(&a_addr, "post");

        // Convergence proof: both nodes explore both sessions to the
        // digest an uninterrupted run produces.
        for addr in [&a_addr, &b_addr] {
            let mut probe = Client::connect(addr.as_str()).expect("probe");
            assert_eq!(
                explored_digest(&mut probe, "cyc"),
                reference_digest(WIDE_SPEC, 3, jobs),
                "session cyc at {addr}, jobs={jobs}"
            );
            assert_eq!(
                explored_digest(&mut probe, "post"),
                reference_digest(SPEC, 2, jobs),
                "session post at {addr}, jobs={jobs}"
            );
        }

        // Failback: kill the *new* primary. The rejoined node promotes to
        // epoch 2 and takes mutations like any primary.
        b_kill.store(true, std::sync::atomic::Ordering::SeqCst);
        b_thread.join().expect("B thread").expect("killed run returns");
        let mut a_client = Client::connect(a_addr.as_str()).expect("reconnect A");
        assert_eq!(
            a_client.request(&Request::Promote).expect("promote A"),
            Response::Promoted { sessions: 2, epoch: 2 }
        );
        let moved = a_client
            .request(&Request::Repartition { session: "post".into(), node: 2, to: 0 })
            .expect("mutate after failback");
        assert!(matches!(moved, Response::Repartitioned { .. }), "{moved:?}");

        a_client.request(&Request::Shutdown).expect("shutdown A");
        a_thread.join().expect("A thread").expect("drained run returns");
        let _ = std::fs::remove_dir_all(&a_dir);
        let _ = std::fs::remove_dir_all(&b_dir);
    }
}

/// The fencing headline: once a restarted stale primary has been fenced,
/// a direct mutation against it gets the typed `fenced` refusal carrying
/// the current primary's address and epoch — and exactly one node in the
/// pair answers as an unfenced primary. Following the redirect lands the
/// mutation on that primary.
#[test]
fn restarted_stale_primary_refuses_mutations_with_a_typed_fenced_redirect() {
    let a_dir = state_dir("fence-a");
    let b_dir = state_dir("fence-b");
    let a_addr = reserve_addr();
    let b_addr = reserve_addr();
    let config = |dir: &PathBuf, peer: &str, standby: bool| ServeConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        standby,
        peer: Some(peer.to_owned()),
        ..ServeConfig::default()
    };

    let (a_kill, a_thread) = start_at(&a_addr, config(&a_dir, &b_addr, false));
    let (_b_kill, b_thread) = start_at(&b_addr, config(&b_dir, &a_addr, true));
    let mut client = Client::connect(a_addr.as_str()).expect("connect A");
    let open = Request::Open { session: "fence".into(), params: open_params(SPEC, 2) };
    client.request_tagged(&open, Some("fence-open")).expect("open");
    wait_for_session(&b_addr, "fence");

    a_kill.store(true, std::sync::atomic::Ordering::SeqCst);
    a_thread.join().expect("A thread").expect("killed run returns");
    let mut b_client = Client::connect(b_addr.as_str()).expect("connect B");
    assert_eq!(
        b_client.request(&Request::Promote).expect("promote B"),
        Response::Promoted { sessions: 1, epoch: 1 }
    );

    let (_a_kill, a_thread) = start_at(&a_addr, config(&a_dir, &b_addr, false));
    wait_for_role(&a_addr, &["fenced"]);

    // The raw request path (no redirect following — what the router and
    // the replicator see): a typed `fenced` refusal naming the primary.
    let mutation = Request::Repartition { session: "fence".into(), node: 3, to: 0 };
    let mut direct = Client::connect(a_addr.as_str()).expect("reconnect A");
    let refused = direct.request(&mutation).expect("refusal still answers");
    let Response::Error(e) = refused else {
        panic!("fenced node accepted a direct mutation: {refused:?}")
    };
    assert_eq!(e.kind, ErrorKind::Fenced, "{e:?}");
    assert_eq!(e.epoch, Some(1), "the refusal must carry the fencing epoch");
    assert_eq!(
        e.primary.as_deref(),
        Some(b_addr.as_str()),
        "the refusal must name the current primary"
    );

    // No dual-primary window: the pair holds exactly one unfenced primary.
    let role_of = |addr: &str| -> String {
        let mut probe = Client::connect(addr).expect("probe");
        match probe.request(&Request::Ping).expect("ping") {
            Response::Pong { role: Some(role), .. } => role,
            other => panic!("expected a role-bearing pong, got {other:?}"),
        }
    };
    assert_eq!(role_of(&a_addr), "fenced");
    assert_eq!(role_of(&b_addr), "primary");

    // Following the redirect applies the mutation on the real primary.
    let followed = direct
        .request_following_redirects(&mutation, None, &RetryPolicy::with_budget_ms(2_000))
        .expect("redirected mutation");
    assert!(matches!(followed, Response::Repartitioned { .. }), "{followed:?}");

    let mut b_direct = Client::connect(b_addr.as_str()).expect("connect B");
    b_direct.request(&Request::Shutdown).expect("shutdown B");
    b_thread.join().expect("B thread").expect("drained run returns");
    let mut a_direct = Client::connect(a_addr.as_str()).expect("connect A");
    a_direct.request(&Request::Shutdown).expect("shutdown A");
    a_thread.join().expect("A thread").expect("drained run returns");
    let _ = std::fs::remove_dir_all(&a_dir);
    let _ = std::fs::remove_dir_all(&b_dir);
}

/// A torn tail record — the crash happened mid-append — is skipped with
/// a warning on recovery; every record before it is intact.
#[test]
fn torn_journal_tail_loses_only_the_torn_record() {
    use chop_core::prelude::fault::IoFaultPlan;

    let dir = state_dir("torn-tail");
    let (mgr, _) = SessionManager::recover(1, &dir, 0).expect("fresh journaled manager");
    mgr.open("kept", &open_params(SPEC, 2)).expect("open kept");
    // The next append persists only 25 bytes of its record — a torn
    // write at crash time — but reports success to the dying process.
    // (Injection resets the journal's append counter, so budget 0 tears
    // the very next append.)
    mgr.inject_journal_faults(IoFaultPlan::none().fail_after(0).torn_tail(25));
    mgr.open("torn", &open_params(SPEC, 1)).expect("torn open still acks");
    drop(mgr);

    let (recovered, report) = SessionManager::recover(1, &dir, 0).expect("recover");
    assert_eq!(report.records_skipped, 1, "the torn record must be skipped, not fatal");
    assert_eq!(report.sessions_restored, 1);
    assert_eq!(
        recovered.stats(None).expect("stats").0,
        vec!["kept".to_owned()],
        "only the session before the torn record survives"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
