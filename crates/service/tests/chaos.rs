//! Chaos harness: a real server behind the fault-injecting
//! [`ChaosProxy`], clients that retry through resets, stalls and torn
//! requests, and crash/recovery runs that must reproduce byte-identical
//! digests. Compiled only with `--features fault-inject`.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use chop_core::prelude::Heuristic;
use chop_service::chaos::{ChaosProxy, ConnFault};
use chop_service::{
    build_session, Client, ClientError, ErrorKind, ExploreParams, OpenParams, Request,
    Response, RetryPolicy, ServeConfig, Server, SessionManager,
};

const SPEC: &str = "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n";

const WIDE_SPEC: &str = "a = input 16\nb = input 16\nc = input 16\n\
                         p = mul a b\nq = add b c\nr = sub p q\n\
                         s = add r a\ny = output s\n";

fn test_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

fn start_server(config: ServeConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run().expect("server drains cleanly"));
    (addr, handle)
}

fn open_params(spec: &str, partitions: u32) -> OpenParams {
    OpenParams { spec: spec.into(), partitions, ..OpenParams::default() }
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chop-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn explored_digest(client: &mut Client, session: &str) -> String {
    let response = client
        .request(&Request::Explore {
            session: session.into(),
            params: ExploreParams::default(),
        })
        .expect("explore");
    match response {
        Response::Explored { run, .. } => run.digest,
        other => panic!("expected explored, got {other:?}"),
    }
}

/// The digest an uninterrupted in-process run of the same spec produces.
fn reference_digest(spec: &str, partitions: u32, jobs: usize) -> String {
    build_session(&open_params(spec, partitions), jobs)
        .expect("in-process session")
        .explore(Heuristic::Iterative)
        .expect("in-process explore")
        .digest()
}

#[test]
fn reset_mid_request_is_survived_by_idempotent_retry() {
    let (addr, server) = start_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let proxy = ChaosProxy::start(addr).expect("proxy");

    // The first connection dies 20 bytes into the request — mid-line, so
    // the open may or may not have reached the server. The retry
    // reconnects (next connection is fault-free) and, because the open
    // carries a req_id, a duplicate delivery is answered from the dedup
    // window instead of failing with SessionExists.
    proxy.push_fault(ConnFault::ResetAfter(20));
    let mut client = Client::connect(proxy.addr()).expect("connect via proxy");
    let open = Request::Open { session: "chaos".into(), params: open_params(SPEC, 2) };
    let policy = RetryPolicy::with_budget_ms(5_000);
    let response =
        client.request_with_retry(&open, Some("chaos-open-1"), &policy).expect("retried open");
    assert_eq!(response, Response::Opened { session: "chaos".into(), partitions: 2 });

    // An explicit replay of the same req_id must echo the same outcome.
    let replay = client.request_tagged(&open, Some("chaos-open-1")).expect("replay");
    assert_eq!(replay, response);

    // And the session the retries produced is the real one: its digest
    // matches an uninterrupted in-process run.
    assert_eq!(
        explored_digest(&mut client, "chaos"),
        reference_digest(SPEC, 2, test_jobs()),
        "digest after chaotic open must match the uninterrupted run"
    );

    drop(proxy);
    let mut direct = Client::connect(addr).expect("direct connect");
    direct.request(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn torn_request_gets_a_typed_protocol_error() {
    let (addr, server) = start_server(ServeConfig { workers: 1, ..ServeConfig::default() });
    let proxy = ChaosProxy::start(addr).expect("proxy");

    // Forward only 10 bytes of the request upstream, then half-close the
    // server-bound side: the server sees EOF mid-line and must answer
    // with a typed protocol error — never a silent close.
    proxy.push_fault(ConnFault::TruncateRequest(10));
    let mut client = Client::connect(proxy.addr()).expect("connect via proxy");
    let response = client.request(&Request::Ping);
    match response {
        Ok(Response::Error(e)) => {
            assert_eq!(e.kind, ErrorKind::Protocol);
            assert!(e.message.contains("truncated"), "{}", e.message);
        }
        other => panic!("expected typed protocol error, got {other:?}"),
    }

    drop(proxy);
    let mut direct = Client::connect(addr).expect("direct connect");
    direct.request(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn stalled_connection_is_outwaited_by_attempt_timeout() {
    let (addr, server) = start_server(ServeConfig { workers: 1, ..ServeConfig::default() });
    let proxy = ChaosProxy::start(addr).expect("proxy");

    // The first connection sits black-holed for 30 s — far past the test
    // budget. The per-attempt read timeout must trip, and the retry's
    // fresh connection (fault-free) completes the ping.
    proxy.push_fault(ConnFault::StallMs(30_000));
    let mut client = Client::connect(proxy.addr()).expect("connect via proxy");
    let policy = RetryPolicy {
        attempt_timeout: Some(Duration::from_millis(200)),
        ..RetryPolicy::with_budget_ms(10_000)
    };
    let response = client.request_with_retry(&Request::Ping, None, &policy).expect("ping");
    assert!(matches!(response, Response::Pong { .. }), "{response:?}");

    drop(proxy);
    let mut direct = Client::connect(addr).expect("direct connect");
    direct.request(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn untagged_mutation_is_refused_transport_retry_under_chaos() {
    let (addr, server) = start_server(ServeConfig { workers: 1, ..ServeConfig::default() });
    let proxy = ChaosProxy::start(addr).expect("proxy");

    proxy.push_fault(ConnFault::ResetAfter(5));
    let mut client = Client::connect(proxy.addr()).expect("connect via proxy");
    let open = Request::Open { session: "never".into(), params: open_params(SPEC, 1) };
    let err = client
        .request_with_retry(&open, None, &RetryPolicy::with_budget_ms(2_000))
        .expect_err("untagged mutation must not be blindly retried");
    assert!(matches!(err, ClientError::Io(_) | ClientError::ConnectionClosed), "{err}");

    drop(proxy);
    let mut direct = Client::connect(addr).expect("direct connect");
    direct.request(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread");
}

/// The crash/recovery acceptance criterion: kill a journaled server
/// mid-life, restart on the same state dir, and the recovered sessions
/// must re-explore to byte-identical digests at jobs 1 *and*
/// `CHOP_TEST_JOBS`, with a repeated `req_id` mutation still answered
/// idempotently.
#[test]
fn recovered_server_reproduces_digests_and_idempotency() {
    let dir = state_dir("recover");
    let config = ServeConfig {
        workers: 2,
        state_dir: Some(dir.clone()),
        snapshot_every: 0,
        ..ServeConfig::default()
    };

    // Life before the crash: one session opened with a req_id, then
    // mutated. The journal fsyncs every record, so an abrupt kill loses
    // nothing — the CLI suite proves the literal kill -9; here the server
    // is dropped with sessions still open (no close, no flush ceremony).
    let open = Request::Open { session: "wal".into(), params: open_params(WIDE_SPEC, 3) };
    {
        let (addr, server) = start_server(config.clone());
        let mut client = Client::connect(addr).expect("connect");
        let opened = client.request_tagged(&open, Some("wal-open")).expect("open");
        assert_eq!(opened, Response::Opened { session: "wal".into(), partitions: 3 });
        let moved = client
            .request_tagged(
                &Request::Repartition { session: "wal".into(), node: 3, to: 0 },
                Some("wal-move"),
            )
            .expect("repartition");
        assert!(matches!(moved, Response::Repartitioned { .. }), "{moved:?}");
        client.request(&Request::Shutdown).expect("shutdown");
        server.join().expect("server thread");
    }

    // The uninterrupted reference: same open + repartition, no crash, no
    // journal, fresh manager.
    let uninterrupted = |jobs: usize| -> String {
        let mgr = SessionManager::new(jobs);
        mgr.open("ref", &open_params(WIDE_SPEC, 3)).expect("open");
        mgr.repartition("ref", 3, 0).expect("repartition");
        mgr.explore("ref", &ExploreParams::default()).expect("explore").digest
    };

    // Restart on the same state dir and compare, at both job counts.
    for jobs in [1, test_jobs()] {
        let (addr, server) = start_server(ServeConfig { jobs, ..config.clone() });
        let mut client = Client::connect(addr).expect("connect recovered");

        // The recovered server must answer the replayed open from its
        // rebuilt dedup window — Opened, not SessionExists.
        let replay = client.request_tagged(&open, Some("wal-open")).expect("replayed open");
        assert_eq!(
            replay,
            Response::Opened { session: "wal".into(), partitions: 3 },
            "recovered server must answer a repeated req_id idempotently"
        );

        let digest = explored_digest(&mut client, "wal");
        assert_eq!(
            digest,
            uninterrupted(jobs),
            "recovered digest must be byte-identical at jobs={jobs}"
        );

        client.request(&Request::Shutdown).expect("shutdown");
        server.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal append failure mid-service refuses the mutation with a
/// typed internal error, and the sessions the failure spared survive a
/// recovery untouched.
#[test]
fn append_failure_is_typed_and_spares_existing_sessions() {
    use chop_core::fault::IoFaultPlan;

    let dir = state_dir("append-fault");
    let (mgr, _) = SessionManager::recover(1, &dir, 0).expect("fresh journaled manager");
    mgr.open("stable", &open_params(SPEC, 2)).expect("open");
    let stable_digest =
        mgr.explore("stable", &ExploreParams::default()).expect("explore").digest;

    // Every further append fails: mutations are refused, reads keep
    // working.
    mgr.inject_journal_faults(IoFaultPlan::none().fail_after(0));
    let err = mgr.open("doomed", &open_params(SPEC, 1)).expect_err("append must fail");
    assert_eq!(err.kind, ErrorKind::Internal);
    assert!(err.message.contains("journal"), "{}", err.message);
    assert_eq!(mgr.session_count(), 1);
    drop(mgr);

    let (recovered, report) = SessionManager::recover(1, &dir, 0).expect("recover");
    assert_eq!(report.sessions_restored, 1);
    assert_eq!(report.records_skipped, 0);
    assert_eq!(
        recovered.explore("stable", &ExploreParams::default()).expect("explore").digest,
        stable_digest,
        "sessions journaled before the fault must recover byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn tail record — the crash happened mid-append — is skipped with
/// a warning on recovery; every record before it is intact.
#[test]
fn torn_journal_tail_loses_only_the_torn_record() {
    use chop_core::fault::IoFaultPlan;

    let dir = state_dir("torn-tail");
    let (mgr, _) = SessionManager::recover(1, &dir, 0).expect("fresh journaled manager");
    mgr.open("kept", &open_params(SPEC, 2)).expect("open kept");
    // The next append persists only 25 bytes of its record — a torn
    // write at crash time — but reports success to the dying process.
    // (Injection resets the journal's append counter, so budget 0 tears
    // the very next append.)
    mgr.inject_journal_faults(IoFaultPlan::none().fail_after(0).torn_tail(25));
    mgr.open("torn", &open_params(SPEC, 1)).expect("torn open still acks");
    drop(mgr);

    let (recovered, report) = SessionManager::recover(1, &dir, 0).expect("recover");
    assert_eq!(report.records_skipped, 1, "the torn record must be skipped, not fatal");
    assert_eq!(report.sessions_restored, 1);
    assert_eq!(
        recovered.stats(None).expect("stats").0,
        vec!["kept".to_owned()],
        "only the session before the torn record survives"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
