//! Physical-quantity newtypes shared by the CHOP crates.
//!
//! The paper works in early-90s MOSIS units: areas in square mils, lengths in
//! mils, delays in nanoseconds, data in bits and time discretized in clock
//! cycles. The newtypes below keep those dimensions from being mixed up
//! (C-NEWTYPE) while staying `Copy` and cheap.
//!
//! # Examples
//!
//! ```
//! use chop_stat::units::{Mils, Nanos, SquareMils};
//!
//! let w = Mils::new(311.02);
//! let h = Mils::new(362.20);
//! let area: SquareMils = w * h;
//! assert!(area.value() > 110_000.0);
//! let t = Nanos::new(300.0) + Nanos::new(25.0);
//! assert_eq!(t.value(), 325.0);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Creates a quantity from a raw value.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN or negative — the physical
            /// quantities CHOP manipulates are all non-negative.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(value.is_finite(), concat!(stringify!($name), " must be finite"));
                assert!(value >= 0.0, concat!(stringify!($name), " must be non-negative"));
                Self(value)
            }

            /// Zero quantity.
            #[must_use]
            pub fn zero() -> Self {
                Self(0.0)
            }

            /// The raw value.
            #[must_use]
            pub fn value(&self) -> f64 {
                self.0
            }

            /// Component-wise maximum.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Saturating subtraction: never goes below zero.
            #[must_use]
            pub fn saturating_sub(self, other: Self) -> Self {
                Self((self.0 - other.0).max(0.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            /// # Panics
            ///
            /// Panics if the result would be negative.
            fn sub(self, rhs: $name) -> $name {
                $name::new(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name::new(self.0 * rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::zero(), |a, b| a + b)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.2} ", $unit), self.0)
            }
        }
    };
}

quantity!(
    /// A length in mils (thousandths of an inch), the MOSIS package unit.
    Mils,
    "mil"
);

quantity!(
    /// An area in square mils.
    SquareMils,
    "mil²"
);

quantity!(
    /// A time duration in nanoseconds.
    Nanos,
    "ns"
);

quantity!(
    /// A power in milliwatts.
    MilliWatts,
    "mW"
);

impl Mul for Mils {
    type Output = SquareMils;

    fn mul(self, rhs: Mils) -> SquareMils {
        SquareMils::new(self.value() * rhs.value())
    }
}

impl Nanos {
    /// Number of whole cycles of `self` needed to cover `total` time.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[must_use]
    pub fn cycles_to_cover(&self, total: Nanos) -> u64 {
        assert!(self.0 > 0.0, "cycle time must be positive");
        (total.value() / self.0).ceil() as u64
    }
}

/// A count of clock cycles.
///
/// # Examples
///
/// ```
/// use chop_stat::units::{Cycles, Nanos};
///
/// let c = Cycles::new(30);
/// assert_eq!(c.at(Nanos::new(310.0)).value(), 9300.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Creates a cycle count.
    #[must_use]
    pub fn new(cycles: u64) -> Self {
        Self(cycles)
    }

    /// Zero cycles.
    #[must_use]
    pub fn zero() -> Self {
        Self(0)
    }

    /// The raw count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Wall-clock duration of this many cycles at the given cycle time.
    #[must_use]
    pub fn at(&self, cycle_time: Nanos) -> Nanos {
        Nanos::new(self.0 as f64 * cycle_time.value())
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::zero(), |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A data width / amount in bits.
///
/// # Examples
///
/// ```
/// use chop_stat::units::Bits;
///
/// let word = Bits::new(16);
/// assert_eq!((word + word).value(), 32);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bits(u64);

impl Bits {
    /// Creates a bit count.
    #[must_use]
    pub fn new(bits: u64) -> Self {
        Self(bits)
    }

    /// Zero bits.
    #[must_use]
    pub fn zero() -> Self {
        Self(0)
    }

    /// The raw count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Number of transfers of `width` bits each needed to move this amount.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn transfers_at_width(&self, width: Bits) -> u64 {
        assert!(width.0 > 0, "transfer width must be positive");
        self.0.div_ceil(width.0)
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        iter.fold(Bits::zero(), |a, b| a + b)
    }
}

impl Mul<u64> for Bits {
    type Output = Bits;
    fn mul(self, rhs: u64) -> Bits {
        Bits(self.0 * rhs)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mils_multiply_to_area() {
        let a = Mils::new(10.0) * Mils::new(20.0);
        assert_eq!(a.value(), 200.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_quantity_panics() {
        let _ = Nanos::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn subtraction_underflow_panics() {
        let _ = Nanos::new(1.0) - Nanos::new(2.0);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Nanos::new(1.0).saturating_sub(Nanos::new(2.0)).value(), 0.0);
        assert_eq!(Cycles::new(1).saturating_sub(Cycles::new(5)).value(), 0);
    }

    #[test]
    fn cycles_to_cover_rounds_up() {
        let clk = Nanos::new(300.0);
        assert_eq!(clk.cycles_to_cover(Nanos::new(300.0)), 1);
        assert_eq!(clk.cycles_to_cover(Nanos::new(301.0)), 2);
        assert_eq!(clk.cycles_to_cover(Nanos::new(0.0)), 0);
    }

    #[test]
    fn transfers_at_width_rounds_up() {
        assert_eq!(Bits::new(100).transfers_at_width(Bits::new(32)), 4);
        assert_eq!(Bits::new(96).transfers_at_width(Bits::new(32)), 3);
    }

    #[test]
    fn cycles_at_clock() {
        assert_eq!(Cycles::new(10).at(Nanos::new(300.0)).value(), 3000.0);
    }

    #[test]
    fn sums_work() {
        let total: Nanos = [Nanos::new(1.0), Nanos::new(2.5)].into_iter().sum();
        assert_eq!(total.value(), 3.5);
        let bits: Bits = [Bits::new(16), Bits::new(16)].into_iter().sum();
        assert_eq!(bits.value(), 32);
    }

    #[test]
    fn displays_include_units() {
        assert!(Mils::new(1.0).to_string().contains("mil"));
        assert!(SquareMils::new(1.0).to_string().contains("mil²"));
        assert!(Nanos::new(1.0).to_string().contains("ns"));
        assert!(Bits::new(1).to_string().contains("bits"));
    }
}
