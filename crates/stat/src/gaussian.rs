//! Moment-matched Gaussian approximations and the error function.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::probability::Probability;

/// Dependency-free error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
///
/// # Examples
///
/// ```
/// use chop_stat::erf;
///
/// assert!((erf(0.0)).abs() < 1e-7);
/// assert!((erf(1.0) - 0.8427007).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007).abs() < 1e-6);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function Φ.
///
/// # Examples
///
/// ```
/// use chop_stat::normal_cdf;
///
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// assert!(normal_cdf(3.0) > 0.99);
/// ```
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// A Gaussian random variable `N(mean, var)` used to approximate sums and
/// maxima of prediction triplets.
///
/// The max operation uses Clark's moment-matching equations — the same
/// machinery statistical static-timing analyzers use for `max` of arrival
/// times — which keeps CHOP's probabilistic critical-path estimates closed
/// under combination.
///
/// # Examples
///
/// ```
/// use chop_stat::Gaussian;
///
/// let a = Gaussian::new(10.0, 4.0);
/// let b = Gaussian::new(12.0, 1.0);
/// let m = a.clark_max(&b);
/// assert!(m.mean() >= 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    var: f64,
}

impl Gaussian {
    /// Creates a Gaussian from mean and variance.
    ///
    /// # Panics
    ///
    /// Panics if `var` is negative or either argument is non-finite.
    #[must_use]
    pub fn new(mean: f64, var: f64) -> Self {
        assert!(mean.is_finite() && var.is_finite(), "gaussian moments must be finite");
        assert!(var >= 0.0, "variance must be non-negative");
        Self { mean, var }
    }

    /// Mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Variance of the distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.var
    }

    /// Standard deviation of the distribution.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Sum of two independent Gaussians.
    #[must_use]
    pub fn add(&self, other: &Gaussian) -> Gaussian {
        Gaussian::new(self.mean + other.mean, self.var + other.var)
    }

    /// Probability that the variable is at most `limit`.
    ///
    /// A zero-variance Gaussian degenerates to a step at its mean.
    #[must_use]
    pub fn probability_le(&self, limit: f64) -> Probability {
        if self.var == 0.0 {
            return if self.mean <= limit {
                Probability::certain()
            } else {
                Probability::impossible()
            };
        }
        Probability::new(normal_cdf((limit - self.mean) / self.std_dev()))
    }

    /// Clark's approximation of `max(self, other)` for independent Gaussians.
    ///
    /// Matches the first two moments of the true maximum (C. E. Clark, "The
    /// greatest of a finite set of random variables", 1961).
    #[must_use]
    pub fn clark_max(&self, other: &Gaussian) -> Gaussian {
        let a2 = self.var + other.var;
        if a2 == 0.0 {
            return Gaussian::new(self.mean.max(other.mean), 0.0);
        }
        let a = a2.sqrt();
        let alpha = (self.mean - other.mean) / a;
        let phi = |x: f64| (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let cap_phi = normal_cdf;
        let mean = self.mean * cap_phi(alpha) + other.mean * cap_phi(-alpha) + a * phi(alpha);
        let second = (self.mean * self.mean + self.var) * cap_phi(alpha)
            + (other.mean * other.mean + other.var) * cap_phi(-alpha)
            + (self.mean + other.mean) * a * phi(alpha);
        let var = (second - mean * mean).max(0.0);
        Gaussian::new(mean, var)
    }
}

impl fmt::Display for Gaussian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N({:.2}, {:.2})", self.mean, self.var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.5) - 0.5204999).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.3, 2.5] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_monotone() {
        let mut last = 0.0;
        for i in -40..=40 {
            let p = normal_cdf(f64::from(i) / 10.0);
            assert!(p >= last - 1e-12);
            last = p;
        }
    }

    #[test]
    fn probability_le_zero_variance_is_step() {
        let g = Gaussian::new(5.0, 0.0);
        assert_eq!(g.probability_le(4.9).value(), 0.0);
        assert_eq!(g.probability_le(5.0).value(), 1.0);
    }

    #[test]
    fn add_sums_moments() {
        let s = Gaussian::new(1.0, 2.0).add(&Gaussian::new(3.0, 4.0));
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.variance(), 6.0);
    }

    #[test]
    fn clark_max_dominates_both_means() {
        let a = Gaussian::new(10.0, 4.0);
        let b = Gaussian::new(12.0, 9.0);
        let m = a.clark_max(&b);
        assert!(m.mean() >= 12.0);
        assert!(m.mean() < 20.0);
    }

    #[test]
    fn clark_max_degenerate_matches_deterministic_max() {
        let a = Gaussian::new(10.0, 0.0);
        let b = Gaussian::new(12.0, 0.0);
        let m = a.clark_max(&b);
        assert_eq!(m.mean(), 12.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn clark_max_far_apart_picks_larger() {
        let a = Gaussian::new(0.0, 1.0);
        let b = Gaussian::new(100.0, 1.0);
        let m = a.clark_max(&b);
        assert!((m.mean() - 100.0).abs() < 1e-6);
        assert!((m.variance() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn clark_max_symmetric_case() {
        // max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi.
        let a = Gaussian::new(0.0, 1.0);
        let m = a.clark_max(&a);
        assert!((m.mean() - 1.0 / std::f64::consts::PI.sqrt()).abs() < 1e-6);
        assert!((m.variance() - (1.0 - 1.0 / std::f64::consts::PI)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "variance")]
    fn negative_variance_panics() {
        let _ = Gaussian::new(0.0, -1.0);
    }
}
