//! Statistical estimate environment for the CHOP partitioner.
//!
//! CHOP and its embedded predictor BAD never work with single numbers: every
//! predicted quantity (chip area, controller delay, wiring overhead, …) is a
//! *triplet* — a lower bound, a most-likely value and an upper bound — stored
//! in a statistical environment. Feasibility of a tentative partitioning is
//! then a *probability* ("a predicted design is feasible if it satisfies the
//! chip-area constraint with probability 1.0 and the system-delay constraint
//! with probability 0.8"), not a point comparison.
//!
//! This crate provides that environment:
//!
//! * [`Estimate`] — the (lo, likely, hi) triplet with triangular-distribution
//!   moments and closed arithmetic (sum, scaling, deterministic max),
//! * [`Gaussian`] — a moment-matched normal approximation used for
//!   probability queries and for Clark's max approximation,
//! * [`erf`]/[`normal_cdf`] — a dependency-free error function,
//! * [`Probability`] and [`FeasibilityThreshold`] — newtypes that keep
//!   confidence levels from being confused with other `f64` quantities.
//!
//! # Examples
//!
//! ```
//! use chop_stat::{Estimate, Probability};
//!
//! // Predicted area of a datapath: most likely 9_800 mil², ±15 %.
//! let fu = Estimate::with_spread(9_800.0, 0.15);
//! let wiring = Estimate::with_spread(4_000.0, 0.30);
//! let total = fu + wiring;
//! // Probability that the design fits a 15 000 mil² chip:
//! let p = total.probability_le(15_000.0);
//! assert!(p > Probability::new(0.5));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod estimate;
mod gaussian;
mod probability;
pub mod units;

pub use estimate::{Estimate, EstimateError};
pub use gaussian::{erf, normal_cdf, Gaussian};
pub use probability::{FeasibilityThreshold, Probability};
