//! The (lower, most-likely, upper) triplet estimate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

use crate::gaussian::Gaussian;
use crate::probability::Probability;

/// Error returned when constructing an ill-formed [`Estimate`].
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// The triplet was not ordered `lo <= likely <= hi`.
    Unordered {
        /// Offending lower bound.
        lo: f64,
        /// Offending most-likely value.
        likely: f64,
        /// Offending upper bound.
        hi: f64,
    },
    /// A bound was NaN or infinite.
    NonFinite,
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::Unordered { lo, likely, hi } => {
                write!(f, "estimate triplet not ordered: lo={lo}, likely={likely}, hi={hi}")
            }
            EstimateError::NonFinite => write!(f, "estimate bounds must be finite"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// A prediction triplet: lower bound, most-likely value and upper bound.
///
/// All BAD and CHOP prediction results are stored in this form (paper §2.6:
/// "All prediction results (in the form of a triplet: a lower bound, a most
/// likely and an upper bound value) are stored in a statistical
/// environment"). The triplet is interpreted as a triangular distribution on
/// `[lo, hi]` with mode `likely`; probability queries go through a
/// moment-matched [`Gaussian`].
///
/// # Examples
///
/// ```
/// use chop_stat::Estimate;
///
/// let a = Estimate::new(90.0, 100.0, 130.0)?;
/// let b = Estimate::exact(40.0);
/// let sum = a + b;
/// assert_eq!(sum.likely(), 140.0);
/// assert_eq!(sum.lo(), 130.0);
/// # Ok::<(), chop_stat::EstimateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    lo: f64,
    likely: f64,
    hi: f64,
}

impl Estimate {
    /// Creates an estimate from explicit bounds.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::Unordered`] unless `lo <= likely <= hi`, and
    /// [`EstimateError::NonFinite`] if any bound is NaN or infinite.
    pub fn new(lo: f64, likely: f64, hi: f64) -> Result<Self, EstimateError> {
        if !(lo.is_finite() && likely.is_finite() && hi.is_finite()) {
            return Err(EstimateError::NonFinite);
        }
        if !(lo <= likely && likely <= hi) {
            return Err(EstimateError::Unordered { lo, likely, hi });
        }
        Ok(Self { lo, likely, hi })
    }

    /// Creates a degenerate estimate that is known exactly.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    #[must_use]
    pub fn exact(value: f64) -> Self {
        assert!(value.is_finite(), "exact estimate must be finite");
        Self { lo: value, likely: value, hi: value }
    }

    /// Creates an estimate `likely ± spread·likely`.
    ///
    /// This is the canonical way predictor models attach uncertainty to a
    /// most-likely prediction. `spread` is a fraction (0.15 means ±15 %).
    ///
    /// # Panics
    ///
    /// Panics if `likely` is negative or non-finite, or `spread` is negative.
    #[must_use]
    pub fn with_spread(likely: f64, spread: f64) -> Self {
        assert!(likely.is_finite() && likely >= 0.0, "likely must be finite and non-negative");
        assert!(spread.is_finite() && spread >= 0.0, "spread must be finite and non-negative");
        Self { lo: likely * (1.0 - spread).max(0.0), likely, hi: likely * (1.0 + spread) }
    }

    /// Creates an estimate with asymmetric fractional spreads below/above.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Estimate::with_spread`].
    #[must_use]
    pub fn with_spreads(likely: f64, below: f64, above: f64) -> Self {
        assert!(likely.is_finite() && likely >= 0.0, "likely must be finite and non-negative");
        assert!(below >= 0.0 && above >= 0.0, "spreads must be non-negative");
        Self { lo: likely * (1.0 - below).max(0.0), likely, hi: likely * (1.0 + above) }
    }

    /// The zero estimate (identity for [`Add`]).
    #[must_use]
    pub fn zero() -> Self {
        Self::exact(0.0)
    }

    /// Lower bound of the triplet.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Most-likely value of the triplet.
    #[must_use]
    pub fn likely(&self) -> f64 {
        self.likely
    }

    /// Upper bound of the triplet.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Mean of the triangular distribution `(lo + likely + hi) / 3`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.lo + self.likely + self.hi) / 3.0
    }

    /// Variance of the triangular distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let (a, c, b) = (self.lo, self.likely, self.hi);
        (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0
    }

    /// Moment-matched Gaussian approximation of this estimate.
    #[must_use]
    pub fn to_gaussian(&self) -> Gaussian {
        Gaussian::new(self.mean(), self.variance())
    }

    /// Probability that the predicted quantity is at most `limit`.
    ///
    /// Degenerate (exact) estimates compare directly; otherwise the
    /// triangular CDF is used, so bounds are respected exactly:
    /// values below `lo` give probability 1 only when `limit >= hi`… i.e.
    /// `limit < lo` yields 0 and `limit >= hi` yields 1.
    #[must_use]
    pub fn probability_le(&self, limit: f64) -> Probability {
        if limit >= self.hi {
            return Probability::certain();
        }
        if limit < self.lo {
            return Probability::impossible();
        }
        let (a, c, b) = (self.lo, self.likely, self.hi);
        // Triangular CDF; the earlier guards ensure a <= limit < b and a < b.
        let p = if limit <= c {
            if c > a {
                (limit - a) * (limit - a) / ((b - a) * (c - a))
            } else {
                // lo == likely: left edge is a step into the descending side.
                1.0 - (b - limit) * (b - limit) / ((b - a) * (b - c))
            }
        } else if b > c {
            1.0 - (b - limit) * (b - limit) / ((b - a) * (b - c))
        } else {
            1.0
        };
        Probability::new(p.clamp(0.0, 1.0))
    }

    /// Width of the triplet (`hi - lo`), a crude dispersion measure.
    #[must_use]
    pub fn spread(&self) -> f64 {
        self.hi - self.lo
    }

    /// Component-wise maximum of two estimates.
    ///
    /// Used for conservative critical-path style combination when the
    /// quantities are perfectly correlated; for independent quantities use
    /// [`Gaussian::clark_max`].
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self {
            lo: self.lo.max(other.lo),
            likely: self.likely.max(other.likely),
            hi: self.hi.max(other.hi),
        }
    }

    /// Sums an iterator of estimates (independent quantities).
    #[must_use]
    pub fn sum_of<I: IntoIterator<Item = Estimate>>(iter: I) -> Self {
        iter.into_iter().fold(Self::zero(), |acc, e| acc + e)
    }
}

impl Default for Estimate {
    fn default() -> Self {
        Self::zero()
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.1} / {:.1} / {:.1}]", self.lo, self.likely, self.hi)
    }
}

impl Add for Estimate {
    type Output = Estimate;

    fn add(self, rhs: Estimate) -> Estimate {
        Estimate {
            lo: self.lo + rhs.lo,
            likely: self.likely + rhs.likely,
            hi: self.hi + rhs.hi,
        }
    }
}

impl AddAssign for Estimate {
    fn add_assign(&mut self, rhs: Estimate) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for Estimate {
    type Output = Estimate;

    /// Scales the triplet by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is negative (a negative scale would flip the bound
    /// ordering silently).
    fn mul(self, rhs: f64) -> Estimate {
        assert!(rhs >= 0.0, "estimate scale factor must be non-negative");
        Estimate { lo: self.lo * rhs, likely: self.likely * rhs, hi: self.hi * rhs }
    }
}

impl Sum for Estimate {
    fn sum<I: Iterator<Item = Estimate>>(iter: I) -> Estimate {
        Estimate::sum_of(iter)
    }
}

impl From<f64> for Estimate {
    fn from(value: f64) -> Self {
        Estimate::exact(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_unordered() {
        assert!(matches!(Estimate::new(2.0, 1.0, 3.0), Err(EstimateError::Unordered { .. })));
        assert!(matches!(Estimate::new(1.0, 5.0, 3.0), Err(EstimateError::Unordered { .. })));
    }

    #[test]
    fn new_rejects_non_finite() {
        assert_eq!(Estimate::new(f64::NAN, 1.0, 2.0), Err(EstimateError::NonFinite));
        assert_eq!(Estimate::new(0.0, 1.0, f64::INFINITY), Err(EstimateError::NonFinite));
    }

    #[test]
    fn exact_is_degenerate() {
        let e = Estimate::exact(7.0);
        assert_eq!(e.lo(), 7.0);
        assert_eq!(e.likely(), 7.0);
        assert_eq!(e.hi(), 7.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.mean(), 7.0);
    }

    #[test]
    fn with_spread_brackets_likely() {
        let e = Estimate::with_spread(100.0, 0.2);
        assert!((e.lo() - 80.0).abs() < 1e-9);
        assert!((e.hi() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn with_spread_clamps_lower_bound_at_zero() {
        let e = Estimate::with_spread(10.0, 2.0);
        assert_eq!(e.lo(), 0.0);
    }

    #[test]
    fn sum_adds_componentwise() {
        let a = Estimate::new(1.0, 2.0, 3.0).unwrap();
        let b = Estimate::new(10.0, 20.0, 30.0).unwrap();
        let s = a + b;
        assert_eq!((s.lo(), s.likely(), s.hi()), (11.0, 22.0, 33.0));
    }

    #[test]
    fn probability_le_respects_bounds() {
        let e = Estimate::new(10.0, 20.0, 40.0).unwrap();
        assert_eq!(e.probability_le(9.0).value(), 0.0);
        assert_eq!(e.probability_le(40.0).value(), 1.0);
        assert_eq!(e.probability_le(50.0).value(), 1.0);
        let mid = e.probability_le(20.0).value();
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn probability_le_matches_triangular_cdf() {
        let e = Estimate::new(0.0, 5.0, 10.0).unwrap();
        // Symmetric triangle: CDF at mode is 0.5.
        assert!((e.probability_le(5.0).value() - 0.5).abs() < 1e-12);
        // CDF at 2.5 = (2.5)^2 / (10 * 5) = 0.125.
        assert!((e.probability_le(2.5).value() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn probability_le_exact_estimate_is_step() {
        let e = Estimate::exact(5.0);
        assert_eq!(e.probability_le(4.999).value(), 0.0);
        assert_eq!(e.probability_le(5.0).value(), 1.0);
    }

    #[test]
    fn probability_le_left_degenerate_triangle() {
        // lo == likely < hi: descending density.
        let e = Estimate::new(5.0, 5.0, 15.0).unwrap();
        assert_eq!(e.probability_le(4.0).value(), 0.0);
        assert!((e.probability_le(5.0).value() - 0.0).abs() < 1e-12);
        assert!(e.probability_le(10.0).value() > 0.5);
        assert_eq!(e.probability_le(15.0).value(), 1.0);
    }

    #[test]
    fn probability_le_right_degenerate_triangle() {
        // lo < likely == hi: ascending density.
        let e = Estimate::new(5.0, 15.0, 15.0).unwrap();
        assert!(e.probability_le(10.0).value() < 0.5);
        assert_eq!(e.probability_le(15.0).value(), 1.0);
    }

    #[test]
    fn scaling_scales_all_components() {
        let e = Estimate::new(1.0, 2.0, 4.0).unwrap() * 2.5;
        assert_eq!((e.lo(), e.likely(), e.hi()), (2.5, 5.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_panics() {
        let _ = Estimate::exact(1.0) * -1.0;
    }

    #[test]
    fn max_is_componentwise() {
        let a = Estimate::new(1.0, 5.0, 6.0).unwrap();
        let b = Estimate::new(2.0, 3.0, 9.0).unwrap();
        let m = a.max(b);
        assert_eq!((m.lo(), m.likely(), m.hi()), (2.0, 5.0, 9.0));
    }

    #[test]
    fn sum_trait_and_helper_agree() {
        let xs = [
            Estimate::with_spread(10.0, 0.1),
            Estimate::with_spread(20.0, 0.2),
            Estimate::exact(5.0),
        ];
        let a: Estimate = xs.iter().copied().sum();
        let b = Estimate::sum_of(xs.iter().copied());
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Estimate::with_spread(10.0, 0.1).to_string();
        assert!(s.contains('/'));
    }

    #[test]
    fn triangular_moments_match_formula() {
        let e = Estimate::new(2.0, 4.0, 9.0).unwrap();
        assert!((e.mean() - 5.0).abs() < 1e-12);
        // var = (4+81+16 - 18 - 8 - 36)/18 = 39/18
        assert!((e.variance() - 39.0 / 18.0).abs() < 1e-12);
    }
}
