//! Probability and feasibility-threshold newtypes.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A probability in `[0, 1]`.
///
/// CHOP's feasibility analysis compares probabilities of constraint
/// satisfaction against designer-chosen thresholds; keeping them in a
/// newtype prevents them from being mixed up with areas, delays or spread
/// fractions.
///
/// # Examples
///
/// ```
/// use chop_stat::Probability;
///
/// let p = Probability::new(0.8);
/// assert!(p >= Probability::new(0.5));
/// assert_eq!(Probability::certain().value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Probability(f64);

impl Probability {
    /// Creates a probability, clamping into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(!p.is_nan(), "probability must not be NaN");
        Self(p.clamp(0.0, 1.0))
    }

    /// Probability 1.
    #[must_use]
    pub fn certain() -> Self {
        Self(1.0)
    }

    /// Probability 0.
    #[must_use]
    pub fn impossible() -> Self {
        Self(0.0)
    }

    /// The underlying value in `[0, 1]`.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Probability that *both* of two independent events hold.
    #[must_use]
    pub fn and(&self, other: Probability) -> Probability {
        Probability::new(self.0 * other.0)
    }

    /// Whether this probability meets a feasibility threshold.
    ///
    /// Thresholds of exactly 1.0 are treated with a small epsilon so that a
    /// probability computed as `1.0 - 1e-16` by floating-point CDF machinery
    /// still counts as certain.
    #[must_use]
    pub fn meets(&self, threshold: FeasibilityThreshold) -> bool {
        self.0 + 1e-9 >= threshold.0 .0
    }
}

impl Default for Probability {
    fn default() -> Self {
        Self::impossible()
    }
}

impl Eq for Probability {}

impl PartialOrd for Probability {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Probability {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are clamped and NaN-free by construction.
        self.0.partial_cmp(&other.0).expect("probabilities are never NaN")
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

/// A designer-chosen confidence level a feasibility probability must reach.
///
/// The paper's experiments use 100 % for performance and chip area and 80 %
/// for system delay.
///
/// # Examples
///
/// ```
/// use chop_stat::{FeasibilityThreshold, Probability};
///
/// let t = FeasibilityThreshold::new(0.8);
/// assert!(Probability::new(0.85).meets(t));
/// assert!(!Probability::new(0.75).meets(t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FeasibilityThreshold(Probability);

impl FeasibilityThreshold {
    /// Creates a threshold from a probability value in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    #[must_use]
    pub fn new(p: f64) -> Self {
        Self(Probability::new(p))
    }

    /// Requires certainty (probability 1.0).
    #[must_use]
    pub fn certain() -> Self {
        Self(Probability::certain())
    }

    /// The threshold probability.
    #[must_use]
    pub fn probability(&self) -> Probability {
        self.0
    }
}

impl Default for FeasibilityThreshold {
    fn default() -> Self {
        Self::certain()
    }
}

impl fmt::Display for FeasibilityThreshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "≥{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps() {
        assert_eq!(Probability::new(1.5).value(), 1.0);
        assert_eq!(Probability::new(-0.5).value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = Probability::new(f64::NAN);
    }

    #[test]
    fn and_multiplies() {
        let p = Probability::new(0.5).and(Probability::new(0.5));
        assert_eq!(p.value(), 0.25);
    }

    #[test]
    fn meets_handles_float_noise_at_one() {
        let nearly = Probability::new(1.0 - 1e-12);
        assert!(nearly.meets(FeasibilityThreshold::certain()));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Probability::new(0.9), Probability::new(0.1), Probability::new(0.5)];
        v.sort();
        assert_eq!(v[0].value(), 0.1);
        assert_eq!(v[2].value(), 0.9);
    }

    #[test]
    fn threshold_display() {
        assert_eq!(FeasibilityThreshold::new(0.8).to_string(), "≥80.0%");
    }
}
