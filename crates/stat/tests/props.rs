//! Property-based tests for the statistical environment.

use chop_stat::{erf, normal_cdf, Estimate, FeasibilityThreshold, Gaussian, Probability};
use proptest::prelude::*;

fn arb_estimate() -> impl Strategy<Value = Estimate> {
    (0.0f64..1e6, 0.0f64..1.0, 0.0f64..2.0)
        .prop_map(|(likely, below, above)| Estimate::with_spreads(likely, below, above))
}

proptest! {
    #[test]
    fn estimate_bounds_ordered(e in arb_estimate()) {
        prop_assert!(e.lo() <= e.likely());
        prop_assert!(e.likely() <= e.hi());
    }

    #[test]
    fn estimate_mean_within_bounds(e in arb_estimate()) {
        prop_assert!(e.mean() >= e.lo() - 1e-9);
        prop_assert!(e.mean() <= e.hi() + 1e-9);
    }

    #[test]
    fn estimate_variance_non_negative(e in arb_estimate()) {
        prop_assert!(e.variance() >= -1e-9);
    }

    #[test]
    fn sum_preserves_ordering(a in arb_estimate(), b in arb_estimate()) {
        let s = a + b;
        prop_assert!(s.lo() <= s.likely() && s.likely() <= s.hi());
        prop_assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-6);
    }

    #[test]
    fn probability_le_monotone_in_limit(e in arb_estimate(), x in 0.0f64..2e6, y in 0.0f64..2e6) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(e.probability_le(lo) <= e.probability_le(hi));
    }

    #[test]
    fn probability_le_bracket(e in arb_estimate()) {
        prop_assert_eq!(e.probability_le(e.hi()).value(), 1.0);
        if e.lo() > 0.0 {
            prop_assert_eq!(e.probability_le(e.lo() * 0.5).value(), 0.0);
        }
    }

    #[test]
    fn erf_bounded_and_odd(x in -6.0f64..6.0) {
        let v = erf(x);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert!((v + erf(-x)).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_bounded(z in -20.0f64..20.0) {
        let p = normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn clark_max_mean_at_least_individual_means(
        m1 in -1e3f64..1e3, v1 in 0.0f64..1e4,
        m2 in -1e3f64..1e3, v2 in 0.0f64..1e4,
    ) {
        let a = Gaussian::new(m1, v1);
        let b = Gaussian::new(m2, v2);
        let m = a.clark_max(&b);
        // Clark max mean dominates both input means (up to float noise).
        prop_assert!(m.mean() >= m1.max(m2) - 1e-6);
        prop_assert!(m.variance() >= -1e-9);
    }

    #[test]
    fn clark_max_commutative(
        m1 in -1e3f64..1e3, v1 in 0.0f64..1e4,
        m2 in -1e3f64..1e3, v2 in 0.0f64..1e4,
    ) {
        let a = Gaussian::new(m1, v1);
        let b = Gaussian::new(m2, v2);
        let ab = a.clark_max(&b);
        let ba = b.clark_max(&a);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-4);
    }

    #[test]
    fn probability_meets_is_monotone(p in 0.0f64..1.0, t in 0.0f64..1.0) {
        let prob = Probability::new(p);
        let thr = FeasibilityThreshold::new(t);
        if prob.meets(thr) {
            // Any weaker threshold is also met.
            prop_assert!(prob.meets(FeasibilityThreshold::new(t * 0.5)));
        }
    }

    #[test]
    fn and_never_increases(p in 0.0f64..1.0, q in 0.0f64..1.0) {
        let a = Probability::new(p);
        let b = Probability::new(q);
        prop_assert!(a.and(b) <= a);
        prop_assert!(a.and(b) <= b);
    }
}
