//! Hand-rolled option parsing (the approved dependency list has no clap).

use std::fmt;

/// Options shared by `check` and `tasks`.
#[derive(Debug, Clone)]
pub struct Options {
    /// Spec file path.
    pub spec: String,
    /// Number of partitions (and default chips).
    pub partitions: usize,
    /// Number of chips (defaults to `partitions`).
    pub chips: Option<usize>,
    /// Package pins: 64 or 84 (Table 2).
    pub package_pins: u32,
    /// Performance constraint in ns.
    pub performance: f64,
    /// Delay constraint in ns.
    pub delay: f64,
    /// Optional system power limit in mW.
    pub power: Option<f64>,
    /// Multi-cycle operation style (default single-cycle).
    pub multi_cycle: bool,
    /// Datapath clock multiplier over the 300 ns main clock.
    pub dp_mult: u32,
    /// Heuristic: 'e' or 'i'.
    pub heuristic: char,
    /// Testability: none|partial|full.
    pub testability: String,
    /// On-chip memory placements: `(memory index, chip index)`.
    pub on_chip_memories: Vec<(u32, u32)>,
    /// Use the extended library (comparators, logic, shifters).
    pub extended_library: bool,
    /// Emit a markdown report instead of plain text (check only).
    pub markdown: bool,
    /// Wall-clock deadline for exploration, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Cap on global combinations examined.
    pub max_trials: Option<usize>,
    /// Cap on retained design points.
    pub max_points: Option<usize>,
    /// Never degrade heuristic E to I, however large the space.
    pub no_degrade: bool,
    /// Disable branch-and-bound subtree skipping in heuristic E (the
    /// exhaustive odometer walk; results are identical, only slower).
    pub no_bnb: bool,
    /// Worker threads for prediction and combination scoring
    /// (default: available parallelism).
    pub jobs: Option<usize>,
    /// Print the per-stage trace and cache statistics after the search.
    pub stats: bool,
    /// Write the trace and cache statistics as JSON to this path.
    pub stats_json: Option<String>,
    /// What-if migration: `(node index, target partition)` re-explored
    /// incrementally after the baseline run.
    pub move_node: Option<(u32, u32)>,
    /// Lock stripes in the prediction cache (`None` sizes the stripe
    /// from `--jobs`; results never depend on the shard count).
    pub cache_shards: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            spec: String::new(),
            partitions: 1,
            chips: None,
            package_pins: 84,
            performance: 30_000.0,
            delay: 30_000.0,
            power: None,
            multi_cycle: false,
            dp_mult: 10,
            heuristic: 'i',
            testability: "none".to_owned(),
            on_chip_memories: Vec::new(),
            extended_library: false,
            markdown: false,
            deadline_ms: None,
            max_trials: None,
            max_points: None,
            no_degrade: false,
            no_bnb: false,
            jobs: None,
            stats: false,
            stats_json: None,
            move_node: None,
            cache_shards: None,
        }
    }
}

/// A user-facing argument error.
#[derive(Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (run `chop help`)", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parses `check`/`tasks` options from argv (after the subcommand).
pub fn parse_options(argv: &[String]) -> Result<Options, ArgError> {
    let mut opts = Options::default();
    let mut it = argv.iter().peekable();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, ArgError> {
            it.next().cloned().ok_or_else(|| ArgError(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--partitions" | "-k" => {
                opts.partitions = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--chips" => {
                opts.chips = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ArgError(format!("bad value for {arg}")))?,
                );
            }
            "--package" => {
                let v: u32 = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
                if v != 64 && v != 84 {
                    return Err(ArgError("--package must be 64 or 84".into()));
                }
                opts.package_pins = v;
            }
            "--perf" => {
                opts.performance = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--delay" => {
                opts.delay = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--power" => {
                opts.power = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ArgError(format!("bad value for {arg}")))?,
                );
            }
            "--multi-cycle" => {
                opts.multi_cycle = true;
                if opts.dp_mult == 10 {
                    opts.dp_mult = 1;
                }
            }
            "--dp-mult" => {
                opts.dp_mult = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--heuristic" => {
                let v = value(arg)?;
                match v.as_str() {
                    "e" | "E" => opts.heuristic = 'e',
                    "i" | "I" => opts.heuristic = 'i',
                    _ => return Err(ArgError("--heuristic must be e or i".into())),
                }
            }
            "--testability" => {
                let v = value(arg)?;
                if !["none", "partial", "full"].contains(&v.as_str()) {
                    return Err(ArgError("--testability must be none, partial or full".into()));
                }
                opts.testability = v;
            }
            "--on-chip-memory" => {
                let v = value(arg)?;
                let (m, c) = v
                    .split_once(':')
                    .ok_or_else(|| ArgError("--on-chip-memory wants M:CHIP".into()))?;
                let m = m
                    .trim_start_matches('M')
                    .parse()
                    .map_err(|_| ArgError("bad memory index".into()))?;
                let c = c.parse().map_err(|_| ArgError("bad chip index".into()))?;
                opts.on_chip_memories.push((m, c));
            }
            "--extended-library" => opts.extended_library = true,
            "--markdown" => opts.markdown = true,
            "--deadline" => {
                opts.deadline_ms = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ArgError(format!("bad value for {arg}")))?,
                );
            }
            "--max-trials" => {
                opts.max_trials = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ArgError(format!("bad value for {arg}")))?,
                );
            }
            "--max-points" => {
                opts.max_points = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ArgError(format!("bad value for {arg}")))?,
                );
            }
            "--no-degrade" => opts.no_degrade = true,
            "--no-bnb" => opts.no_bnb = true,
            "--jobs" | "-j" => {
                let n: usize = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
                if n == 0 {
                    return Err(ArgError("--jobs must be at least 1".into()));
                }
                opts.jobs = Some(n);
            }
            "--stats" => opts.stats = true,
            "--stats-json" => opts.stats_json = Some(value(arg)?),
            "--cache-shards" => {
                let n: usize = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
                if n == 0 {
                    return Err(ArgError("--cache-shards must be at least 1".into()));
                }
                opts.cache_shards = Some(n);
            }
            "--move-node" => {
                let v = value(arg)?;
                let (n, p) = v
                    .split_once(':')
                    .ok_or_else(|| ArgError("--move-node wants NODE:PARTITION".into()))?;
                let n = n.parse().map_err(|_| ArgError("bad node index".into()))?;
                let p = p.parse().map_err(|_| ArgError("bad partition index".into()))?;
                opts.move_node = Some((n, p));
            }
            flag if flag.starts_with('-') => {
                return Err(ArgError(format!("unknown option {flag}")));
            }
            _ => positional.push(arg.clone()),
        }
    }
    match positional.as_slice() {
        [spec] => opts.spec = spec.clone(),
        [] => return Err(ArgError("missing <spec.cbs> argument".into())),
        _ => return Err(ArgError("too many positional arguments".into())),
    }
    Ok(opts)
}

/// Optimizer-specific options for `chop optimize`; the shared session
/// options (spec, partitions, constraints, budget) ride in [`Options`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptimizeOptions {
    /// Seed for the optimizer's deterministic randomness.
    pub seed: u64,
    /// Cap on candidate move evaluations (the optimizer's trial budget).
    pub max_moves: Option<u64>,
    /// Plateau kicks allowed (`None` = the core default).
    pub kicks: Option<u32>,
    /// Annealed moves attempted per kick (`None` = the core default).
    pub kick_moves: Option<u32>,
    /// Node indices pinned to their current partition.
    pub pinned: Vec<u32>,
    /// Groups of node indices that move atomically and stay co-located.
    pub groups: Vec<Vec<u32>>,
    /// Node index pairs that must never share a partition.
    pub exclusions: Vec<(u32, u32)>,
}

/// Parses `optimize` options from argv (after the subcommand): the
/// optimizer flags are stripped here, everything else goes through
/// [`parse_options`] unchanged.
pub fn parse_optimize_options(argv: &[String]) -> Result<(Options, OptimizeOptions), ArgError> {
    let mut oopts = OptimizeOptions::default();
    let mut rest = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, ArgError> {
            it.next().cloned().ok_or_else(|| ArgError(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--seed" => {
                oopts.seed = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--max-moves" => {
                oopts.max_moves = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ArgError(format!("bad value for {arg}")))?,
                );
            }
            "--kicks" => {
                oopts.kicks = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ArgError(format!("bad value for {arg}")))?,
                );
            }
            "--kick-moves" => {
                oopts.kick_moves = Some(
                    value(arg)?
                        .parse()
                        .map_err(|_| ArgError(format!("bad value for {arg}")))?,
                );
            }
            "--pin" => {
                oopts
                    .pinned
                    .push(value(arg)?.parse().map_err(|_| ArgError("bad node index".into()))?);
            }
            "--group" => {
                let nodes = value(arg)?
                    .split(',')
                    .map(|n| n.trim().parse().map_err(|_| ArgError("bad node index".into())))
                    .collect::<Result<Vec<u32>, _>>()?;
                if nodes.len() < 2 {
                    return Err(ArgError("--group wants at least two node indices".into()));
                }
                oopts.groups.push(nodes);
            }
            "--exclude" => {
                let v = value(arg)?;
                let (a, b) =
                    v.split_once(':').ok_or_else(|| ArgError("--exclude wants A:B".into()))?;
                let a = a.parse().map_err(|_| ArgError("bad node index".into()))?;
                let b = b.parse().map_err(|_| ArgError("bad node index".into()))?;
                oopts.exclusions.push((a, b));
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((parse_options(&rest)?, oopts))
}

/// Options for `chop serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Listen address. Port 0 asks the OS for an ephemeral port (the
    /// server prints the bound address either way).
    pub addr: String,
    /// Worker threads running explorations.
    pub workers: usize,
    /// Explorations queued or running before `busy` replies.
    pub max_inflight: usize,
    /// Default per-exploration thread count (requests may override).
    pub jobs: Option<usize>,
    /// Directory for the write-ahead journal; `None` keeps sessions
    /// in memory only (the pre-journal behaviour).
    pub state_dir: Option<String>,
    /// Journal records tolerated before snapshot compaction (0 = never).
    pub snapshot_every: usize,
    /// Start as a warm standby: refuse direct mutations, accept the
    /// replication stream, wait to be promoted.
    pub standby: bool,
    /// Ship every committed journal record to this standby (`host:port`).
    /// Legacy one-way spelling of `--peer`.
    pub replicate_to: Option<String>,
    /// Symmetric replication peer (`host:port`): ship to it while
    /// primary, accept its stream (and rejoin demoted after fencing)
    /// while standby. Combine with `--standby` to pick the initial role.
    pub peer: Option<String>,
    /// Concurrent connections accepted before new ones are refused.
    pub max_connections: usize,
    /// Close connections idle for this many milliseconds (0 = never).
    pub idle_timeout_ms: u64,
    /// Request lines admitted per connection per second; past the cap a
    /// typed `busy` reply is sent and the connection stays open (0 =
    /// uncapped).
    pub max_requests_per_sec: u32,
    /// Lock stripes in the shared prediction cache (0 = sized from the
    /// worker and jobs counts).
    pub cache_shards: usize,
    /// Prediction-cache snapshot path: loaded at startup, rewritten on
    /// graceful drain and periodically.
    pub cache_snapshot: Option<String>,
    /// Cache insertions between periodic snapshot rewrites (0 = only on
    /// graceful drain).
    pub cache_snapshot_every: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        // 1991: the year of the DAC paper — a memorable default port.
        Self {
            addr: "127.0.0.1:1991".to_owned(),
            workers: 4,
            max_inflight: 64,
            jobs: None,
            state_dir: None,
            snapshot_every: 1024,
            standby: false,
            replicate_to: None,
            peer: None,
            max_connections: 4096,
            idle_timeout_ms: 600_000,
            max_requests_per_sec: 0,
            cache_shards: 0,
            cache_snapshot: None,
            cache_snapshot_every: 256,
        }
    }
}

/// Parses `serve` options from argv (after the subcommand).
pub fn parse_serve_options(argv: &[String]) -> Result<ServeOptions, ArgError> {
    let mut opts = ServeOptions::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, ArgError> {
            it.next().cloned().ok_or_else(|| ArgError(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value(arg)?,
            "--workers" => {
                let n: usize = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
                if n == 0 {
                    return Err(ArgError("--workers must be at least 1".into()));
                }
                opts.workers = n;
            }
            "--max-inflight" => {
                opts.max_inflight = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--jobs" | "-j" => {
                let n: usize = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
                if n == 0 {
                    return Err(ArgError("--jobs must be at least 1".into()));
                }
                opts.jobs = Some(n);
            }
            "--state-dir" => opts.state_dir = Some(value(arg)?),
            "--journal-snapshot-every" => {
                opts.snapshot_every = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--standby" => opts.standby = true,
            "--replicate-to" => opts.replicate_to = Some(value(arg)?),
            "--peer" => opts.peer = Some(value(arg)?),
            "--max-connections" => {
                let n: usize = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
                if n == 0 {
                    return Err(ArgError("--max-connections must be at least 1".into()));
                }
                opts.max_connections = n;
            }
            "--idle-timeout-ms" => {
                opts.idle_timeout_ms = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--max-requests-per-sec" => {
                opts.max_requests_per_sec = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            "--cache-shards" => {
                let n: usize = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
                if n == 0 {
                    return Err(ArgError("--cache-shards must be at least 1".into()));
                }
                opts.cache_shards = n;
            }
            "--cache-snapshot" => opts.cache_snapshot = Some(value(arg)?),
            "--cache-snapshot-every" => {
                opts.cache_snapshot_every = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            other => return Err(ArgError(format!("unknown serve option {other}"))),
        }
    }
    if opts.standby && opts.replicate_to.is_some() {
        return Err(ArgError(
            "--standby and --replicate-to are mutually exclusive (a node is either \
             the primary of its pair or its standby)"
                .into(),
        ));
    }
    if opts.peer.is_some() && opts.replicate_to.is_some() {
        return Err(ArgError(
            "--peer and --replicate-to are mutually exclusive (--peer is the \
             symmetric replacement; --standby picks the initial role)"
                .into(),
        ));
    }
    Ok(opts)
}

/// Options for `chop router`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterOptions {
    /// Listen address (same convention as `serve`: port 0 = ephemeral).
    pub addr: String,
    /// Backend pairs, each `primary[,standby]`.
    pub backends: Vec<String>,
    /// Health-check cadence, in milliseconds.
    pub health_interval_ms: u64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:1990".to_owned(),
            backends: Vec::new(),
            health_interval_ms: 500,
        }
    }
}

/// Parses `router` options from argv (after the subcommand).
pub fn parse_router_options(argv: &[String]) -> Result<RouterOptions, ArgError> {
    let mut opts = RouterOptions::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, ArgError> {
            it.next().cloned().ok_or_else(|| ArgError(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value(arg)?,
            "--backend" => opts.backends.push(value(arg)?),
            "--health-interval-ms" => {
                opts.health_interval_ms = value(arg)?
                    .parse()
                    .map_err(|_| ArgError(format!("bad value for {arg}")))?;
            }
            other => return Err(ArgError(format!("unknown router option {other}"))),
        }
    }
    if opts.backends.is_empty() {
        return Err(ArgError(
            "router needs at least one --backend <primary[,standby]> pair".into(),
        ));
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn serve_defaults_and_flags() {
        let o = parse_serve_options(&[]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:1991");
        assert_eq!(o.workers, 4);
        assert_eq!(o.max_inflight, 64);
        assert_eq!(o.jobs, None);
        assert_eq!(o.state_dir, None);
        assert_eq!(o.snapshot_every, 1024);
        assert_eq!(o.max_connections, 4096);
        assert_eq!(o.idle_timeout_ms, 600_000);
        let o = parse_serve_options(&s(&[
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--max-inflight",
            "8",
            "--jobs",
            "3",
            "--state-dir",
            "/tmp/chop-state",
            "--journal-snapshot-every",
            "16",
            "--max-connections",
            "128",
            "--idle-timeout-ms",
            "15000",
        ]))
        .unwrap();
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.workers, 2);
        assert_eq!(o.max_inflight, 8);
        assert_eq!(o.jobs, Some(3));
        assert_eq!(o.state_dir.as_deref(), Some("/tmp/chop-state"));
        assert_eq!(o.snapshot_every, 16);
        assert_eq!(o.max_connections, 128);
        assert_eq!(o.idle_timeout_ms, 15_000);
        // 0 disables idle reaping but a zero connection cap is nonsense.
        let o = parse_serve_options(&s(&["--idle-timeout-ms", "0"])).unwrap();
        assert_eq!(o.idle_timeout_ms, 0);
        // The rate cap defaults off and parses like the other limits.
        assert_eq!(o.max_requests_per_sec, 0);
        let o = parse_serve_options(&s(&["--max-requests-per-sec", "100"])).unwrap();
        assert_eq!(o.max_requests_per_sec, 100);
        assert!(parse_serve_options(&s(&["--max-requests-per-sec", "lots"])).is_err());
    }

    #[test]
    fn serve_cache_tier_flags() {
        // Defaults: auto-sized shards, no snapshot, 256-insert cadence.
        let o = parse_serve_options(&[]).unwrap();
        assert_eq!(o.cache_shards, 0);
        assert_eq!(o.cache_snapshot, None);
        assert_eq!(o.cache_snapshot_every, 256);
        let o = parse_serve_options(&s(&[
            "--cache-shards",
            "16",
            "--cache-snapshot",
            "/tmp/chop-cache.snap",
            "--cache-snapshot-every",
            "64",
        ]))
        .unwrap();
        assert_eq!(o.cache_shards, 16);
        assert_eq!(o.cache_snapshot.as_deref(), Some("/tmp/chop-cache.snap"));
        assert_eq!(o.cache_snapshot_every, 64);
        // Cadence 0 = drain-only snapshots; shard count 0 is rejected
        // (pass nothing to get auto-sizing instead).
        let o = parse_serve_options(&s(&["--cache-snapshot-every", "0"])).unwrap();
        assert_eq!(o.cache_snapshot_every, 0);
        assert!(parse_serve_options(&s(&["--cache-shards", "0"])).is_err());
        assert!(parse_serve_options(&s(&["--cache-shards", "lots"])).is_err());
        assert!(parse_serve_options(&s(&["--cache-snapshot"])).is_err());
    }

    #[test]
    fn optimize_options_parse_and_pass_through() {
        let (opts, oopts) = parse_optimize_options(&s(&[
            "d.cbs",
            "--partitions",
            "3",
            "--seed",
            "42",
            "--max-moves",
            "128",
            "--kicks",
            "2",
            "--kick-moves",
            "5",
            "--pin",
            "0",
            "--pin",
            "7",
            "--group",
            "1,2,3",
            "--exclude",
            "4:5",
            "--deadline",
            "250",
        ]))
        .unwrap();
        assert_eq!(opts.spec, "d.cbs");
        assert_eq!(opts.partitions, 3);
        assert_eq!(opts.deadline_ms, Some(250));
        assert_eq!(oopts.seed, 42);
        assert_eq!(oopts.max_moves, Some(128));
        assert_eq!(oopts.kicks, Some(2));
        assert_eq!(oopts.kick_moves, Some(5));
        assert_eq!(oopts.pinned, vec![0, 7]);
        assert_eq!(oopts.groups, vec![vec![1, 2, 3]]);
        assert_eq!(oopts.exclusions, vec![(4, 5)]);
    }

    #[test]
    fn optimize_options_default_off_and_reject_nonsense() {
        let (_, oopts) = parse_optimize_options(&s(&["d.cbs"])).unwrap();
        assert_eq!(oopts, OptimizeOptions::default());
        assert!(parse_optimize_options(&s(&["d.cbs", "--seed", "entropy"])).is_err());
        assert!(parse_optimize_options(&s(&["d.cbs", "--group", "1"])).is_err());
        assert!(parse_optimize_options(&s(&["d.cbs", "--exclude", "4"])).is_err());
        assert!(parse_optimize_options(&s(&["d.cbs", "--pin"])).is_err());
        // Unknown flags still fail in the shared parser.
        assert!(parse_optimize_options(&s(&["d.cbs", "--frobnicate"])).is_err());
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(parse_serve_options(&s(&["--workers", "0"])).is_err());
        assert!(parse_serve_options(&s(&["--jobs", "0"])).is_err());
        assert!(parse_serve_options(&s(&["--addr"])).is_err());
        assert!(parse_serve_options(&s(&["--state-dir"])).is_err());
        assert!(parse_serve_options(&s(&["--journal-snapshot-every", "often"])).is_err());
        assert!(parse_serve_options(&s(&["--frobnicate"])).is_err());
        assert!(parse_serve_options(&s(&["--max-connections", "0"])).is_err());
        assert!(parse_serve_options(&s(&["--max-connections", "many"])).is_err());
        assert!(parse_serve_options(&s(&["--idle-timeout-ms", "soon"])).is_err());
    }

    #[test]
    fn serve_replication_flags_parse_and_exclude_each_other() {
        let o = parse_serve_options(&s(&["--replicate-to", "127.0.0.1:1992"])).unwrap();
        assert_eq!(o.replicate_to.as_deref(), Some("127.0.0.1:1992"));
        assert!(!o.standby);
        let o = parse_serve_options(&s(&["--standby"])).unwrap();
        assert!(o.standby);
        assert!(parse_serve_options(&s(&["--standby", "--replicate-to", "x:1"])).is_err());
        assert!(parse_serve_options(&s(&["--replicate-to"])).is_err());
        // --peer is the symmetric spelling: valid alone or with --standby
        // (the initial role), never alongside the legacy one-way flag.
        let o = parse_serve_options(&s(&["--peer", "127.0.0.1:1992"])).unwrap();
        assert_eq!(o.peer.as_deref(), Some("127.0.0.1:1992"));
        assert!(!o.standby);
        let o = parse_serve_options(&s(&["--peer", "127.0.0.1:1991", "--standby"])).unwrap();
        assert!(o.standby && o.peer.is_some());
        assert!(parse_serve_options(&s(&["--peer", "x:1", "--replicate-to", "y:1"])).is_err());
        assert!(parse_serve_options(&s(&["--peer"])).is_err());
    }

    #[test]
    fn router_options_parse() {
        let o = parse_router_options(&s(&[
            "--addr",
            "127.0.0.1:0",
            "--backend",
            "127.0.0.1:1991,127.0.0.1:1992",
            "--backend",
            "127.0.0.1:2991",
            "--health-interval-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.backends.len(), 2);
        assert_eq!(o.health_interval_ms, 250);
        assert!(parse_router_options(&[]).is_err(), "no backends is an error");
        assert!(parse_router_options(&s(&["--backend"])).is_err());
        assert!(parse_router_options(&s(&["--health-interval-ms", "soon"])).is_err());
        assert!(parse_router_options(&s(&["--frobnicate"])).is_err());
    }

    #[test]
    fn defaults_and_spec() {
        let o = parse_options(&s(&["design.cbs"])).unwrap();
        assert_eq!(o.spec, "design.cbs");
        assert_eq!(o.partitions, 1);
        assert_eq!(o.package_pins, 84);
        assert!(!o.multi_cycle);
    }

    #[test]
    fn full_flag_set() {
        let o = parse_options(&s(&[
            "d.cbs",
            "--partitions",
            "3",
            "--package",
            "64",
            "--perf",
            "20000",
            "--delay",
            "25000",
            "--multi-cycle",
            "--heuristic",
            "e",
            "--power",
            "5000",
            "--testability",
            "full",
            "--on-chip-memory",
            "M0:1",
        ]))
        .unwrap();
        assert_eq!(o.partitions, 3);
        assert_eq!(o.package_pins, 64);
        assert_eq!(o.performance, 20_000.0);
        assert!(o.multi_cycle);
        assert_eq!(o.dp_mult, 1);
        assert_eq!(o.heuristic, 'e');
        assert_eq!(o.power, Some(5000.0));
        assert_eq!(o.testability, "full");
        assert_eq!(o.on_chip_memories, vec![(0, 1)]);
    }

    #[test]
    fn budget_flags_parse() {
        let o = parse_options(&s(&[
            "d.cbs",
            "--deadline",
            "250",
            "--max-trials",
            "5000",
            "--max-points",
            "100",
            "--no-degrade",
            "--no-bnb",
        ]))
        .unwrap();
        assert_eq!(o.deadline_ms, Some(250));
        assert_eq!(o.max_trials, Some(5000));
        assert_eq!(o.max_points, Some(100));
        assert!(o.no_degrade);
        assert!(o.no_bnb);
    }

    #[test]
    fn budget_flags_default_off() {
        let o = parse_options(&s(&["d.cbs"])).unwrap();
        assert_eq!(o.deadline_ms, None);
        assert_eq!(o.max_trials, None);
        assert_eq!(o.max_points, None);
        assert!(!o.no_degrade);
        assert!(!o.no_bnb);
    }

    #[test]
    fn engine_flags_parse() {
        let o = parse_options(&s(&[
            "d.cbs",
            "--jobs",
            "4",
            "--stats",
            "--stats-json",
            "out.json",
            "--move-node",
            "7:1",
        ]))
        .unwrap();
        assert_eq!(o.jobs, Some(4));
        assert!(o.stats);
        assert_eq!(o.stats_json.as_deref(), Some("out.json"));
        assert_eq!(o.move_node, Some((7, 1)));
        let o = parse_options(&s(&["d.cbs", "--cache-shards", "8"])).unwrap();
        assert_eq!(o.cache_shards, Some(8));
        assert!(parse_options(&s(&["d.cbs", "--cache-shards", "0"])).is_err());
    }

    #[test]
    fn engine_flags_default_off() {
        let o = parse_options(&s(&["d.cbs"])).unwrap();
        assert_eq!(o.jobs, None);
        assert!(!o.stats);
        assert_eq!(o.stats_json, None);
        assert_eq!(o.move_node, None);
    }

    #[test]
    fn rejects_zero_jobs() {
        assert!(parse_options(&s(&["d.cbs", "--jobs", "0"])).is_err());
    }

    #[test]
    fn rejects_malformed_move_node() {
        assert!(parse_options(&s(&["d.cbs", "--move-node", "7"])).is_err());
        assert!(parse_options(&s(&["d.cbs", "--move-node", "a:b"])).is_err());
    }

    #[test]
    fn rejects_bad_deadline() {
        assert!(parse_options(&s(&["d.cbs", "--deadline", "soon"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse_options(&s(&["d.cbs", "--frobnicate"])).is_err());
    }

    #[test]
    fn rejects_bad_package() {
        assert!(parse_options(&s(&["d.cbs", "--package", "100"])).is_err());
    }

    #[test]
    fn rejects_missing_spec() {
        assert!(parse_options(&s(&["--partitions", "2"])).is_err());
    }
}
