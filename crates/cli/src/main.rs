//! `chop` — command-line front end for the CHOP partitioner.
//!
//! ```text
//! chop check <spec.cbs> [options]   decide feasibility of a partitioning
//! chop optimize <spec.cbs> [options] auto-partition via move refinement
//! chop dot <spec.cbs>               print the DFG in Graphviz DOT
//! chop tasks <spec.cbs> [options]   print the task graph in DOT (Fig. 3)
//! chop serve [options]              run the partitioning service (TCP)
//! chop client <addr> <cmd> [...]    talk to a running service
//! chop format                       describe the spec file format
//! ```
//!
//! Run `chop help` for the full option list.

use std::process::ExitCode;

mod args;
mod commands;
mod service;
#[cfg(unix)]
mod signals;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Exit codes: 0 feasible, 1 error, 2 infeasible, 3 truncated budget.
    match commands::run(&argv) {
        Ok(status) => ExitCode::from(status.exit_code()),
        Err(e) => {
            eprintln!("chop: {e}");
            ExitCode::FAILURE
        }
    }
}
