//! The `chop` subcommands.

use std::error::Error;
use std::time::Duration;

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::*;
use chop_dfg::parse::parse_dfg;
use chop_dfg::Dfg;
use chop_library::standard::{
    example_off_shelf_ram, example_on_chip_ram, extended_library, table1_library,
    table2_packages,
};
use chop_library::{ChipId, ChipSet};
use chop_stat::units::{MilliWatts, Nanos};

use crate::args::{
    parse_optimize_options, parse_options, parse_router_options, parse_serve_options, ArgError,
    OptimizeOptions, Options,
};

const HELP: &str = "chop — constraint-driven system-level partitioner

USAGE:
  chop check <spec.cbs> [options]   decide feasibility of a partitioning
  chop optimize <spec.cbs> [options]
                                    auto-partition: move nodes between
                                    partitions until feasible/converged
  chop dot <spec.cbs>               print the DFG in Graphviz DOT
  chop tasks <spec.cbs> [options]   print the task graph in DOT
  chop serve [options]              run the partitioning service (TCP)
  chop router [options]             proxy sessions over replicated pairs
  chop client <addrs> <cmd> [...]   talk to a running service/router
  chop format                       describe the spec file format
  chop help                         this text

OPTIONS (check / tasks):
  --partitions, -k <N>     partitions via horizontal cut   [1]
  --chips <N>              chips in the set                [= partitions]
  --package <64|84>        MOSIS package pins (Table 2)    [84]
  --perf <ns>              performance constraint          [30000]
  --delay <ns>             system-delay constraint         [30000]
  --power <mW>             optional system power limit
  --multi-cycle            multi-cycle operations (sets --dp-mult 1)
  --dp-mult <N>            datapath clock multiplier       [10]
  --heuristic <e|i>        enumeration or iterative        [i]
  --testability <none|partial|full>                        [none]
  --on-chip-memory <M:C>   place memory block M on chip C  [off-the-shelf]
  --extended-library       add comparators/logic/shifters to Table 1
  --markdown               emit a markdown report (check only)
  --deadline <ms>          wall-clock budget for exploration
  --max-trials <N>         cap on combinations examined
  --max-points <N>         cap on retained design points
  --no-degrade             never switch heuristic E to I on huge spaces
  --no-bnb                 exhaustive odometer walk in heuristic E (skip
                           the branch-and-bound subtree pruning)
  --jobs, -j <N>           worker threads for prediction and combination
                           scoring                         [all CPUs]
  --cache-shards <N>       lock stripes in the prediction cache (rounded
                           up to a power of two)           [4 x jobs]
  --stats                  print per-stage trace and cache statistics
  --stats-json <path>      write trace/cache statistics as JSON
  --move-node <N:P>        after the run, move node N to partition P and
                           re-explore incrementally (check only)

OPTIONS (optimize — all check options apply, plus):
  --seed <N>               deterministic randomness seed   [0]
  --max-moves <N>          cap on candidate move evaluations
  --kicks <N>              plateau kicks (annealed escapes) [spec default]
  --kick-moves <N>         annealed moves attempted per kick
  --pin <N>                pin node N to its partition (repeatable)
  --group <A,B,C>          nodes move atomically, stay co-located
                           (repeatable)
  --exclude <A:B>          nodes A and B never share a partition
                           (repeatable)
  --deadline <ms> / --heuristic <e|i> bound and steer each evaluation

OPTIONS (serve):
  --addr <host:port>       listen address (port 0 = ephemeral) [127.0.0.1:1991]
  --workers <N>            exploration worker threads          [4]
  --max-inflight <N>       explorations in flight before busy  [64]
  --jobs, -j <N>           default threads per exploration     [all CPUs]
  --state-dir <dir>        journal mutations here and recover them on
                           restart (crash-safe sessions)       [in-memory]
  --journal-snapshot-every <N>
                           compact the journal past N records (0 = never)
                                                               [1024]
  --cache-shards <N>       lock stripes in the shared prediction cache
                           (rounded up to a power of two)  [4 x workers x jobs]
  --cache-snapshot <path>  persist the prediction cache here and reload it
                           on restart (warm starts)        [off]
  --cache-snapshot-every <N>
                           also snapshot after every N cache insertions
                           (0 = only on graceful drain)    [256]
  --replicate-to <host:port>
                           ship every committed journal record to a warm
                           standby (snapshot-first on connect)
  --standby                start as a warm standby: apply the replication
                           stream, refuse direct mutations until promoted
  --max-connections <N>    concurrent connections before new ones are
                           refused with a typed error          [4096]
  --idle-timeout-ms <N>    close connections with no completed request in
                           N ms, typed error first (0 = never) [600000]
  --max-requests-per-sec <N>
                           per-connection request rate cap; over-limit
                           lines get a typed busy reply with retry_after_ms
                           and the connection stays open (0 = uncapped) [0]
  SIGINT/SIGTERM drain the server gracefully (journal flushed, exit 0).

OPTIONS (router):
  --addr <host:port>       listen address (port 0 = ephemeral) [127.0.0.1:1990]
  --backend <primary[,standby]>
                           one replicated backend pair; repeat for more.
                           Sessions are consistent-hashed over the pairs;
                           a dead primary fails over to its standby.
  --health-interval-ms <N> active-backend ping cadence         [500]

CLIENT COMMANDS (chop client [--retry|--retry-ms N] <addrs> ...):
  <addrs> may be a comma-separated node list (addr1,addr2); the client
  dials the first that answers and fails over to the next on transport
  errors when retrying.
  --retry / --retry-ms <N>           retry busy replies and transport
                                     failures (backoff with jitter) for up
                                     to N ms [2000]; mutations are tagged
                                     with a req_id so a retried delivery is
                                     answered once, never applied twice
  ping                               liveness / protocol version
  open <name> <spec.cbs> [--partitions N] [--chips N] [--package 64|84]
                         [--perf ns] [--delay ns] [--single-cycle]
  explore <name> [--heuristic e|i] [--deadline ms] [--max-trials N] [--jobs N]
  optimize <name> [--seed N] [--heuristic e|i] [--deadline ms] [--max-moves N]
                  [--kicks N] [--kick-moves N] [--jobs N] [--pin N]
                  [--group A,B,C] [--exclude A:B]
  apply-moves <name> <NODE:PART[,NODE:PART...]>
  repartition <name> <NODE:PARTITION>
  set-constraints <name> --perf <ns> --delay <ns>
  stats [name]
  close <name>
  promote                            promote a warm standby to primary
  shutdown                           drain the server and exit 0

EXIT CODES:
  0  a feasible implementation was found (search complete)
  1  error (bad usage, unreadable spec, prediction failure, busy server)
  2  infeasible — the search completed and found nothing
  3  truncated — a budget tripped; results are partial
";

const FORMAT: &str = "Spec format (# comments, one definition per line):

  x  = input 16          primary input, explicit width
  c  = const 16          constant source
  s  = add x c           add/sub/mul/div/logic/shift
  t  = cmp s x           comparison (1-bit result)
  r  = read M0 x         memory read: block, address
  w  = write M0 x s      memory write: block, address, data
  y  = output s          primary output
";

/// The outcome of a successful `chop` invocation, mapped to a process
/// exit code by `main` (errors exit 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// A feasible implementation was found (or the command has no
    /// feasibility verdict, e.g. `dot`/`help`). Exit code 0.
    Feasible,
    /// The search completed and found nothing feasible. Exit code 2.
    Infeasible,
    /// A budget tripped before the search finished; any reported results
    /// are partial. Exit code 3.
    Truncated,
}

impl RunStatus {
    /// The process exit code for this status.
    #[must_use]
    pub fn exit_code(self) -> u8 {
        match self {
            RunStatus::Feasible => 0,
            RunStatus::Infeasible => 2,
            RunStatus::Truncated => 3,
        }
    }

    /// Classifies an exploration outcome: truncation wins over the
    /// feasible/infeasible verdict because the results are partial either
    /// way. E→I degradation is a *complete* (heuristic-I) search and does
    /// not truncate.
    fn from_outcome(outcome: &SearchOutcome) -> Self {
        if outcome.completion.is_truncated() {
            RunStatus::Truncated
        } else if outcome.feasible.is_empty() {
            RunStatus::Infeasible
        } else {
            RunStatus::Feasible
        }
    }
}

/// Dispatches a `chop` invocation.
///
/// # Errors
///
/// Returns a displayable error for bad usage, unreadable files, parse
/// failures and infeasible configurations that cannot even be built.
pub fn run(argv: &[String]) -> Result<RunStatus, Box<dyn Error>> {
    match argv.first().map(String::as_str) {
        Some("check") => check(&parse_options(&argv[1..])?),
        Some("optimize") => {
            let (opts, oopts) = parse_optimize_options(&argv[1..])?;
            optimize(&opts, &oopts)
        }
        Some("dot") => dot(&argv[1..]),
        Some("tasks") => tasks(&parse_options(&argv[1..])?),
        Some("serve") => crate::service::serve(&parse_serve_options(&argv[1..])?),
        Some("router") => crate::service::router(&parse_router_options(&argv[1..])?),
        Some("client") => crate::service::client(&argv[1..]),
        Some("format") => {
            print!("{FORMAT}");
            Ok(RunStatus::Feasible)
        }
        Some("help") | None => {
            print!("{HELP}");
            Ok(RunStatus::Feasible)
        }
        Some(other) => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
    }
}

fn load_spec(path: &str) -> Result<Dfg, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read {path:?}: {e}")))?;
    Ok(parse_dfg(&text)?)
}

fn build_session(opts: &Options) -> Result<Session, Box<dyn Error>> {
    let dfg = load_spec(&opts.spec)?;
    let packages = table2_packages();
    let package = if opts.package_pins == 64 { &packages[0] } else { &packages[1] };
    let chips = ChipSet::uniform(package.clone(), opts.chips.unwrap_or(opts.partitions));

    // Declare every memory block the spec references. Default:
    // off-the-shelf external part; --on-chip-memory overrides.
    let mut max_memory: Option<u32> = None;
    for (_, node) in dfg.nodes() {
        if let Some(m) = node.op().memory() {
            max_memory = Some(max_memory.map_or(m.index(), |x| x.max(m.index())));
        }
    }
    let mut builder = PartitioningBuilder::new(dfg, chips).split_horizontal(opts.partitions);
    if let Some(max) = max_memory {
        for m in 0..=max {
            match opts.on_chip_memories.iter().find(|(mi, _)| *mi == m) {
                Some((_, chip)) => {
                    builder = builder.with_memory(
                        example_on_chip_ram(),
                        MemoryAssignment::OnChip(ChipId::new(*chip)),
                    );
                }
                None => {
                    builder = builder
                        .with_memory(example_off_shelf_ram(), MemoryAssignment::External);
                }
            }
        }
    }
    let partitioning = builder.build()?;

    let library = if opts.extended_library { extended_library() } else { table1_library() };
    let style = if opts.multi_cycle {
        ArchitectureStyle::multi_cycle()
    } else {
        ArchitectureStyle::single_cycle()
    };
    // The unit types panic on NaN/negative input, so bad bounds must be
    // rejected as argument errors before any Nanos is constructed; zero
    // bounds are caught by `try_with_constraints` below.
    for (flag, v) in [
        ("--perf", opts.performance),
        ("--delay", opts.delay),
        ("--power", opts.power.unwrap_or(1.0)),
    ] {
        if !(v.is_finite() && v > 0.0) {
            return Err(Box::new(ArgError(format!(
                "{flag} must be a positive, finite number"
            ))));
        }
    }
    let mut constraints =
        Constraints::new(Nanos::new(opts.performance), Nanos::new(opts.delay));
    if let Some(mw) = opts.power {
        constraints = constraints.with_power_limit(MilliWatts::new(mw));
    }
    let mut session = Session::new(
        partitioning,
        library,
        ClockConfig::new(Nanos::new(300.0), opts.dp_mult, 1)?,
        style,
        PredictorParams::default(),
        constraints,
    )
    .try_with_constraints(constraints)?;
    session = match opts.testability.as_str() {
        "partial" => session.with_testability(TestabilityOverhead::partial_scan()),
        "full" => session.with_testability(TestabilityOverhead::full_scan()),
        _ => session,
    };
    let mut budget = SearchBudget::default();
    if let Some(ms) = opts.deadline_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = opts.max_trials {
        budget = budget.with_max_trials(n);
    }
    if let Some(n) = opts.max_points {
        budget = budget.with_max_points(n);
    }
    if opts.no_degrade {
        budget = budget.without_degradation();
    }
    let jobs = opts.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    });
    let shards = opts.cache_shards.unwrap_or_else(|| recommended_shards(jobs));
    Ok(session
        .with_budget(budget)
        .with_jobs(jobs)
        .with_cache_config(DEFAULT_CACHE_CAPACITY, shards)
        .with_branch_and_bound(!opts.no_bnb))
}

/// Looks up a DFG node by wire index in a session.
fn find_node(session: &Session, node: u32) -> Result<chop_dfg::NodeId, ArgError> {
    session
        .partitioning()
        .dfg()
        .nodes()
        .map(|(id, _)| id)
        .find(|id| id.index() == node as usize)
        .ok_or_else(|| ArgError(format!("no node with index {node}")))
}

/// `chop optimize` — run the move-based optimizer on the spec's initial
/// partitioning and report the accepted trace and final verdict.
fn optimize(opts: &Options, oopts: &OptimizeOptions) -> Result<RunStatus, Box<dyn Error>> {
    let session = build_session(opts)?;
    let heuristic =
        if opts.heuristic == 'e' { Heuristic::Enumeration } else { Heuristic::Iterative };
    let mut spec = OptimizeSpec::new().with_seed(oopts.seed).with_heuristic(heuristic);
    if let Some(ms) = opts.deadline_ms {
        spec = spec.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = oopts.max_moves {
        spec = spec.with_max_moves(n);
    }
    if oopts.kicks.is_some() || oopts.kick_moves.is_some() {
        let kicks = oopts.kicks.unwrap_or_else(|| spec.kicks());
        let kick_moves = oopts.kick_moves.unwrap_or_else(|| spec.kick_moves());
        spec = spec.with_kicks(kicks, kick_moves);
    }
    for &node in &oopts.pinned {
        spec = spec.with_pinned_node(find_node(&session, node)?);
    }
    for group in &oopts.groups {
        let nodes = group
            .iter()
            .map(|&node| find_node(&session, node))
            .collect::<Result<Vec<_>, _>>()?;
        spec = spec.with_group(nodes);
    }
    for &(a, b) in &oopts.exclusions {
        spec = spec.with_exclusion(find_node(&session, a)?, find_node(&session, b)?);
    }
    print!("{}", report::environment(&session));
    let result = session.optimize(&spec)?;
    println!(
        "optimize (seed {}): {} move(s) accepted over {} pass(es), {} kick(s), \
         {} evaluation(s), {:.2?}",
        oopts.seed,
        result.moves.len(),
        result.passes,
        result.kicks_used,
        result.evaluations,
        result.elapsed
    );
    println!("score: {:.3} -> {:.3}", result.initial_score, result.final_score);
    if result.completion.is_truncated() {
        println!("TRUNCATED ({}) — the trace below is partial.", result.completion);
    }
    for mv in &result.moves {
        let nodes =
            mv.nodes.iter().map(|n| n.index().to_string()).collect::<Vec<_>>().join("+");
        let kind = match mv.kind {
            MoveKind::Gain => "gain",
            MoveKind::Kick => "kick",
        };
        println!(
            "  pass {} {kind}: node {nodes} {} -> {}",
            mv.pass,
            mv.from.index(),
            mv.to.index()
        );
    }
    println!();
    report_outcome(opts, &result.outcome, &session);
    println!("\ndigest {}", result.digest());
    Ok(if result.completion.is_truncated() {
        RunStatus::Truncated
    } else if result.feasible() {
        RunStatus::Feasible
    } else {
        RunStatus::Infeasible
    })
}

fn check(opts: &Options) -> Result<RunStatus, Box<dyn Error>> {
    let session = build_session(opts)?;
    let heuristic =
        if opts.heuristic == 'e' { Heuristic::Enumeration } else { Heuristic::Iterative };
    if opts.markdown {
        let outcome = session.explore(heuristic)?;
        print!("{}", report::markdown(&session, &outcome));
        write_stats_json(opts, &session, &[("baseline", &outcome)])?;
        return Ok(RunStatus::from_outcome(&outcome));
    }
    print!("{}", report::environment(&session));
    let outcome = session.explore(heuristic)?;
    report_outcome(opts, &outcome, &session);
    let moved_outcome;
    let mut runs: Vec<(&str, &SearchOutcome)> = vec![("baseline", &outcome)];
    let status = match opts.move_node {
        Some((node, part)) => {
            let node_id = session
                .partitioning()
                .dfg()
                .nodes()
                .map(|(id, _)| id)
                .find(|id| id.index() == node as usize)
                .ok_or_else(|| ArgError(format!("--move-node: no node with index {node}")))?;
            let moved = session.repartition(node_id, PartitionId::new(part))?;
            println!("\nWHAT-IF: node {node} moved to partition {part}, re-exploring");
            moved_outcome = moved.explore(heuristic)?;
            report_outcome(opts, &moved_outcome, &moved);
            println!(
                "incremental re-explore: {} predictor call(s), {} partition(s) from cache",
                moved_outcome.trace.predictor_calls, moved_outcome.trace.cache_hits
            );
            runs.push(("moved", &moved_outcome));
            RunStatus::from_outcome(&moved_outcome)
        }
        None => RunStatus::from_outcome(&outcome),
    };
    write_stats_json(opts, &session, &runs)?;
    Ok(status)
}

/// Prints the human-readable result block for one exploration run.
fn report_outcome(opts: &Options, outcome: &SearchOutcome, session: &Session) {
    println!(
        "heuristic {}: {} trials, {} feasible, {:.2?}",
        outcome.heuristic, outcome.trials, outcome.feasible_trials, outcome.elapsed
    );
    if outcome.degraded {
        println!("note: enumeration space too large, degraded to heuristic I");
    }
    if outcome.completion.is_truncated() {
        println!("TRUNCATED ({}) — results below are partial.", outcome.completion);
    }
    match outcome.feasible.first() {
        Some(best) => {
            println!("\n{}", report::guideline(outcome, best, session.library()));
        }
        None if outcome.completion.is_truncated() => {
            println!("\nNo feasible combination found before the budget tripped.");
            println!("Raise --deadline/--max-trials or drop the budget to search further.");
        }
        None => {
            println!("\nINFEASIBLE — no combination of predicted implementations works.");
            println!("Try more chips/partitions, a larger package, or weaker constraints.");
        }
    }
    if opts.stats {
        print_stats(outcome, session);
    }
}

/// Prints the `--stats` table: per-stage spans, then the counters.
///
/// `predict` and `search` are wall-clock; `prune-L1`, `integrate` and
/// `feasibility` are CPU time summed across workers, so they can exceed
/// the wall-clock spans that contain them.
fn print_stats(outcome: &SearchOutcome, session: &Session) {
    let t = &outcome.trace;
    let c = &outcome.cache;
    println!("\nPIPELINE STATS ({} worker thread(s)):", t.jobs);
    for (stage, ns) in [
        ("predict (wall)", t.predict_ns),
        ("prune-L1 (cpu)", t.prune_l1_ns),
        ("search (wall)", t.search_ns),
        ("integrate (cpu)", t.integrate_ns),
        ("feasibility (cpu)", t.feasibility_ns),
    ] {
        #[allow(clippy::cast_precision_loss)]
        let ms = ns as f64 / 1e6;
        println!("  {stage:<18} {ms:>10.3} ms");
    }
    println!(
        "  {} predictor call(s); cache: {} hit(s), {} miss(es), {} eviction(s), {} entries (~{} B)",
        t.predictor_calls, c.hits, c.misses, c.evictions, c.entries, c.bytes
    );
    let occupancy = session.shared_cache().shard_occupancy();
    if occupancy.len() > 1 {
        let cells = occupancy.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ");
        println!("  cache shards ({}): [{cells}]", occupancy.len());
    }
    println!("  {} evaluation(s), {} quick reject(s)", t.evaluations, t.quick_rejects);
    println!(
        "  {} subtree(s) skipped ({} combination(s) never visited)",
        t.subtrees_skipped, t.combinations_skipped
    );
}

/// Writes `--stats-json`: one object per run, in run order.
fn write_stats_json(
    opts: &Options,
    session: &Session,
    runs: &[(&str, &SearchOutcome)],
) -> Result<(), Box<dyn Error>> {
    let Some(path) = opts.stats_json.as_deref() else { return Ok(()) };
    let body = runs
        .iter()
        .map(|(label, o)| {
            let c = &o.cache;
            format!(
                "{{\"label\":\"{label}\",\"trace\":{},\"cache\":{{\"hits\":{},\
                 \"misses\":{},\"evictions\":{},\"entries\":{},\"bytes\":{}}}}}",
                o.trace.to_json(),
                c.hits,
                c.misses,
                c.evictions,
                c.entries,
                c.bytes
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    // One array, not one per run: what-if sessions share the cache, so
    // occupancy is a property of the process, not of a single run.
    let shards = session
        .shared_cache()
        .shard_occupancy()
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    std::fs::write(path, format!("{{\"runs\":[{body}],\"shard_entries\":[{shards}]}}\n"))
        .map_err(|e| ArgError(format!("cannot write {path:?}: {e}")))?;
    Ok(())
}

fn dot(argv: &[String]) -> Result<RunStatus, Box<dyn Error>> {
    let path =
        argv.first().ok_or_else(|| ArgError("dot needs a <spec.cbs> argument".into()))?;
    let dfg = load_spec(path)?;
    print!("{}", chop_dfg::dot::to_dot(&dfg));
    Ok(RunStatus::Feasible)
}

fn tasks(opts: &Options) -> Result<RunStatus, Box<dyn Error>> {
    let session = build_session(opts)?;
    print!("{}", report::task_graph_dot(session.partitioning()));
    Ok(RunStatus::Feasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Materializes a spec under the temp dir. I/O failures surface as
    /// `Err` (and a test failure) instead of a panic mid-assertion.
    fn write_spec(name: &str, body: &str) -> Result<String, Box<dyn Error>> {
        let dir = std::env::temp_dir().join("chop-cli-tests");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(name);
        std::fs::write(&path, body)?;
        Ok(path.to_string_lossy().into_owned())
    }

    fn argv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn help_and_format_print() {
        assert!(run(&argv(&["help"])).is_ok());
        assert!(run(&argv(&["format"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["bogus"])).is_err());
    }

    #[test]
    fn check_runs_on_simple_spec() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "simple.cbs",
            "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n",
        )?;
        run(&argv(&["check", &path]))?;
        run(&argv(&["check", &path, "--multi-cycle", "--heuristic", "e"]))?;
        Ok(())
    }

    #[test]
    fn optimize_runs_deterministically() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "optimize.cbs",
            "a = input 16\nb = input 16\np = mul a b\ns = add p a\nt = add s b\n\
             u = add t a\ny = output u\n",
        )?;
        let status = run(&argv(&[
            "optimize",
            &path,
            "--partitions",
            "2",
            "--seed",
            "7",
            "--max-moves",
            "64",
        ]))?;
        assert_eq!(status, RunStatus::Feasible);
        // Constraint flags parse and flow into the spec.
        run(&argv(&["optimize", &path, "--partitions", "2", "--pin", "0", "--group", "2,3"]))?;
        // An unknown node index is a clean argument error.
        assert!(run(&argv(&["optimize", &path, "--pin", "99"])).is_err());
        Ok(())
    }

    #[test]
    fn dot_and_tasks_run() -> Result<(), Box<dyn Error>> {
        let path = write_spec("dot.cbs", "a = input 8\ny = output a\n")?;
        run(&argv(&["dot", &path]))?;
        run(&argv(&["tasks", &path, "--partitions", "1"]))?;
        Ok(())
    }

    #[test]
    fn memory_spec_defaults_to_off_the_shelf() -> Result<(), Box<dyn Error>> {
        let path =
            write_spec("mem.cbs", "a = input 16\nr = read M0 a\np = mul r a\ny = output p\n")?;
        run(&argv(&["check", &path, "--multi-cycle"]))?;
        run(&argv(&["check", &path, "--multi-cycle", "--on-chip-memory", "M0:0"]))?;
        Ok(())
    }

    #[test]
    fn markdown_report_flag_accepted() -> Result<(), Box<dyn Error>> {
        let path =
            write_spec("md.cbs", "a = input 16\nb = input 16\np = mul a b\ny = output p\n")?;
        run(&argv(&["check", &path, "--multi-cycle", "--markdown"]))?;
        Ok(())
    }

    #[test]
    fn shipped_spec_files_all_check() -> Result<(), Box<dyn Error>> {
        let specs = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
        let mut found = 0;
        for entry in std::fs::read_dir(specs)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "cbs") {
                found += 1;
                let p = path.to_string_lossy().into_owned();
                run(&argv(&["check", &p, "--multi-cycle", "--partitions", "2"]))
                    .map_err(|e| format!("{p} failed: {e}"))?;
                run(&argv(&["dot", &p]))?;
            }
        }
        assert!(found >= 3, "expected the shipped spec files, found {found}");
        Ok(())
    }

    #[test]
    fn missing_file_reports_cleanly() {
        let err = run(&argv(&["check", "/nonexistent/x.cbs"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn parse_error_reports_line() -> Result<(), Box<dyn Error>> {
        let path = write_spec("bad.cbs", "a = input 16\nb = add a ghost\n")?;
        let err = run(&argv(&["check", &path])).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        Ok(())
    }

    #[test]
    fn nonpositive_constraints_are_argument_errors() -> Result<(), Box<dyn Error>> {
        let path = write_spec("neg.cbs", "a = input 16\ny = output a\n")?;
        for flag in ["--perf", "--delay", "--power"] {
            let err = run(&argv(&["check", &path, flag, "-5"])).unwrap_err();
            assert!(err.to_string().contains("positive"), "{flag}: {err}");
        }
        // Zero is caught by the validating builder, not the unit types.
        let err = run(&argv(&["check", &path, "--perf", "0"])).unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
        Ok(())
    }

    #[test]
    fn exit_code_mapping_is_exhaustive() {
        // One arm per RunStatus variant: adding a variant breaks this
        // match, forcing the mapping (and its docs) to be revisited.
        for status in [RunStatus::Feasible, RunStatus::Infeasible, RunStatus::Truncated] {
            let code = match status {
                RunStatus::Feasible => 0,
                RunStatus::Infeasible => 2,
                RunStatus::Truncated => 3,
            };
            assert_eq!(status.exit_code(), code);
        }
    }

    #[test]
    fn feasible_check_reports_feasible_status() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "status-ok.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        )?;
        let status = run(&argv(&["check", &path, "--multi-cycle"]))?;
        assert_eq!(status, RunStatus::Feasible);
        Ok(())
    }

    #[test]
    fn impossible_constraint_reports_infeasible_status() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "status-bad.cbs",
            "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n",
        )?;
        // A 1 ns performance bound is unmeetable with a 300 ns clock.
        let status =
            run(&argv(&["check", &path, "--multi-cycle", "--perf", "1", "--delay", "1"]))?;
        assert_eq!(status, RunStatus::Infeasible);
        Ok(())
    }

    #[test]
    fn zero_deadline_reports_truncated_status() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "status-trunc.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        )?;
        let status = run(&argv(&["check", &path, "--multi-cycle", "--deadline", "0"]))?;
        assert_eq!(status, RunStatus::Truncated);
        Ok(())
    }

    #[test]
    fn zero_trials_reports_truncated_status() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "status-trials.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        )?;
        let status = run(&argv(&["check", &path, "--multi-cycle", "--max-trials", "0"]))?;
        assert_eq!(status, RunStatus::Truncated);
        Ok(())
    }

    #[test]
    fn help_lists_budget_flags_and_exit_codes() {
        assert!(HELP.contains("--deadline"));
        assert!(HELP.contains("--no-degrade"));
        assert!(HELP.contains("EXIT CODES"));
    }

    #[test]
    fn help_lists_engine_flags() {
        assert!(HELP.contains("--jobs"));
        assert!(HELP.contains("--stats"));
        assert!(HELP.contains("--stats-json"));
        assert!(HELP.contains("--move-node"));
        assert!(HELP.contains("--no-bnb"));
    }

    #[test]
    fn stats_and_jobs_flags_run() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "stats.cbs",
            "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n",
        )?;
        run(&argv(&["check", &path, "--multi-cycle", "--stats", "--jobs", "2"]))?;
        Ok(())
    }

    #[test]
    fn stats_json_writes_a_runs_object() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "stats-json.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        )?;
        let out = std::env::temp_dir().join("chop-cli-tests").join("stats.json");
        let out = out.to_string_lossy().into_owned();
        run(&argv(&["check", &path, "--multi-cycle", "--stats-json", &out]))?;
        let body = std::fs::read_to_string(&out)?;
        assert!(body.starts_with("{\"runs\":[{\"label\":\"baseline\""));
        assert!(body.contains("\"predictor_calls\""));
        assert!(body.contains("\"cache\""));
        Ok(())
    }

    #[test]
    fn move_node_reexplores_incrementally() -> Result<(), Box<dyn Error>> {
        let path = write_spec(
            "move.cbs",
            "a = input 16\nb = input 16\np = mul a b\ns = add p a\nt = add s b\ny = output t\n",
        )?;
        let out = std::env::temp_dir().join("chop-cli-tests").join("move.json");
        let out = out.to_string_lossy().into_owned();
        run(&argv(&[
            "check",
            &path,
            "--multi-cycle",
            "--partitions",
            "2",
            "--move-node",
            "3:0",
            "--stats-json",
            &out,
        ]))?;
        let body = std::fs::read_to_string(&out)?;
        assert!(body.contains("\"label\":\"baseline\""));
        assert!(body.contains("\"label\":\"moved\""));
        Ok(())
    }

    #[test]
    fn move_node_rejects_unknown_node() -> Result<(), Box<dyn Error>> {
        let path = write_spec("move-bad.cbs", "a = input 16\ny = output a\n")?;
        let err =
            run(&argv(&["check", &path, "--multi-cycle", "--move-node", "99:0"])).unwrap_err();
        assert!(err.to_string().contains("no node with index"));
        Ok(())
    }

    #[test]
    fn help_lists_service_commands() {
        assert!(HELP.contains("chop serve"));
        assert!(HELP.contains("chop client"));
        assert!(HELP.contains("--max-inflight"));
        assert!(HELP.contains("--max-connections"));
        assert!(HELP.contains("--idle-timeout-ms"));
        assert!(HELP.contains("shutdown"));
    }

    #[test]
    fn help_lists_durability_and_retry_flags() {
        assert!(HELP.contains("--state-dir"));
        assert!(HELP.contains("--journal-snapshot-every"));
        assert!(HELP.contains("--retry"));
        assert!(HELP.contains("set-constraints"));
        assert!(HELP.contains("SIGINT/SIGTERM"));
    }

    #[test]
    fn help_lists_replication_and_router() {
        assert!(HELP.contains("chop router"));
        assert!(HELP.contains("--replicate-to"));
        assert!(HELP.contains("--standby"));
        assert!(HELP.contains("--backend"));
        assert!(HELP.contains("--health-interval-ms"));
        assert!(HELP.contains("promote"));
        assert!(HELP.contains("comma-separated node list"));
    }
}
