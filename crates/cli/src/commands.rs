//! The `chop` subcommands.

use std::error::Error;
use std::time::Duration;

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::spec::PartitioningBuilder;
use chop_core::testability::TestabilityOverhead;
use chop_core::{
    report, Constraints, Heuristic, MemoryAssignment, SearchBudget, SearchOutcome, Session,
};
use chop_dfg::parse::parse_dfg;
use chop_dfg::Dfg;
use chop_library::standard::{
    example_off_shelf_ram, example_on_chip_ram, extended_library, table1_library,
    table2_packages,
};
use chop_library::{ChipId, ChipSet};
use chop_stat::units::{MilliWatts, Nanos};

use crate::args::{parse_options, ArgError, Options};

const HELP: &str = "chop — constraint-driven system-level partitioner

USAGE:
  chop check <spec.cbs> [options]   decide feasibility of a partitioning
  chop dot <spec.cbs>               print the DFG in Graphviz DOT
  chop tasks <spec.cbs> [options]   print the task graph in DOT
  chop format                       describe the spec file format
  chop help                         this text

OPTIONS (check / tasks):
  --partitions, -k <N>     partitions via horizontal cut   [1]
  --chips <N>              chips in the set                [= partitions]
  --package <64|84>        MOSIS package pins (Table 2)    [84]
  --perf <ns>              performance constraint          [30000]
  --delay <ns>             system-delay constraint         [30000]
  --power <mW>             optional system power limit
  --multi-cycle            multi-cycle operations (sets --dp-mult 1)
  --dp-mult <N>            datapath clock multiplier       [10]
  --heuristic <e|i>        enumeration or iterative        [i]
  --testability <none|partial|full>                        [none]
  --on-chip-memory <M:C>   place memory block M on chip C  [off-the-shelf]
  --extended-library       add comparators/logic/shifters to Table 1
  --markdown               emit a markdown report (check only)
  --deadline <ms>          wall-clock budget for exploration
  --max-trials <N>         cap on combinations examined
  --max-points <N>         cap on retained design points
  --no-degrade             never switch heuristic E to I on huge spaces

EXIT CODES:
  0  a feasible implementation was found (search complete)
  1  error (bad usage, unreadable spec, prediction failure)
  2  infeasible — the search completed and found nothing
  3  truncated — a budget tripped; results are partial
";

const FORMAT: &str = "Spec format (# comments, one definition per line):

  x  = input 16          primary input, explicit width
  c  = const 16          constant source
  s  = add x c           add/sub/mul/div/logic/shift
  t  = cmp s x           comparison (1-bit result)
  r  = read M0 x         memory read: block, address
  w  = write M0 x s      memory write: block, address, data
  y  = output s          primary output
";

/// The outcome of a successful `chop` invocation, mapped to a process
/// exit code by `main` (errors exit 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// A feasible implementation was found (or the command has no
    /// feasibility verdict, e.g. `dot`/`help`). Exit code 0.
    Feasible,
    /// The search completed and found nothing feasible. Exit code 2.
    Infeasible,
    /// A budget tripped before the search finished; any reported results
    /// are partial. Exit code 3.
    Truncated,
}

impl RunStatus {
    /// The process exit code for this status.
    #[must_use]
    pub fn exit_code(self) -> u8 {
        match self {
            RunStatus::Feasible => 0,
            RunStatus::Infeasible => 2,
            RunStatus::Truncated => 3,
        }
    }

    /// Classifies an exploration outcome: truncation wins over the
    /// feasible/infeasible verdict because the results are partial either
    /// way. E→I degradation is a *complete* (heuristic-I) search and does
    /// not truncate.
    fn from_outcome(outcome: &SearchOutcome) -> Self {
        if outcome.completion.is_truncated() {
            RunStatus::Truncated
        } else if outcome.feasible.is_empty() {
            RunStatus::Infeasible
        } else {
            RunStatus::Feasible
        }
    }
}

/// Dispatches a `chop` invocation.
///
/// # Errors
///
/// Returns a displayable error for bad usage, unreadable files, parse
/// failures and infeasible configurations that cannot even be built.
pub fn run(argv: &[String]) -> Result<RunStatus, Box<dyn Error>> {
    match argv.first().map(String::as_str) {
        Some("check") => check(&parse_options(&argv[1..])?),
        Some("dot") => dot(&argv[1..]),
        Some("tasks") => tasks(&parse_options(&argv[1..])?),
        Some("format") => {
            print!("{FORMAT}");
            Ok(RunStatus::Feasible)
        }
        Some("help") | None => {
            print!("{HELP}");
            Ok(RunStatus::Feasible)
        }
        Some(other) => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
    }
}

fn load_spec(path: &str) -> Result<Dfg, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read {path:?}: {e}")))?;
    Ok(parse_dfg(&text)?)
}

fn build_session(opts: &Options) -> Result<Session, Box<dyn Error>> {
    let dfg = load_spec(&opts.spec)?;
    let packages = table2_packages();
    let package = if opts.package_pins == 64 { &packages[0] } else { &packages[1] };
    let chips = ChipSet::uniform(package.clone(), opts.chips.unwrap_or(opts.partitions));

    // Declare every memory block the spec references. Default:
    // off-the-shelf external part; --on-chip-memory overrides.
    let mut max_memory: Option<u32> = None;
    for (_, node) in dfg.nodes() {
        if let Some(m) = node.op().memory() {
            max_memory = Some(max_memory.map_or(m.index(), |x| x.max(m.index())));
        }
    }
    let mut builder = PartitioningBuilder::new(dfg, chips).split_horizontal(opts.partitions);
    if let Some(max) = max_memory {
        for m in 0..=max {
            match opts.on_chip_memories.iter().find(|(mi, _)| *mi == m) {
                Some((_, chip)) => {
                    builder = builder.with_memory(
                        example_on_chip_ram(),
                        MemoryAssignment::OnChip(ChipId::new(*chip)),
                    );
                }
                None => {
                    builder = builder
                        .with_memory(example_off_shelf_ram(), MemoryAssignment::External);
                }
            }
        }
    }
    let partitioning = builder.build()?;

    let library = if opts.extended_library { extended_library() } else { table1_library() };
    let style = if opts.multi_cycle {
        ArchitectureStyle::multi_cycle()
    } else {
        ArchitectureStyle::single_cycle()
    };
    let mut constraints =
        Constraints::new(Nanos::new(opts.performance), Nanos::new(opts.delay));
    if let Some(mw) = opts.power {
        constraints = constraints.with_power_limit(MilliWatts::new(mw));
    }
    let mut session = Session::new(
        partitioning,
        library,
        ClockConfig::new(Nanos::new(300.0), opts.dp_mult, 1)?,
        style,
        PredictorParams::default(),
        constraints,
    );
    session = match opts.testability.as_str() {
        "partial" => session.with_testability(TestabilityOverhead::partial_scan()),
        "full" => session.with_testability(TestabilityOverhead::full_scan()),
        _ => session,
    };
    let mut budget = SearchBudget::default();
    if let Some(ms) = opts.deadline_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = opts.max_trials {
        budget = budget.with_max_trials(n);
    }
    if let Some(n) = opts.max_points {
        budget = budget.with_max_points(n);
    }
    if opts.no_degrade {
        budget = budget.without_degradation();
    }
    Ok(session.with_budget(budget))
}

fn check(opts: &Options) -> Result<RunStatus, Box<dyn Error>> {
    let session = build_session(opts)?;
    let heuristic =
        if opts.heuristic == 'e' { Heuristic::Enumeration } else { Heuristic::Iterative };
    if opts.markdown {
        let outcome = session.explore(heuristic)?;
        print!("{}", report::markdown(&session, &outcome));
        return Ok(RunStatus::from_outcome(&outcome));
    }
    print!("{}", report::environment(&session));
    let outcome = session.explore(heuristic)?;
    println!(
        "heuristic {}: {} trials, {} feasible, {:.2?}",
        outcome.heuristic, outcome.trials, outcome.feasible_trials, outcome.elapsed
    );
    if outcome.degraded {
        println!("note: enumeration space too large, degraded to heuristic I");
    }
    if outcome.completion.is_truncated() {
        println!("TRUNCATED ({}) — results below are partial.", outcome.completion);
    }
    match outcome.feasible.first() {
        Some(best) => {
            println!("\n{}", report::guideline(best, session.library()));
        }
        None if outcome.completion.is_truncated() => {
            println!("\nNo feasible combination found before the budget tripped.");
            println!("Raise --deadline/--max-trials or drop the budget to search further.");
        }
        None => {
            println!("\nINFEASIBLE — no combination of predicted implementations works.");
            println!("Try more chips/partitions, a larger package, or weaker constraints.");
        }
    }
    Ok(RunStatus::from_outcome(&outcome))
}

fn dot(argv: &[String]) -> Result<RunStatus, Box<dyn Error>> {
    let path = argv
        .first()
        .ok_or_else(|| ArgError("dot needs a <spec.cbs> argument".into()))?;
    let dfg = load_spec(path)?;
    print!("{}", chop_dfg::dot::to_dot(&dfg));
    Ok(RunStatus::Feasible)
}

fn tasks(opts: &Options) -> Result<RunStatus, Box<dyn Error>> {
    let session = build_session(opts)?;
    print!("{}", report::task_graph_dot(session.partitioning()));
    Ok(RunStatus::Feasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_spec(name: &str, body: &str) -> String {
        let dir = std::env::temp_dir().join("chop-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn argv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn help_and_format_print() {
        assert!(run(&argv(&["help"])).is_ok());
        assert!(run(&argv(&["format"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["bogus"])).is_err());
    }

    #[test]
    fn check_runs_on_simple_spec() {
        let path = write_spec(
            "simple.cbs",
            "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n",
        );
        assert!(run(&argv(&["check", &path])).is_ok());
        assert!(run(&argv(&["check", &path, "--multi-cycle", "--heuristic", "e"])).is_ok());
    }

    #[test]
    fn dot_and_tasks_run() {
        let path = write_spec("dot.cbs", "a = input 8\ny = output a\n");
        assert!(run(&argv(&["dot", &path])).is_ok());
        assert!(run(&argv(&["tasks", &path, "--partitions", "1"])).is_ok());
    }

    #[test]
    fn memory_spec_defaults_to_off_the_shelf() {
        let path = write_spec(
            "mem.cbs",
            "a = input 16\nr = read M0 a\np = mul r a\ny = output p\n",
        );
        assert!(run(&argv(&["check", &path, "--multi-cycle"])).is_ok());
        assert!(run(&argv(&["check", &path, "--multi-cycle", "--on-chip-memory", "M0:0"]))
            .is_ok());
    }

    #[test]
    fn markdown_report_flag_accepted() {
        let path = write_spec(
            "md.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        );
        assert!(run(&argv(&["check", &path, "--multi-cycle", "--markdown"])).is_ok());
    }

    #[test]
    fn shipped_spec_files_all_check() {
        let specs = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../specs");
        let mut found = 0;
        for entry in std::fs::read_dir(specs).expect("specs/ directory ships with the repo") {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "cbs") {
                found += 1;
                let p = path.to_string_lossy().into_owned();
                assert!(
                    run(&argv(&["check", &p, "--multi-cycle", "--partitions", "2"])).is_ok(),
                    "{p} failed"
                );
                assert!(run(&argv(&["dot", &p])).is_ok());
            }
        }
        assert!(found >= 3, "expected the shipped spec files, found {found}");
    }

    #[test]
    fn missing_file_reports_cleanly() {
        let err = run(&argv(&["check", "/nonexistent/x.cbs"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn parse_error_reports_line() {
        let path = write_spec("bad.cbs", "a = input 16\nb = add a ghost\n");
        let err = run(&argv(&["check", &path])).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn exit_code_mapping_is_exhaustive() {
        // One arm per RunStatus variant: adding a variant breaks this
        // match, forcing the mapping (and its docs) to be revisited.
        for status in [RunStatus::Feasible, RunStatus::Infeasible, RunStatus::Truncated] {
            let code = match status {
                RunStatus::Feasible => 0,
                RunStatus::Infeasible => 2,
                RunStatus::Truncated => 3,
            };
            assert_eq!(status.exit_code(), code);
        }
    }

    #[test]
    fn feasible_check_reports_feasible_status() {
        let path = write_spec(
            "status-ok.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        );
        let status = run(&argv(&["check", &path, "--multi-cycle"])).unwrap();
        assert_eq!(status, RunStatus::Feasible);
    }

    #[test]
    fn impossible_constraint_reports_infeasible_status() {
        let path = write_spec(
            "status-bad.cbs",
            "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n",
        );
        // A 1 ns performance bound is unmeetable with a 300 ns clock.
        let status =
            run(&argv(&["check", &path, "--multi-cycle", "--perf", "1", "--delay", "1"]))
                .unwrap();
        assert_eq!(status, RunStatus::Infeasible);
    }

    #[test]
    fn zero_deadline_reports_truncated_status() {
        let path = write_spec(
            "status-trunc.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        );
        let status = run(&argv(&["check", &path, "--multi-cycle", "--deadline", "0"])).unwrap();
        assert_eq!(status, RunStatus::Truncated);
    }

    #[test]
    fn zero_trials_reports_truncated_status() {
        let path = write_spec(
            "status-trials.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        );
        let status =
            run(&argv(&["check", &path, "--multi-cycle", "--max-trials", "0"])).unwrap();
        assert_eq!(status, RunStatus::Truncated);
    }

    #[test]
    fn help_lists_budget_flags_and_exit_codes() {
        assert!(HELP.contains("--deadline"));
        assert!(HELP.contains("--no-degrade"));
        assert!(HELP.contains("EXIT CODES"));
    }
}
