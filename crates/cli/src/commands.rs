//! The `chop` subcommands.

use std::error::Error;

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::spec::PartitioningBuilder;
use chop_core::testability::TestabilityOverhead;
use chop_core::{report, Constraints, Heuristic, MemoryAssignment, Session};
use chop_dfg::parse::parse_dfg;
use chop_dfg::Dfg;
use chop_library::standard::{
    example_off_shelf_ram, example_on_chip_ram, extended_library, table1_library,
    table2_packages,
};
use chop_library::{ChipId, ChipSet};
use chop_stat::units::{MilliWatts, Nanos};

use crate::args::{parse_options, ArgError, Options};

const HELP: &str = "chop — constraint-driven system-level partitioner

USAGE:
  chop check <spec.cbs> [options]   decide feasibility of a partitioning
  chop dot <spec.cbs>               print the DFG in Graphviz DOT
  chop tasks <spec.cbs> [options]   print the task graph in DOT
  chop format                       describe the spec file format
  chop help                         this text

OPTIONS (check / tasks):
  --partitions, -k <N>     partitions via horizontal cut   [1]
  --chips <N>              chips in the set                [= partitions]
  --package <64|84>        MOSIS package pins (Table 2)    [84]
  --perf <ns>              performance constraint          [30000]
  --delay <ns>             system-delay constraint         [30000]
  --power <mW>             optional system power limit
  --multi-cycle            multi-cycle operations (sets --dp-mult 1)
  --dp-mult <N>            datapath clock multiplier       [10]
  --heuristic <e|i>        enumeration or iterative        [i]
  --testability <none|partial|full>                        [none]
  --on-chip-memory <M:C>   place memory block M on chip C  [off-the-shelf]
  --extended-library       add comparators/logic/shifters to Table 1
  --markdown               emit a markdown report (check only)
";

const FORMAT: &str = "Spec format (# comments, one definition per line):

  x  = input 16          primary input, explicit width
  c  = const 16          constant source
  s  = add x c           add/sub/mul/div/logic/shift
  t  = cmp s x           comparison (1-bit result)
  r  = read M0 x         memory read: block, address
  w  = write M0 x s      memory write: block, address, data
  y  = output s          primary output
";

/// Dispatches a `chop` invocation.
///
/// # Errors
///
/// Returns a displayable error for bad usage, unreadable files, parse
/// failures and infeasible configurations that cannot even be built.
pub fn run(argv: &[String]) -> Result<(), Box<dyn Error>> {
    match argv.first().map(String::as_str) {
        Some("check") => check(&parse_options(&argv[1..])?),
        Some("dot") => dot(&argv[1..]),
        Some("tasks") => tasks(&parse_options(&argv[1..])?),
        Some("format") => {
            print!("{FORMAT}");
            Ok(())
        }
        Some("help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
    }
}

fn load_spec(path: &str) -> Result<Dfg, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read {path:?}: {e}")))?;
    Ok(parse_dfg(&text)?)
}

fn build_session(opts: &Options) -> Result<Session, Box<dyn Error>> {
    let dfg = load_spec(&opts.spec)?;
    let packages = table2_packages();
    let package = if opts.package_pins == 64 { &packages[0] } else { &packages[1] };
    let chips = ChipSet::uniform(package.clone(), opts.chips.unwrap_or(opts.partitions));

    // Declare every memory block the spec references. Default:
    // off-the-shelf external part; --on-chip-memory overrides.
    let mut max_memory: Option<u32> = None;
    for (_, node) in dfg.nodes() {
        if let Some(m) = node.op().memory() {
            max_memory = Some(max_memory.map_or(m.index(), |x| x.max(m.index())));
        }
    }
    let mut builder = PartitioningBuilder::new(dfg, chips).split_horizontal(opts.partitions);
    if let Some(max) = max_memory {
        for m in 0..=max {
            match opts.on_chip_memories.iter().find(|(mi, _)| *mi == m) {
                Some((_, chip)) => {
                    builder = builder.with_memory(
                        example_on_chip_ram(),
                        MemoryAssignment::OnChip(ChipId::new(*chip)),
                    );
                }
                None => {
                    builder = builder
                        .with_memory(example_off_shelf_ram(), MemoryAssignment::External);
                }
            }
        }
    }
    let partitioning = builder.build()?;

    let library = if opts.extended_library { extended_library() } else { table1_library() };
    let style = if opts.multi_cycle {
        ArchitectureStyle::multi_cycle()
    } else {
        ArchitectureStyle::single_cycle()
    };
    let mut constraints =
        Constraints::new(Nanos::new(opts.performance), Nanos::new(opts.delay));
    if let Some(mw) = opts.power {
        constraints = constraints.with_power_limit(MilliWatts::new(mw));
    }
    let mut session = Session::new(
        partitioning,
        library,
        ClockConfig::new(Nanos::new(300.0), opts.dp_mult, 1)?,
        style,
        PredictorParams::default(),
        constraints,
    );
    session = match opts.testability.as_str() {
        "partial" => session.with_testability(TestabilityOverhead::partial_scan()),
        "full" => session.with_testability(TestabilityOverhead::full_scan()),
        _ => session,
    };
    Ok(session)
}

fn check(opts: &Options) -> Result<(), Box<dyn Error>> {
    let session = build_session(opts)?;
    let heuristic =
        if opts.heuristic == 'e' { Heuristic::Enumeration } else { Heuristic::Iterative };
    if opts.markdown {
        let outcome = session.explore(heuristic)?;
        print!("{}", report::markdown(&session, &outcome));
        return Ok(());
    }
    print!("{}", report::environment(&session));
    let outcome = session.explore(heuristic)?;
    println!(
        "heuristic {heuristic}: {} trials, {} feasible, {:.2?}",
        outcome.trials, outcome.feasible_trials, outcome.elapsed
    );
    match outcome.feasible.first() {
        Some(best) => {
            println!("\n{}", report::guideline(best, session.library()));
        }
        None => {
            println!("\nINFEASIBLE — no combination of predicted implementations works.");
            println!("Try more chips/partitions, a larger package, or weaker constraints.");
        }
    }
    Ok(())
}

fn dot(argv: &[String]) -> Result<(), Box<dyn Error>> {
    let path = argv
        .first()
        .ok_or_else(|| ArgError("dot needs a <spec.cbs> argument".into()))?;
    let dfg = load_spec(path)?;
    print!("{}", chop_dfg::dot::to_dot(&dfg));
    Ok(())
}

fn tasks(opts: &Options) -> Result<(), Box<dyn Error>> {
    let session = build_session(opts)?;
    print!("{}", report::task_graph_dot(session.partitioning()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_spec(name: &str, body: &str) -> String {
        let dir = std::env::temp_dir().join("chop-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn argv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn help_and_format_print() {
        assert!(run(&argv(&["help"])).is_ok());
        assert!(run(&argv(&["format"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["bogus"])).is_err());
    }

    #[test]
    fn check_runs_on_simple_spec() {
        let path = write_spec(
            "simple.cbs",
            "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n",
        );
        assert!(run(&argv(&["check", &path])).is_ok());
        assert!(run(&argv(&["check", &path, "--multi-cycle", "--heuristic", "e"])).is_ok());
    }

    #[test]
    fn dot_and_tasks_run() {
        let path = write_spec("dot.cbs", "a = input 8\ny = output a\n");
        assert!(run(&argv(&["dot", &path])).is_ok());
        assert!(run(&argv(&["tasks", &path, "--partitions", "1"])).is_ok());
    }

    #[test]
    fn memory_spec_defaults_to_off_the_shelf() {
        let path = write_spec(
            "mem.cbs",
            "a = input 16\nr = read M0 a\np = mul r a\ny = output p\n",
        );
        assert!(run(&argv(&["check", &path, "--multi-cycle"])).is_ok());
        assert!(run(&argv(&["check", &path, "--multi-cycle", "--on-chip-memory", "M0:0"]))
            .is_ok());
    }

    #[test]
    fn markdown_report_flag_accepted() {
        let path = write_spec(
            "md.cbs",
            "a = input 16\nb = input 16\np = mul a b\ny = output p\n",
        );
        assert!(run(&argv(&["check", &path, "--multi-cycle", "--markdown"])).is_ok());
    }

    #[test]
    fn shipped_spec_files_all_check() {
        let specs = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../specs");
        let mut found = 0;
        for entry in std::fs::read_dir(specs).expect("specs/ directory ships with the repo") {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "cbs") {
                found += 1;
                let p = path.to_string_lossy().into_owned();
                assert!(
                    run(&argv(&["check", &p, "--multi-cycle", "--partitions", "2"])).is_ok(),
                    "{p} failed"
                );
                assert!(run(&argv(&["dot", &p])).is_ok());
            }
        }
        assert!(found >= 3, "expected the shipped spec files, found {found}");
    }

    #[test]
    fn missing_file_reports_cleanly() {
        let err = run(&argv(&["check", "/nonexistent/x.cbs"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn parse_error_reports_line() {
        let path = write_spec("bad.cbs", "a = input 16\nb = add a ghost\n");
        let err = run(&argv(&["check", &path])).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
