//! Minimal POSIX signal hooks for the graceful drain of `chop serve`
//! (the approved dependency list has no signal-handling crate, so this
//! talks to libc's `signal(2)` directly).
//!
//! Signal handlers may only do async-signal-safe work, so the handler
//! here just flips a process-wide atomic; [`serve`](crate::service::serve)
//! polls it from an ordinary thread and trips the server's shutdown
//! handle, which drains in-flight work and flushes the journal before
//! the process exits 0.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on SIGINT/SIGTERM, read by the drain watcher.
static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

type Handler = extern "C" fn(i32);

extern "C" {
    /// `signal(2)`; the return value (the previous disposition) is a
    /// function pointer we never call, so it is left as a bare word.
    fn signal(signum: i32, handler: Handler) -> usize;
}

extern "C" fn on_terminate(_signum: i32) {
    TERMINATION_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handlers. Idempotent.
pub fn install() {
    // SAFETY: `on_terminate` only performs an atomic store, which is
    // async-signal-safe, and the handler lives for the whole process.
    unsafe {
        signal(SIGINT, on_terminate);
        signal(SIGTERM, on_terminate);
    }
}

/// Whether a termination signal has arrived since [`install`].
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::SeqCst)
}
