//! The `chop serve`, `chop router` and `chop client` subcommands.

use std::error::Error;

use chop_core::prelude::{Heuristic, MoveKind};
use chop_service::{
    BackendSpec, Client, ExploreParams, OpenParams, OptimizeParams, OptimizeSummary, Request,
    Response, RetryPolicy, Router, RouterConfig, RunSummary, ServeConfig, Server,
    DEFAULT_CONNECT_TIMEOUT,
};

use crate::args::{ArgError, RouterOptions, ServeOptions};
use crate::commands::RunStatus;

/// Runs the partitioning service until a client sends `shutdown` (or,
/// on unix, SIGINT/SIGTERM arrives — same graceful drain, exit 0).
///
/// # Errors
///
/// Returns bind/listener failures; per-request failures are answered on
/// the wire.
pub fn serve(opts: &ServeOptions) -> Result<RunStatus, Box<dyn Error>> {
    let jobs = opts.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    });
    let config = ServeConfig {
        workers: opts.workers,
        max_inflight: opts.max_inflight,
        jobs,
        state_dir: opts.state_dir.as_ref().map(std::path::PathBuf::from),
        snapshot_every: opts.snapshot_every,
        standby: opts.standby,
        replicate_to: opts.replicate_to.clone(),
        peer: opts.peer.clone(),
        max_connections: opts.max_connections,
        idle_timeout_ms: opts.idle_timeout_ms,
        max_requests_per_sec: opts.max_requests_per_sec,
        cache_shards: opts.cache_shards,
        cache_snapshot: opts.cache_snapshot.as_ref().map(std::path::PathBuf::from),
        cache_snapshot_every: opts.cache_snapshot_every,
    };
    let server = Server::bind(opts.addr.as_str(), config)?;
    // The tests (and scripts) parse this line to discover an ephemeral
    // port; keep its shape stable (anything extra goes on later lines).
    println!(
        "chop-service listening on {} (protocol v{})",
        server.local_addr()?,
        chop_service::PROTOCOL_VERSION
    );
    let manager = server.manager();
    if manager.is_fenced() {
        println!("fenced standby: a newer primary superseded this node; resyncing");
    } else if manager.is_standby() {
        println!("warm standby: refusing direct mutations until promoted");
    }
    if let Some(standby) = opts.replicate_to.as_deref() {
        println!("replicating committed records to {standby}");
    }
    if let Some(peer) = opts.peer.as_deref() {
        println!("replication peer: {peer}");
    }
    // Promotions/demotions land on stdout next to the banner so scripts
    // (and the chaos suite) can watch role transitions live.
    manager.set_role_change_hook(|line| println!("{line}"));
    if let Some(report) = server.recovery_report() {
        println!(
            "recovered {} session(s) from the journal ({} record(s) replayed, {} skipped)",
            report.sessions_restored, report.records_replayed, report.records_skipped
        );
    }
    if let Some(warm) = server.cache_warm_report() {
        println!(
            "warm-started prediction cache: {} entr{} restored{}",
            warm.entries,
            if warm.entries == 1 { "y" } else { "ies" },
            if warm.truncated { " (corrupt tail dropped)" } else { "" }
        );
    }
    #[cfg(unix)]
    {
        crate::signals::install();
        let handle = server.shutdown_handle();
        // Detached on purpose: it either trips the drain or dies with
        // the process after `run` returns.
        std::thread::spawn(move || {
            while !crate::signals::termination_requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            handle.store(true, std::sync::atomic::Ordering::SeqCst);
        });
    }
    server.run()?;
    println!("chop-service drained, exiting");
    Ok(RunStatus::Feasible)
}

/// Runs the consistent-hashing proxy over replicated backend pairs until
/// a client sends `shutdown` (or a termination signal arrives).
///
/// # Errors
///
/// Returns bind/listener failures and malformed `--backend` specs;
/// per-request failures are answered on the wire.
pub fn router(opts: &RouterOptions) -> Result<RunStatus, Box<dyn Error>> {
    let pairs = opts
        .backends
        .iter()
        .map(|spec| BackendSpec::parse(spec))
        .collect::<Result<Vec<_>, _>>()
        .map_err(ArgError)?;
    let config = RouterConfig {
        pairs,
        health_interval: std::time::Duration::from_millis(opts.health_interval_ms),
    };
    let router = Router::bind(opts.addr.as_str(), config)?;
    // Same contract as the serve banner: tests parse this first line.
    println!(
        "chop-router listening on {} (protocol v{})",
        router.local_addr()?,
        chop_service::PROTOCOL_VERSION
    );
    for backend in &opts.backends {
        println!("backend pair: {backend}");
    }
    #[cfg(unix)]
    {
        crate::signals::install();
        let handle = router.shutdown_handle();
        std::thread::spawn(move || {
            while !crate::signals::termination_requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            // Tripping the gate wakes the health loop and any retry
            // backoff mid-sleep; the accept loop notices within a poll.
            handle.trigger();
        });
    }
    router.run()?;
    println!("chop-router drained, exiting");
    Ok(RunStatus::Feasible)
}

/// Parses and runs one `chop client <addr> <command…>` invocation.
///
/// # Errors
///
/// Argument errors, connection failures, and typed server errors (all
/// exit 1); an `explore` reply additionally maps feasibility onto the
/// standard exit-code table.
pub fn client(argv: &[String]) -> Result<RunStatus, Box<dyn Error>> {
    let (retry_budget_ms, argv) = parse_client_retry_flags(argv)?;
    let [addr, command, rest @ ..] = argv else {
        return Err(Box::new(ArgError("client needs <addr> <command>".into())));
    };
    let request = parse_client_request(command, rest)?;
    // `<addr>` may be a comma-separated node list: connect to the first
    // live node, fail over to the next on transport errors while
    // retrying.
    let nodes: Vec<String> =
        addr.split(',').map(str::trim).filter(|a| !a.is_empty()).map(str::to_owned).collect();
    let mut client = Client::connect_nodes(&nodes, DEFAULT_CONNECT_TIMEOUT)?;
    // Both paths follow typed `standby`/`fenced` refusals to the named
    // primary; a zero budget keeps the no-retry path at one attempt per
    // node while still walking redirects.
    let response = match retry_budget_ms {
        None => client.request_following_redirects(
            &request,
            None,
            &RetryPolicy::with_budget_ms(0),
        )?,
        Some(ms) => {
            // Mutations get an automatic idempotency tag so a retry over
            // a transport failure is answered from the server's dedup
            // window instead of being applied twice.
            let req_id = request.is_mutation().then(|| {
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.subsec_nanos());
                format!("cli-{}-{nanos}", std::process::id())
            });
            client.request_following_redirects(
                &request,
                req_id.as_deref(),
                &RetryPolicy::with_budget_ms(ms),
            )?
        }
    };
    render_response(&response)
}

/// Strips leading `--retry` / `--retry-ms <N>` flags (before `<addr>`),
/// returning the retry budget (if any) and the remaining argv.
fn parse_client_retry_flags(mut argv: &[String]) -> Result<(Option<u64>, &[String]), ArgError> {
    let mut budget = None;
    loop {
        match argv {
            [flag, rest @ ..] if flag == "--retry" => {
                budget = Some(2_000);
                argv = rest;
            }
            [flag, ms, rest @ ..] if flag == "--retry-ms" => {
                budget =
                    Some(ms.parse().map_err(|_| ArgError("bad value for --retry-ms".into()))?);
                argv = rest;
            }
            [flag] if flag == "--retry-ms" => {
                return Err(ArgError("--retry-ms needs a value".into()));
            }
            _ => return Ok((budget, argv)),
        }
    }
}

/// Builds the wire request for one client command.
fn parse_client_request(command: &str, rest: &[String]) -> Result<Request, Box<dyn Error>> {
    match command {
        "ping" => Ok(Request::Ping),
        "open" => {
            let [session, spec_path, flags @ ..] = rest else {
                return Err(Box::new(ArgError("open needs <session> <spec.cbs>".into())));
            };
            let spec = std::fs::read_to_string(spec_path)
                .map_err(|e| ArgError(format!("cannot read {spec_path:?}: {e}")))?;
            let mut params = OpenParams { spec, ..OpenParams::default() };
            let mut it = flags.iter();
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<String, ArgError> {
                    it.next().cloned().ok_or_else(|| ArgError(format!("{flag} needs a value")))
                };
                match arg.as_str() {
                    "--partitions" | "-k" => params.partitions = parse_num(arg, &value(arg)?)?,
                    "--chips" => params.chips = Some(parse_num(arg, &value(arg)?)?),
                    "--package" => params.package_pins = parse_num(arg, &value(arg)?)?,
                    "--perf" => params.performance_ns = parse_num(arg, &value(arg)?)?,
                    "--delay" => params.delay_ns = parse_num(arg, &value(arg)?)?,
                    "--single-cycle" => params.multi_cycle = false,
                    other => {
                        return Err(Box::new(ArgError(format!("unknown open option {other}"))))
                    }
                }
            }
            Ok(Request::Open { session: session.clone(), params })
        }
        "explore" => {
            let [session, flags @ ..] = rest else {
                return Err(Box::new(ArgError("explore needs <session>".into())));
            };
            let mut params = ExploreParams::default();
            let mut it = flags.iter();
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<String, ArgError> {
                    it.next().cloned().ok_or_else(|| ArgError(format!("{flag} needs a value")))
                };
                match arg.as_str() {
                    "--heuristic" => {
                        params.heuristic = match value(arg)?.as_str() {
                            "e" | "E" => Heuristic::Enumeration,
                            "i" | "I" => Heuristic::Iterative,
                            _ => {
                                return Err(Box::new(ArgError(
                                    "--heuristic must be e or i".into(),
                                )))
                            }
                        };
                    }
                    "--deadline" => {
                        params.budget.deadline_ms = Some(parse_num(arg, &value(arg)?)?);
                    }
                    "--max-trials" => {
                        params.budget.max_trials = Some(parse_num(arg, &value(arg)?)?);
                    }
                    "--jobs" | "-j" => params.jobs = Some(parse_num(arg, &value(arg)?)?),
                    other => {
                        return Err(Box::new(ArgError(format!(
                            "unknown explore option {other}"
                        ))))
                    }
                }
            }
            Ok(Request::Explore { session: session.clone(), params })
        }
        "optimize" => {
            let [session, flags @ ..] = rest else {
                return Err(Box::new(ArgError("optimize needs <session>".into())));
            };
            let mut params = OptimizeParams::default();
            let mut it = flags.iter();
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<String, ArgError> {
                    it.next().cloned().ok_or_else(|| ArgError(format!("{flag} needs a value")))
                };
                match arg.as_str() {
                    "--seed" => params.seed = parse_num(arg, &value(arg)?)?,
                    "--heuristic" => {
                        params.heuristic = match value(arg)?.as_str() {
                            "e" | "E" => Heuristic::Enumeration,
                            "i" | "I" => Heuristic::Iterative,
                            _ => {
                                return Err(Box::new(ArgError(
                                    "--heuristic must be e or i".into(),
                                )))
                            }
                        };
                    }
                    "--deadline" => {
                        params.budget.deadline_ms = Some(parse_num(arg, &value(arg)?)?);
                    }
                    "--max-moves" => {
                        params.budget.max_trials = Some(parse_num(arg, &value(arg)?)?);
                    }
                    "--kicks" => params.kicks = Some(parse_num(arg, &value(arg)?)?),
                    "--kick-moves" => params.kick_moves = Some(parse_num(arg, &value(arg)?)?),
                    "--jobs" | "-j" => params.jobs = Some(parse_num(arg, &value(arg)?)?),
                    "--pin" => params.pinned.push(parse_num("--pin", &value(arg)?)?),
                    "--group" => {
                        let nodes = value(arg)?
                            .split(',')
                            .map(|n| parse_num("--group", n.trim()))
                            .collect::<Result<Vec<u32>, _>>()?;
                        if nodes.len() < 2 {
                            return Err(Box::new(ArgError(
                                "--group wants at least two node indices".into(),
                            )));
                        }
                        params.groups.push(nodes);
                    }
                    "--exclude" => {
                        let v = value(arg)?;
                        let (a, b) = v
                            .split_once(':')
                            .ok_or_else(|| ArgError("--exclude wants A:B".into()))?;
                        params
                            .exclusions
                            .push((parse_num("--exclude", a)?, parse_num("--exclude", b)?));
                    }
                    other => {
                        return Err(Box::new(ArgError(format!(
                            "unknown optimize option {other}"
                        ))))
                    }
                }
            }
            Ok(Request::Optimize { session: session.clone(), params })
        }
        "apply-moves" => {
            let [session, spec] = rest else {
                return Err(Box::new(ArgError(
                    "apply-moves needs <session> <NODE:PART[,NODE:PART...]>".into(),
                )));
            };
            let moves = spec
                .split(',')
                .map(|pair| {
                    let (node, to) = pair
                        .split_once(':')
                        .ok_or_else(|| ArgError("apply-moves wants NODE:PART pairs".into()))?;
                    Ok((parse_num("NODE", node.trim())?, parse_num("PART", to.trim())?))
                })
                .collect::<Result<Vec<(u32, u32)>, ArgError>>()?;
            Ok(Request::ApplyMoves { session: session.clone(), moves })
        }
        "repartition" => {
            let [session, spec] = rest else {
                return Err(Box::new(ArgError(
                    "repartition needs <session> <NODE:PARTITION>".into(),
                )));
            };
            let (node, to) = spec
                .split_once(':')
                .ok_or_else(|| ArgError("repartition wants NODE:PARTITION".into()))?;
            Ok(Request::Repartition {
                session: session.clone(),
                node: parse_num("NODE", node)?,
                to: parse_num("PARTITION", to)?,
            })
        }
        "set-constraints" => {
            let [session, flags @ ..] = rest else {
                return Err(Box::new(ArgError(
                    "set-constraints needs <session> --perf <ns> --delay <ns>".into(),
                )));
            };
            let (mut perf, mut delay) = (None, None);
            let mut it = flags.iter();
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| -> Result<String, ArgError> {
                    it.next().cloned().ok_or_else(|| ArgError(format!("{flag} needs a value")))
                };
                match arg.as_str() {
                    "--perf" => perf = Some(parse_num(arg, &value(arg)?)?),
                    "--delay" => delay = Some(parse_num(arg, &value(arg)?)?),
                    other => {
                        return Err(Box::new(ArgError(format!(
                            "unknown set-constraints option {other}"
                        ))))
                    }
                }
            }
            let (Some(performance_ns), Some(delay_ns)) = (perf, delay) else {
                return Err(Box::new(ArgError(
                    "set-constraints needs both --perf and --delay".into(),
                )));
            };
            Ok(Request::SetConstraints { session: session.clone(), performance_ns, delay_ns })
        }
        "stats" => match rest {
            [] => Ok(Request::Stats { session: None }),
            [session] => Ok(Request::Stats { session: Some(session.clone()) }),
            _ => Err(Box::new(ArgError("stats takes at most one <session>".into()))),
        },
        "close" => match rest {
            [session] => Ok(Request::Close { session: session.clone() }),
            _ => Err(Box::new(ArgError("close needs <session>".into()))),
        },
        "promote" => Ok(Request::Promote),
        "add-pair" => match rest {
            [pair] => Ok(Request::AddPair { pair: pair.clone() }),
            _ => Err(Box::new(ArgError("add-pair needs <primary[,standby]>".into()))),
        },
        "remove-pair" => match rest {
            [pair] => Ok(Request::RemovePair { pair: pair.clone() }),
            _ => Err(Box::new(ArgError("remove-pair needs <label>".into()))),
        },
        "router-status" => match rest {
            [] => Ok(Request::RouterStatus),
            _ => Err(Box::new(ArgError("router-status takes no arguments".into()))),
        },
        "shutdown" => Ok(Request::Shutdown),
        other => Err(Box::new(ArgError(format!("unknown client command {other:?}")))),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, ArgError> {
    text.parse().map_err(|_| ArgError(format!("bad value for {flag}")))
}

/// Prints a response and maps it to an exit status. Typed server errors
/// become process errors (exit 1); an `explored` reply reuses the
/// feasible/infeasible/truncated exit-code table.
fn render_response(response: &Response) -> Result<RunStatus, Box<dyn Error>> {
    match response {
        Response::Pong { version, role, epoch, peer } => {
            match role.as_deref() {
                Some(role) => {
                    let peer = peer.as_deref().map_or(String::new(), |p| format!(", peer {p}"));
                    println!("pong (protocol v{version}, {role} at epoch {epoch}{peer})");
                }
                None => println!("pong (protocol v{version})"),
            }
            Ok(RunStatus::Feasible)
        }
        Response::Opened { session, partitions } => {
            println!("opened session {session:?} with {partitions} partition(s)");
            Ok(RunStatus::Feasible)
        }
        Response::Explored { session, run } => {
            print_run(session, run);
            Ok(run_status(run))
        }
        Response::Optimized { session, result } => {
            print_optimize(session, result);
            Ok(if result.completion.is_truncated() {
                RunStatus::Truncated
            } else if result.feasible {
                RunStatus::Feasible
            } else {
                RunStatus::Infeasible
            })
        }
        Response::MovesApplied { session, moves } => {
            println!("session {session:?}: {moves} move(s) applied");
            Ok(RunStatus::Feasible)
        }
        Response::Repartitioned { session, node, to } => {
            println!("session {session:?}: node {node} moved to partition {to}");
            Ok(RunStatus::Feasible)
        }
        Response::ConstraintsSet { session, performance_ns, delay_ns } => {
            println!(
                "session {session:?}: constraints set (perf {performance_ns} ns, \
                 delay {delay_ns} ns)"
            );
            Ok(RunStatus::Feasible)
        }
        Response::Stats { sessions, cache, shard_entries, last_run } => {
            println!("sessions ({}): {}", sessions.len(), sessions.join(", "));
            println!(
                "shared cache: {} hit(s), {} miss(es), {} eviction(s), {} entries (~{} B)",
                cache.hits, cache.misses, cache.evictions, cache.entries, cache.bytes
            );
            if !shard_entries.is_empty() {
                let rendered: Vec<String> = shard_entries.iter().map(u64::to_string).collect();
                println!("cache shards ({}): [{}]", shard_entries.len(), rendered.join(", "));
            }
            if let Some(run) = last_run {
                print_run("last run", run);
            }
            Ok(RunStatus::Feasible)
        }
        Response::Closed { session } => {
            println!("closed session {session:?}");
            Ok(RunStatus::Feasible)
        }
        Response::ShuttingDown => {
            println!("server draining");
            Ok(RunStatus::Feasible)
        }
        Response::Busy { inflight, max_inflight, retry_after_ms } => {
            Err(Box::new(ArgError(format!(
                "server busy ({inflight}/{max_inflight} explorations in flight), \
                 retry in {retry_after_ms} ms (or pass --retry)"
            ))))
        }
        Response::Promoted { sessions, epoch } => {
            println!("promoted to primary at epoch {epoch} ({sessions} session(s) live)");
            Ok(RunStatus::Feasible)
        }
        Response::PairAdded { pairs } => {
            println!("pair added; ring now ({}): {}", pairs.len(), pairs.join(", "));
            Ok(RunStatus::Feasible)
        }
        Response::PairRemoved { pairs } => {
            println!("pair removed; ring now ({}): {}", pairs.len(), pairs.join(", "));
            Ok(RunStatus::Feasible)
        }
        Response::RouterStatus { pairs } => {
            println!("router pairs ({}):", pairs.len());
            for line in pairs {
                println!("  {line}");
            }
            Ok(RunStatus::Feasible)
        }
        Response::Exported { session, records } => {
            println!("exported session {session:?} ({} record(s))", records.len());
            for record in records {
                println!("{record}");
            }
            Ok(RunStatus::Feasible)
        }
        Response::Imported { session, records } => {
            println!("imported session {session:?} ({records} record(s) applied)");
            Ok(RunStatus::Feasible)
        }
        Response::ReplAck { seq } => {
            // Only replication streams see acks; printed for completeness.
            println!("replication ack through seq {seq}");
            Ok(RunStatus::Feasible)
        }
        Response::Error(e) => Err(Box::new(e.clone())),
    }
}

fn print_run(label: &str, run: &RunSummary) {
    println!(
        "{label}: heuristic {} — {} trials, {} feasible trials, {} implementation(s), \
         {} ({}{:.2} ms)",
        run.heuristic,
        run.trials,
        run.feasible_trials,
        run.feasible,
        run.completion,
        if run.degraded { "degraded, " } else { "" },
        run.elapsed_ms,
    );
    println!(
        "  {} predictor call(s), {} cache hit(s), {} miss(es)",
        run.predictor_calls, run.cache_hits, run.cache_misses
    );
    println!(
        "  {} subtree(s) skipped, {} combination(s) never visited",
        run.subtrees_skipped, run.combinations_skipped
    );
    println!("  digest {}", run.digest);
}

fn print_optimize(session: &str, result: &OptimizeSummary) {
    println!(
        "session {session:?}: {} move(s) accepted over {} pass(es), {} kick(s), \
         {} evaluation(s), {}",
        result.moves.len(),
        result.passes,
        result.kicks,
        result.evaluations,
        result.completion,
    );
    println!("  score: {:.3} -> {:.3}", result.initial_score, result.final_score);
    for mv in &result.moves {
        let nodes = mv.nodes.iter().map(ToString::to_string).collect::<Vec<_>>().join("+");
        let kind = match mv.kind {
            MoveKind::Gain => "gain",
            MoveKind::Kick => "kick",
        };
        println!("  pass {} {kind}: node {nodes} {} -> {}", mv.pass, mv.from, mv.to);
    }
    print_run("final state", &result.run);
    println!("  optimize digest {}", result.digest);
}

fn run_status(run: &RunSummary) -> RunStatus {
    if run.completion.is_truncated() {
        RunStatus::Truncated
    } else if run.feasible == 0 {
        RunStatus::Infeasible
    } else {
        RunStatus::Feasible
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn client_request_parsing_covers_every_command() {
        assert_eq!(parse_client_request("ping", &[]).unwrap(), Request::Ping);
        assert_eq!(
            parse_client_request("stats", &[]).unwrap(),
            Request::Stats { session: None }
        );
        assert_eq!(
            parse_client_request("stats", &s(&["a"])).unwrap(),
            Request::Stats { session: Some("a".into()) }
        );
        assert_eq!(
            parse_client_request("close", &s(&["a"])).unwrap(),
            Request::Close { session: "a".into() }
        );
        assert_eq!(parse_client_request("shutdown", &[]).unwrap(), Request::Shutdown);
        assert_eq!(parse_client_request("promote", &[]).unwrap(), Request::Promote);
        assert_eq!(
            parse_client_request("add-pair", &s(&["h1:1,h2:2"])).unwrap(),
            Request::AddPair { pair: "h1:1,h2:2".into() }
        );
        assert_eq!(
            parse_client_request("remove-pair", &s(&["h1:1"])).unwrap(),
            Request::RemovePair { pair: "h1:1".into() }
        );
        assert_eq!(parse_client_request("router-status", &[]).unwrap(), Request::RouterStatus);
        assert_eq!(
            parse_client_request("repartition", &s(&["a", "3:0"])).unwrap(),
            Request::Repartition { session: "a".into(), node: 3, to: 0 }
        );
        let req = parse_client_request(
            "explore",
            &s(&["a", "--heuristic", "e", "--deadline", "250", "--jobs", "2"]),
        )
        .unwrap();
        let Request::Explore { params, .. } = req else { panic!() };
        assert_eq!(params.heuristic, Heuristic::Enumeration);
        assert_eq!(params.budget.deadline_ms, Some(250));
        assert_eq!(params.jobs, Some(2));
        let req = parse_client_request(
            "optimize",
            &s(&[
                "a",
                "--seed",
                "9",
                "--max-moves",
                "64",
                "--kicks",
                "1",
                "--pin",
                "2",
                "--group",
                "3,4",
                "--exclude",
                "5:6",
            ]),
        )
        .unwrap();
        let Request::Optimize { params, .. } = req else { panic!() };
        assert_eq!(params.seed, 9);
        assert_eq!(params.budget.max_trials, Some(64));
        assert_eq!(params.kicks, Some(1));
        assert_eq!(params.pinned, vec![2]);
        assert_eq!(params.groups, vec![vec![3, 4]]);
        assert_eq!(params.exclusions, vec![(5, 6)]);
        assert_eq!(
            parse_client_request("apply-moves", &s(&["a", "3:0,2:1"])).unwrap(),
            Request::ApplyMoves { session: "a".into(), moves: vec![(3, 0), (2, 1)] }
        );
    }

    #[test]
    fn set_constraints_command_parses() {
        assert_eq!(
            parse_client_request(
                "set-constraints",
                &s(&["a", "--perf", "40000", "--delay", "35000"]),
            )
            .unwrap(),
            Request::SetConstraints {
                session: "a".into(),
                performance_ns: 40_000.0,
                delay_ns: 35_000.0
            }
        );
        assert!(parse_client_request("set-constraints", &s(&["a", "--perf", "1"])).is_err());
        assert!(parse_client_request("set-constraints", &s(&["a", "--bogus", "1"])).is_err());
        assert!(parse_client_request("set-constraints", &[]).is_err());
    }

    #[test]
    fn retry_flags_strip_off_the_front() {
        let argv = s(&["--retry", "addr", "ping"]);
        let (budget, rest) = parse_client_retry_flags(&argv).unwrap();
        assert_eq!(budget, Some(2_000));
        assert_eq!(rest, &argv[1..]);

        let argv = s(&["--retry-ms", "150", "addr", "ping"]);
        let (budget, rest) = parse_client_retry_flags(&argv).unwrap();
        assert_eq!(budget, Some(150));
        assert_eq!(rest, &argv[2..]);

        let argv = s(&["addr", "ping"]);
        let (budget, rest) = parse_client_retry_flags(&argv).unwrap();
        assert_eq!(budget, None);
        assert_eq!(rest, &argv[..]);

        assert!(parse_client_retry_flags(&s(&["--retry-ms"])).is_err());
        assert!(parse_client_retry_flags(&s(&["--retry-ms", "soon", "addr"])).is_err());
    }

    #[test]
    fn client_request_parsing_rejects_nonsense() {
        assert!(parse_client_request("frobnicate", &[]).is_err());
        assert!(parse_client_request("repartition", &s(&["a", "3"])).is_err());
        assert!(parse_client_request("explore", &s(&["a", "--heuristic", "z"])).is_err());
        assert!(parse_client_request("open", &s(&["a"])).is_err());
        assert!(parse_client_request("open", &s(&["a", "/nonexistent/x.cbs"])).is_err());
        assert!(parse_client_request("close", &[]).is_err());
        assert!(parse_client_request("optimize", &[]).is_err());
        assert!(parse_client_request("optimize", &s(&["a", "--seed", "entropy"])).is_err());
        assert!(parse_client_request("optimize", &s(&["a", "--group", "1"])).is_err());
        assert!(parse_client_request("apply-moves", &s(&["a", "3"])).is_err());
        assert!(parse_client_request("add-pair", &[]).is_err());
        assert!(parse_client_request("remove-pair", &[]).is_err());
        assert!(parse_client_request("router-status", &s(&["x"])).is_err());
    }

    #[test]
    fn explored_responses_map_to_the_exit_code_table() {
        let run = |feasible, completion| RunSummary {
            heuristic: Heuristic::Iterative,
            digest: String::new(),
            trials: 1,
            feasible_trials: feasible,
            feasible,
            completion,
            degraded: false,
            elapsed_ms: 0.0,
            predictor_calls: 0,
            cache_hits: 0,
            cache_misses: 0,
            subtrees_skipped: 0,
            combinations_skipped: 0,
        };
        use chop_core::prelude::Completion;
        assert_eq!(run_status(&run(1, Completion::Complete)), RunStatus::Feasible);
        assert_eq!(run_status(&run(0, Completion::Complete)), RunStatus::Infeasible);
        assert_eq!(run_status(&run(1, Completion::TruncatedDeadline)), RunStatus::Truncated);
    }
}
