//! End-to-end test of the `chop serve` / `chop client` binaries: a real
//! server process on an ephemeral port, driven by real client processes,
//! finishing with a graceful drain and exit code 0.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

const SPEC: &str = "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n";

fn chop() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chop"))
}

/// Spawns `chop serve` with the given extra flags and returns the child
/// plus the address parsed from the banner line and its stdout reader.
fn spawn_server(
    extra: &[&str],
) -> (std::process::Child, String, BufReader<std::process::ChildStdout>) {
    // stderr → null: if an assertion below panics, the orphaned server
    // would otherwise keep the test harness's stderr pipe open and hang
    // the whole `cargo test` pipeline instead of failing it.
    let mut server = chop()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2", "--jobs", "1"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn chop serve");
    let mut stdout = BufReader::new(server.stdout.take().expect("server stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unparseable banner: {banner:?}"))
        .to_owned();
    (server, addr, stdout)
}

/// Runs `chop client <addr> <args…>`, asserting it exits successfully,
/// and returns its stdout.
fn client_ok(addr: &str, args: &[&str]) -> String {
    let output = chop().arg("client").arg(addr).args(args).output().expect("spawn chop client");
    assert!(
        output.status.success(),
        "chop client {addr} {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

#[test]
fn serve_and_client_binaries_run_a_full_session() {
    let spec_path =
        std::env::temp_dir().join(format!("chop-serve-cli-{}.cbs", std::process::id()));
    std::fs::write(&spec_path, SPEC).expect("write spec");

    let mut server = chop()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2", "--jobs", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn chop serve");

    // The first stdout line has a stable shape:
    //   chop-service listening on 127.0.0.1:PORT (protocol vN)
    let mut stdout = BufReader::new(server.stdout.take().expect("server stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unparseable banner: {banner:?}"))
        .to_owned();

    assert!(client_ok(&addr, &["ping"]).contains("pong"));

    let spec = spec_path.to_str().expect("utf-8 temp path");
    let opened = client_ok(&addr, &["open", "demo", spec, "--partitions", "2", "--chips", "2"]);
    assert!(opened.contains("opened session"), "{opened}");

    let explored = client_ok(&addr, &["explore", "demo", "--heuristic", "i"]);
    assert!(explored.contains("digest"), "{explored}");

    let moved = client_ok(&addr, &["repartition", "demo", "2:0"]);
    assert!(moved.contains("moved to partition 0"), "{moved}");

    let stats = client_ok(&addr, &["stats", "demo"]);
    assert!(stats.contains("shared cache"), "{stats}");
    assert!(stats.contains("demo"), "{stats}");

    assert!(client_ok(&addr, &["close", "demo"]).contains("closed"));
    assert!(client_ok(&addr, &["shutdown"]).contains("draining"));

    // The server must drain and exit 0.
    let status = server.wait().expect("wait for server");
    assert!(status.success(), "server exited with {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).expect("drain stdout");
    assert!(rest.contains("drained"), "{rest}");

    let _ = std::fs::remove_file(&spec_path);
}

#[test]
fn client_reports_typed_errors_with_exit_code_1() {
    let mut server = chop()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn chop serve");
    let mut stdout = BufReader::new(server.stdout.take().expect("server stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner.split_whitespace().nth(3).expect("addr in banner").to_owned();

    let output =
        chop().args(["client", &addr, "explore", "ghost"]).output().expect("spawn chop client");
    assert_eq!(output.status.code(), Some(1), "unknown session must exit 1");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown_session"), "{stderr}");

    assert!(client_ok(&addr, &["shutdown"]).contains("draining"));
    assert!(server.wait().expect("wait").success());
}

/// SIGTERM must be the same graceful drain as a wire `shutdown`: exit
/// code 0 and the drained farewell on stdout (journal flushed, nothing
/// killed mid-write).
#[cfg(unix)]
#[test]
fn sigterm_drains_the_server_gracefully() {
    let (mut server, addr, mut stdout) = spawn_server(&[]);
    assert!(client_ok(&addr, &["ping"]).contains("pong"));

    let term = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");

    let status = server.wait().expect("wait for server");
    assert!(status.success(), "SIGTERM must drain to exit 0, got {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).expect("drain stdout");
    assert!(rest.contains("drained"), "{rest}");
}

/// The restart-recovery smoke from the issue: open + repartition against
/// a journaled server, SIGKILL it (no drain, no warning), restart on the
/// same `--state-dir`, and the recovered session must explore to the
/// byte-identical digest — without being reopened.
#[test]
fn kill_nine_then_restart_recovers_sessions_and_digests() {
    let dir = std::env::temp_dir().join(format!("chop-serve-cli-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let state_dir = dir.to_str().expect("utf-8 temp path").to_owned();
    let spec_path = dir.with_extension("cbs");
    std::fs::write(&spec_path, SPEC).expect("write spec");
    let spec = spec_path.to_str().expect("utf-8 temp path");

    let (mut server, addr, _stdout) = spawn_server(&["--state-dir", &state_dir]);
    // Retry flags go *before* the address: chop client --retry <addr> …
    let output = chop()
        .args(["client", "--retry", &addr, "open", "demo", spec, "--partitions", "2"])
        .args(["--chips", "2"])
        .output()
        .expect("spawn chop client");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let opened = String::from_utf8_lossy(&output.stdout);
    assert!(opened.contains("opened session"), "{opened}");
    assert!(client_ok(&addr, &["repartition", "demo", "2:0"]).contains("moved"));
    let digest_before =
        digest_line(&client_ok(&addr, &["explore", "demo", "--heuristic", "i"]));

    server.kill().expect("SIGKILL server");
    let _ = server.wait();

    let (mut server, addr, mut stdout) = spawn_server(&["--state-dir", &state_dir]);
    let mut recovery = String::new();
    stdout.read_line(&mut recovery).expect("read recovery report");
    assert!(recovery.contains("recovered 1 session(s)"), "{recovery}");

    // No `open` here: the session must come back from the journal.
    let digest_after = digest_line(&client_ok(&addr, &["explore", "demo", "--heuristic", "i"]));
    assert_eq!(digest_before, digest_after, "recovered digest must be byte-identical");

    assert!(client_ok(&addr, &["shutdown"]).contains("draining"));
    assert!(server.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&spec_path);
}

/// The reactor tuning flags end to end: `--max-connections` refuses the
/// overflow connection with a typed error, `--idle-timeout-ms` reaps the
/// squatters with a typed error + close, and the freed slots readmit a
/// normal client.
#[test]
fn max_connections_and_idle_timeout_flags_govern_the_real_binary() {
    use std::io::Read;

    let (mut server, addr, _stdout) =
        spawn_server(&["--max-connections", "2", "--idle-timeout-ms", "300"]);

    // Two squatters fill the table without ever speaking.
    let squatters: Vec<std::net::TcpStream> = (0..2)
        .map(|i| {
            std::net::TcpStream::connect(&addr).unwrap_or_else(|e| panic!("squatter {i}: {e}"))
        })
        .collect();

    // The third connection is over the cap: the binary's client sees the
    // typed refusal and exits 1.
    let refused = chop().args(["client", &addr, "ping"]).output().expect("spawn chop client");
    assert_eq!(refused.status.code(), Some(1), "over-cap connection must fail");
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert!(stderr.contains("connection limit reached"), "{stderr}");

    // The idle reaper clears the squatters: each reads one typed error
    // line naming the timeout, then EOF.
    for (i, squatter) in squatters.into_iter().enumerate() {
        squatter
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("read timeout");
        let mut notice = String::new();
        let mut reader = BufReader::new(squatter);
        reader.read_line(&mut notice).unwrap_or_else(|e| panic!("squatter {i} notice: {e}"));
        assert!(notice.contains("idle timeout"), "squatter {i} got {notice:?}");
        notice.clear();
        assert_eq!(
            reader.read_line(&mut notice).expect("eof"),
            0,
            "squatter {i} must be closed after the notice"
        );
        let mut rest = Vec::new();
        let _ = reader.into_inner().read_to_end(&mut rest);
    }

    // With the slots freed, a normal client is admitted again (retry
    // rides over the reaper's slight lag in releasing slots).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let ping = chop().args(["client", &addr, "ping"]).output().expect("spawn chop client");
        if ping.status.success() {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "never readmitted after the reap");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    assert!(client_ok(&addr, &["shutdown"]).contains("draining"));
    assert!(server.wait().expect("wait").success());
}

/// Spawns `chop router` and returns the child plus the address parsed
/// from its banner (same shape as the serve banner). The stdout reader
/// must stay alive with the child: dropping it closes the pipe and the
/// router's next println dies of a broken pipe.
fn spawn_router(
    backends: &[&str],
) -> (std::process::Child, String, BufReader<std::process::ChildStdout>) {
    let mut cmd = chop();
    cmd.args(["router", "--addr", "127.0.0.1:0", "--health-interval-ms", "200"]);
    for backend in backends {
        cmd.args(["--backend", backend]);
    }
    let mut router =
        cmd.stdout(Stdio::piped()).stderr(Stdio::null()).spawn().expect("spawn chop router");
    let mut stdout = BufReader::new(router.stdout.take().expect("router stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read router banner");
    let addr = banner
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unparseable router banner: {banner:?}"))
        .to_owned();
    (router, addr, stdout)
}

/// The node-loss drill with real processes: a replicated pair behind
/// `chop router`, the primary killed with SIGKILL, and the client's next
/// explore — addressed to the router, never a backend — must return the
/// digest the primary would have produced, from the promoted standby.
#[test]
fn kill_nine_primary_router_promotes_standby_with_identical_digest() {
    let base = std::env::temp_dir().join(format!("chop-router-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create temp base");
    let primary_dir = base.join("primary").to_str().expect("utf-8").to_owned();
    let standby_dir = base.join("standby").to_str().expect("utf-8").to_owned();
    let spec_path = base.join("spec.cbs");
    std::fs::write(&spec_path, SPEC).expect("write spec");
    let spec = spec_path.to_str().expect("utf-8 temp path");

    let (mut standby, standby_addr, _standby_out) =
        spawn_server(&["--standby", "--state-dir", &standby_dir]);
    let (mut primary, primary_addr, _primary_out) =
        spawn_server(&["--replicate-to", &standby_addr, "--state-dir", &primary_dir]);
    let pair = format!("{primary_addr},{standby_addr}");
    let (mut router, router_addr, _router_out) = spawn_router(&[&pair]);

    // Open through the router (tagged via --retry) and take the healthy
    // baseline digest — served by the primary.
    let output = chop()
        .args(["client", "--retry", &router_addr, "open", "demo", spec, "--partitions", "2"])
        .args(["--chips", "2"])
        .output()
        .expect("spawn chop client");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let digest_before =
        digest_line(&client_ok(&router_addr, &["explore", "demo", "--heuristic", "i"]));

    // Wait until replication has delivered the session to the standby —
    // it serves reads, so its stats are visible while unpromoted.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if client_ok(&standby_addr, &["stats"]).contains("demo") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "standby never saw the session");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // A standby is read-only until promoted — its pong names the role —
    // and its typed refusal carries the primary's address, which `chop
    // client` follows. The proof of the hop: a mutation addressed to the
    // standby is answered by the *primary* (here with `unknown session`,
    // not a blanket standby refusal).
    assert!(client_ok(&standby_addr, &["ping"]).contains("standby"));
    let refused = chop()
        .args(["client", &standby_addr, "repartition", "ghost", "2:0"])
        .output()
        .expect("spawn chop client");
    assert_eq!(refused.status.code(), Some(1), "bad mutation must still fail");
    assert!(
        String::from_utf8_lossy(&refused.stderr).contains("no open session"),
        "{}",
        String::from_utf8_lossy(&refused.stderr)
    );

    // SIGKILL the primary: no drain, no goodbye. The router's next
    // forward hits the dead node, promotes the standby and replays.
    primary.kill().expect("SIGKILL primary");
    let _ = primary.wait();

    let explored = chop()
        .args(["client", "--retry-ms", "20000", &router_addr])
        .args(["explore", "demo", "--heuristic", "i"])
        .output()
        .expect("spawn chop client");
    assert!(
        explored.status.success(),
        "explore after node loss failed: {}",
        String::from_utf8_lossy(&explored.stderr)
    );
    let digest_after = digest_line(&String::from_utf8_lossy(&explored.stdout));
    assert_eq!(
        digest_before, digest_after,
        "promoted standby must explore to the byte-identical digest"
    );

    // The promoted standby now takes mutations like any primary.
    assert!(client_ok(&router_addr, &["repartition", "demo", "2:0"]).contains("moved"));

    assert!(client_ok(&router_addr, &["shutdown"]).contains("draining"));
    assert!(router.wait().expect("wait router").success(), "router must drain to exit 0");
    assert!(client_ok(&standby_addr, &["shutdown"]).contains("draining"));
    assert!(standby.wait().expect("wait standby").success());
    let _ = std::fs::remove_dir_all(&base);
}

/// Extracts the `  digest <hex>` line from `chop client explore` output.
fn digest_line(explored: &str) -> String {
    explored
        .lines()
        .find(|line| line.trim_start().starts_with("digest "))
        .unwrap_or_else(|| panic!("no digest line in {explored:?}"))
        .trim()
        .to_owned()
}
