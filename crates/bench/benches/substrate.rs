//! Hot-path benches of the substrates: list scheduling, urgency
//! scheduling and DFG construction — the costs every CHOP query is built
//! from.

use chop_dfg::benchmarks::{self, random_layered, RandomDfgParams};
use chop_dfg::OpClass;
use chop_sched::force::force_directed_schedule;
use chop_sched::urgency::{ResourceId, SchedulePolicy, TaskGraph};
use chop_sched::{list_schedule, NodeSpec, ResourceMap};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_list_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_schedule");
    let ar = benchmarks::ar_lattice_filter();
    let big = random_layered(
        7,
        RandomDfgParams { layers: 12, width: 16, inputs: 8, mul_percent: 40, bits: 16 },
    );
    let alloc: ResourceMap =
        [(OpClass::Addition, 2), (OpClass::Multiplication, 3)].into_iter().collect();
    for (name, g) in [("ar_filter", &ar), ("layered_192", &big)] {
        let specs = NodeSpec::uniform(g, 3);
        group.bench_function(name, |b| {
            b.iter(|| black_box(list_schedule(g, &specs, &alloc).expect("schedule")));
        });
    }
    group.finish();
}

fn bench_urgency(c: &mut Criterion) {
    let mut group = c.benchmark_group("urgency_schedule");
    // A fan-out/fan-in task pipeline over one contended pin pool.
    let pins = ResourceId::new(0);
    let mut g = TaskGraph::new();
    let src = g.add_task("src", 4, vec![]);
    let mut sinks = Vec::new();
    for i in 0..32 {
        let xfer = g.add_task(format!("x{i}"), 3, vec![(pins, 16)]);
        let work = g.add_task(format!("w{i}"), 10, vec![]);
        g.add_dep(src, xfer).unwrap();
        g.add_dep(xfer, work).unwrap();
        sinks.push(work);
    }
    let done = g.add_task("done", 1, vec![]);
    for s in sinks {
        g.add_dep(s, done).unwrap();
    }
    group.bench_function("fan32_pins64_urgency", |b| {
        b.iter(|| {
            black_box(g.schedule_with(SchedulePolicy::Urgency, &[64]).expect("schedule"))
        });
    });
    group.bench_function("fan32_pins64_fifo", |b| {
        b.iter(|| black_box(g.schedule_with(SchedulePolicy::Fifo, &[64]).expect("schedule")));
    });
    group.finish();
}

fn bench_force_directed(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_directed");
    group.sample_size(10);
    let ar = benchmarks::ar_lattice_filter();
    let specs = NodeSpec::uniform(&ar, 1);
    for budget in [6u64, 10, 16] {
        group.bench_function(format!("ar_latency{budget}"), |b| {
            b.iter(|| black_box(force_directed_schedule(&ar, &specs, budget).expect("fds")));
        });
    }
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.bench_function("ar_filter", |b| {
        b.iter(|| black_box(benchmarks::ar_lattice_filter()));
    });
    group.bench_function("fft_64pt", |b| b.iter(|| black_box(benchmarks::fft_network(6))));
    group.finish();
}

criterion_group!(
    benches,
    bench_list_schedule,
    bench_urgency,
    bench_force_directed,
    bench_workloads
);
criterion_main!(benches);
