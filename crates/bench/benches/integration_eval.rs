//! Cost of one system-integration evaluation (bandwidths, urgency
//! scheduling, buffers, transfer-module PLAs, feasibility analysis) — the
//! inner loop of both heuristics.

use chop_bad::PredictorParams;
use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::{FeasibilityCriteria, IntegrationContext};
use chop_stat::units::Cycles;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("integration_eval");
    for partitions in [2usize, 3] {
        let session =
            experiment1_session(&Exp1Config { partitions, package: 1 }).expect("valid");
        let (lists, _) = session.predict_partitions().expect("predict");
        let ctx = IntegrationContext::new(
            session.partitioning(),
            session.library(),
            *session.clocks(),
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            *session.constraints(),
        );
        let selection: Vec<_> = lists.iter().map(|l| &l[0]).collect();
        let ii = selection
            .iter()
            .map(|d| d.initiation_interval().value())
            .max()
            .unwrap()
            .max(ctx.min_transfer_ii().value());
        group.bench_function(format!("k{partitions}"), |b| {
            b.iter(|| {
                black_box(
                    ctx.evaluate(black_box(&selection), Cycles::new(ii)).expect("evaluate"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluate);
criterion_main!(benches);
