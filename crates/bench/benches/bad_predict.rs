//! Cost of one BAD prediction sweep — the "fast predictors in place of
//! synthesis tools" claim underlying the whole methodology.

use chop_bad::{ArchitectureStyle, ClockConfig, Predictor, PredictorParams};
use chop_dfg::benchmarks;
use chop_library::standard::table1_library;
use chop_stat::units::Nanos;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("bad_predict");
    let ar = benchmarks::ar_lattice_filter();
    let ewf = benchmarks::elliptic_wave_filter();
    let configs = [
        (
            "ar_single_cycle",
            ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap(),
            ArchitectureStyle::single_cycle(),
        ),
        (
            "ar_multi_cycle",
            ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
            ArchitectureStyle::multi_cycle(),
        ),
    ];
    for (name, clocks, style) in configs {
        let p = Predictor::new(table1_library(), clocks, style, PredictorParams::default());
        group.bench_function(name, |b| {
            b.iter(|| black_box(p.predict(&ar).expect("predict")));
        });
    }
    let p = Predictor::new(
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
    );
    group.bench_function("ewf_multi_cycle", |b| {
        b.iter(|| black_box(p.predict(&ewf).expect("predict")));
    });
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
