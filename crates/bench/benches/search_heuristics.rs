//! The CPU-time columns of Tables 4 and 6: run time of heuristics E and I
//! per experiment and partition count.

use chop_core::prelude::experiments::{
    experiment1_session, experiment2_session, Exp1Config, Exp2Config,
};
use chop_core::prelude::Heuristic;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_exp1(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp1_search");
    group.sample_size(10);
    for partitions in 1..=3usize {
        let session =
            experiment1_session(&Exp1Config { partitions, package: 1 }).expect("valid");
        for (name, h) in [("E", Heuristic::Enumeration), ("I", Heuristic::Iterative)] {
            group.bench_function(format!("k{partitions}_{name}"), |b| {
                b.iter(|| black_box(session.explore(h).expect("explore")));
            });
        }
    }
    group.finish();
}

fn bench_exp2(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp2_search");
    group.sample_size(10);
    for partitions in 1..=3usize {
        let session =
            experiment2_session(&Exp2Config { partitions, package: 1 }).expect("valid");
        for (name, h) in [("E", Heuristic::Enumeration), ("I", Heuristic::Iterative)] {
            group.bench_function(format!("k{partitions}_{name}"), |b| {
                b.iter(|| black_box(session.explore(h).expect("explore")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exp1, bench_exp2);
criterion_main!(benches);
