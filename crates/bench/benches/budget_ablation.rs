//! Budget-engine ablation: overhead of the cooperative budget checks on
//! an unlimited run, cost of truncated runs at various deadlines, and the
//! payoff of E→I degradation on a wide space.

use std::hint::black_box;
use std::time::Duration;

use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::{Heuristic, SearchBudget};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_budget_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_overhead");
    group.sample_size(10);
    let session =
        experiment1_session(&Exp1Config { partitions: 2, package: 1 }).expect("valid");
    // Baseline: the default budget (degradation threshold only).
    group.bench_function("default_budget_E", |b| {
        b.iter(|| black_box(session.explore(Heuristic::Enumeration).expect("explore")));
    });
    // Fully unlimited: no checks can ever trip.
    let unlimited = session.clone().with_budget(SearchBudget::unlimited());
    group.bench_function("unlimited_E", |b| {
        b.iter(|| black_box(unlimited.explore(Heuristic::Enumeration).expect("explore")));
    });
    // Armed but roomy: deadline and caps present, never tripped — measures
    // the per-trial cost of the cooperative checks themselves.
    let roomy = session.clone().with_budget(
        SearchBudget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .with_max_trials(usize::MAX)
            .with_max_points(usize::MAX),
    );
    group.bench_function("armed_budget_E", |b| {
        b.iter(|| black_box(roomy.explore(Heuristic::Enumeration).expect("explore")));
    });
    group.finish();
}

fn bench_truncated_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("truncated_runs");
    group.sample_size(10);
    let session =
        experiment1_session(&Exp1Config { partitions: 3, package: 1 }).expect("valid");
    for deadline_ms in [1u64, 10, 100] {
        let budgeted = session.clone().with_budget(
            SearchBudget::unlimited().with_deadline(Duration::from_millis(deadline_ms)),
        );
        group.bench_function(format!("deadline_{deadline_ms}ms_E"), |b| {
            b.iter(|| black_box(budgeted.explore(Heuristic::Enumeration).expect("explore")));
        });
    }
    for max_trials in [10usize, 100, 1000] {
        let budgeted =
            session.clone().with_budget(SearchBudget::unlimited().with_max_trials(max_trials));
        group.bench_function(format!("max_trials_{max_trials}_E"), |b| {
            b.iter(|| black_box(budgeted.explore(Heuristic::Enumeration).expect("explore")));
        });
    }
    group.finish();
}

fn bench_degradation_payoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("degradation_payoff");
    group.sample_size(10);
    let session = experiment1_session(&Exp1Config { partitions: 3, package: 1 })
        .expect("valid")
        .with_pruning(false);
    // Forced E on the unpruned space versus the engine degrading to I.
    let forced_e = session.clone().with_budget(SearchBudget::unlimited());
    group.bench_function("forced_E_unpruned", |b| {
        b.iter(|| black_box(forced_e.explore(Heuristic::Enumeration).expect("explore")));
    });
    let degrading =
        session.clone().with_budget(SearchBudget::unlimited().with_degrade_threshold(1));
    group.bench_function("degraded_to_I_unpruned", |b| {
        b.iter(|| black_box(degrading.explore(Heuristic::Enumeration).expect("explore")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_budget_overhead,
    bench_truncated_runs,
    bench_degradation_payoff
);
criterion_main!(benches);
