//! Branch-and-bound search ablation: heuristic E with subtree skipping
//! on versus the exhaustive odometer walk, cold (empty prediction cache,
//! so the measured run pays prediction + search) and warm (cache
//! pre-filled, isolating pure search + integration); heuristic I rides
//! along as the greedy baseline the paper compares against (the
//! branch-and-bound switch is a no-op there — its walk is not an
//! odometer). Summary numbers are checked in as `BENCH_search.json`.

use std::hint::black_box;

use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::{Heuristic, Session};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn fresh_session(branch_and_bound: bool) -> Session {
    experiment1_session(&Exp1Config { partitions: 3, package: 1 })
        .expect("valid")
        .with_branch_and_bound(branch_and_bound)
}

fn bench_search_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_ablation");
    group.sample_size(10);

    for (tag, bnb) in [("bnb", true), ("naive", false)] {
        // Cold: fresh session per measurement — prediction + search.
        group.bench_function(format!("{tag}_cold_E"), |b| {
            b.iter_batched(
                || fresh_session(bnb),
                |s| black_box(s.explore(Heuristic::Enumeration).expect("explore")),
                BatchSize::SmallInput,
            );
        });

        // Warm: cache pre-filled, so the measurement is the combination
        // walk + scoring alone — the part branch-and-bound accelerates.
        let warm = fresh_session(bnb);
        warm.explore(Heuristic::Enumeration).expect("warm-up");
        group.bench_function(format!("{tag}_warm_E"), |b| {
            b.iter(|| black_box(warm.explore(Heuristic::Enumeration).expect("explore")));
        });

        group.bench_function(format!("{tag}_cold_I"), |b| {
            b.iter_batched(
                || fresh_session(bnb),
                |s| black_box(s.explore(Heuristic::Iterative).expect("explore")),
                BatchSize::SmallInput,
            );
        });

        let warm_i = fresh_session(bnb);
        warm_i.explore(Heuristic::Iterative).expect("warm-up");
        group.bench_function(format!("{tag}_warm_I"), |b| {
            b.iter(|| black_box(warm_i.explore(Heuristic::Iterative).expect("explore")));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_search_ablation);
criterion_main!(benches);
