//! Ablation of the paper's §3.1 pruning claim: "The CPU time spent to
//! generate these predictions for a total of 13411 designs … was 61.40
//! seconds, showing the advantage of the pruning techniques used in CHOP."
//! Also ablates the probabilistic feasibility criteria against point
//! comparisons.

use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::{FeasibilityCriteria, Heuristic};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_ablation");
    group.sample_size(10);
    for partitions in [1usize, 2] {
        let base = experiment1_session(&Exp1Config { partitions, package: 1 }).expect("valid");
        group.bench_function(format!("k{partitions}_pruned"), |b| {
            b.iter(|| black_box(base.explore(Heuristic::Enumeration).expect("explore")));
        });
        let keep_all = base.clone().with_pruning(false).with_keep_all(true);
        group.bench_function(format!("k{partitions}_keep_all"), |b| {
            b.iter(|| black_box(keep_all.explore(Heuristic::Enumeration).expect("explore")));
        });
    }
    group.finish();
}

fn bench_probabilistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("probabilistic_ablation");
    group.sample_size(10);
    let base = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).expect("valid");
    group.bench_function("paper_criteria", |b| {
        b.iter(|| black_box(base.explore(Heuristic::Iterative).expect("explore")));
    });
    let point = base.clone().with_criteria(FeasibilityCriteria::point_estimates());
    group.bench_function("point_criteria", |b| {
        b.iter(|| black_box(point.explore(Heuristic::Iterative).expect("explore")));
    });
    group.finish();
}

criterion_group!(benches, bench_pruning, bench_probabilistic);
criterion_main!(benches);
