//! Optimizer ablation: the move-based auto-partitioner's three
//! strategies on the paper's AR lattice filter (experiment 1) and a
//! generated 200-node layered DFG —
//!
//! * `fm` — pure gain-directed passes (`with_kicks(0, 0)`): descend
//!   until no candidate move improves the objective;
//! * `anneal` — the default spec: gain passes plus seeded
//!   simulated-annealing kicks on plateaus;
//! * `restart` — best-of-4 seeded single-kick restarts (perturb the
//!   stalled state once, descend again, keep the best final score).
//!
//! Each strategy is measured cold (fresh session, every candidate
//! evaluation pays prediction + scheduling) and the gain-pass arms also
//! warm (prediction cache pre-filled by a prior identical run, so a
//! candidate evaluation is cache lookup + scoring alone). The warm/cold
//! ratio is the headline: move refinement is only practical because the
//! cache-backed engine makes repeat evaluations cheap. Summary numbers
//! are checked in as `BENCH_optimize.json`.

use std::hint::black_box;

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::experiments::{experiment1_session, main_clock, Exp1Config};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::{Constraints, OptimizeSpec, Session};
use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// Experiment 1 at 3 partitions on the 84-pin package — the same
/// workload the search ablation uses.
fn exp1_session() -> Session {
    experiment1_session(&Exp1Config { partitions: 3, package: 1 }).expect("valid")
}

/// A 200-node layered DFG (24 layers x 8 ops + 8 inputs) across 3
/// chips: the scaling workload beyond the paper's single benchmark.
fn lattice200_session() -> Session {
    let params =
        RandomDfgParams { layers: 24, width: 8, inputs: 8, ..RandomDfgParams::default() };
    let dfg = random_layered(7, params);
    let pkg = table2_packages()[1].clone();
    let chips = ChipSet::uniform(pkg, 3);
    let partitioning =
        PartitioningBuilder::new(dfg, chips).split_horizontal(3).build().expect("valid");
    Session::new(
        partitioning,
        table1_library(),
        ClockConfig::new(main_clock(), 10, 1).expect("valid clocks"),
        ArchitectureStyle::single_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(1_000_000.0), Nanos::new(1_000_000.0)),
    )
}

fn fm_spec(max_moves: u64) -> OptimizeSpec {
    OptimizeSpec::new().with_kicks(0, 0).with_max_moves(max_moves)
}

fn anneal_spec(max_moves: u64) -> OptimizeSpec {
    OptimizeSpec::new().with_max_moves(max_moves)
}

/// Best-of-4 seeded restarts: each run perturbs one plateau with a
/// single 4-move kick, then descends; the best final score wins.
fn restart(session: &Session, max_moves: u64) -> f64 {
    (1u64..=4)
        .map(|seed| {
            let spec =
                OptimizeSpec::new().with_seed(seed).with_kicks(1, 4).with_max_moves(max_moves);
            session.optimize(&spec).expect("optimize").final_score
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_optimize_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_ablation");
    group.sample_size(10);

    type Workload = (&'static str, fn() -> Session, u64);
    let workloads: [Workload; 2] =
        [("exp1", exp1_session, 256), ("lattice200", lattice200_session, 64)];

    for (tag, build, max_moves) in workloads {
        // Cold: fresh session per measurement — every candidate
        // evaluation pays prediction + scheduling + integration.
        group.bench_function(format!("{tag}_fm_cold"), |b| {
            b.iter_batched(
                build,
                |s| black_box(s.optimize(&fm_spec(max_moves)).expect("optimize")),
                BatchSize::SmallInput,
            );
        });

        // Warm: the cache already holds every state this deterministic
        // run visits, so a candidate evaluation is lookup + scoring.
        let warm = build();
        warm.optimize(&fm_spec(max_moves)).expect("warm-up");
        group.bench_function(format!("{tag}_fm_warm"), |b| {
            b.iter(|| black_box(warm.optimize(&fm_spec(max_moves)).expect("optimize")));
        });

        group.bench_function(format!("{tag}_anneal_cold"), |b| {
            b.iter_batched(
                build,
                |s| black_box(s.optimize(&anneal_spec(max_moves)).expect("optimize")),
                BatchSize::SmallInput,
            );
        });

        let warm_a = build();
        warm_a.optimize(&anneal_spec(max_moves)).expect("warm-up");
        group.bench_function(format!("{tag}_anneal_warm"), |b| {
            b.iter(|| black_box(warm_a.optimize(&anneal_spec(max_moves)).expect("optimize")));
        });

        group.bench_function(format!("{tag}_restart_cold"), |b| {
            b.iter_batched(build, |s| black_box(restart(&s, max_moves)), BatchSize::SmallInput);
        });
    }

    group.finish();
}

criterion_group!(benches, bench_optimize_ablation);
criterion_main!(benches);
