//! Prediction-cache ablation: cold exploration versus a fully warmed
//! re-exploration, the same run with memoization disabled, and the
//! incremental repartition workflow (move one node, re-explore with only
//! the two touched partitions re-predicted). Summary numbers are checked
//! in as `BENCH_explore.json`.

use std::hint::black_box;

use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::{Heuristic, PartitionId, Session};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn fresh_session() -> Session {
    experiment1_session(&Exp1Config { partitions: 3, package: 1 }).expect("valid")
}

/// The first structurally movable node of partition 1 (destination:
/// partition 2) — the single-node edit of the incremental workflow.
fn movable_node(s: &Session) -> chop_dfg::NodeId {
    s.partitioning()
        .grouping()
        .members(0)
        .into_iter()
        .find(|&node| s.repartition(node, PartitionId::new(1)).is_ok())
        .expect("some node is movable")
}

fn bench_cache_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_ablation");
    group.sample_size(10);

    // Cold: a fresh (empty) cache each measurement — every partition hits
    // the predictor.
    group.bench_function("cold_explore_I", |b| {
        b.iter_batched(
            fresh_session,
            |s| black_box(s.explore(Heuristic::Iterative).expect("explore")),
            BatchSize::SmallInput,
        );
    });

    // Warm: the same session re-explored — all predictions served from
    // the cache, measuring the floor of search + integration alone.
    let warm = fresh_session();
    warm.explore(Heuristic::Iterative).expect("warm-up");
    group.bench_function("warm_re_explore_I", |b| {
        b.iter(|| black_box(warm.explore(Heuristic::Iterative).expect("explore")));
    });

    // Ablated: memoization disabled (capacity 0) — every re-exploration
    // pays the full prediction cost again.
    let uncached = fresh_session().with_cache_capacity(0);
    uncached.explore(Heuristic::Iterative).expect("warm-up");
    group.bench_function("uncached_re_explore_I", |b| {
        b.iter(|| black_box(uncached.explore(Heuristic::Iterative).expect("explore")));
    });

    // Incremental: explore, move one node, re-explore. The warmed base
    // cache serves the untouched partition; only the two changed
    // partitions re-predict. Fresh base per measurement so every run does
    // exactly the incremental amount of work.
    let node = movable_node(&fresh_session());
    group.bench_function("repartition_re_explore_I", |b| {
        b.iter_batched(
            || {
                let s = fresh_session();
                s.explore(Heuristic::Iterative).expect("baseline");
                s
            },
            |s| {
                let moved = s.repartition(node, PartitionId::new(1)).expect("movable");
                black_box(moved.explore(Heuristic::Iterative).expect("explore"))
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_cache_ablation);
criterion_main!(benches);
