//! Extended evaluation beyond the paper's AR filter: partitions the
//! classic HLS workloads (elliptic wave filter, 8-point DCT, 16-tap FIR)
//! across 1–3 chips under experiment-2 clocking and prints a Table-6-style
//! summary — evidence the partitioner generalizes past its original
//! benchmark.

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::{Constraints, Heuristic, Session};
use chop_dfg::{benchmarks, Dfg};
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;

fn workloads() -> Vec<(&'static str, Dfg)> {
    vec![
        ("ar_filter", benchmarks::ar_lattice_filter()),
        ("ewf", benchmarks::elliptic_wave_filter()),
        ("dct8", benchmarks::dct8()),
        ("fir16", benchmarks::fir_filter(16)),
    ]
}

fn main() {
    println!("Extended evaluation (multi-cycle, 300 ns clock, perf 30 µs, delay 45 µs)");
    println!(
        "{:>10} | {:>5} | {:>6} | {:>9} | {:>5} | {:>8} | {:>9} | {:>8}",
        "workload", "chips", "trials", "II cycles", "delay", "clock ns", "power mW", "feasible"
    );
    println!("{}", "-".repeat(84));
    for (name, dfg) in workloads() {
        for k in 1..=3usize {
            let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
            let partitioning = PartitioningBuilder::new(dfg.clone(), chips)
                .split_horizontal(k)
                .build()
                .expect("workloads partition cleanly");
            let session = Session::new(
                partitioning,
                table1_library(),
                ClockConfig::new(Nanos::new(300.0), 1, 1).expect("valid clocks"),
                ArchitectureStyle::multi_cycle(),
                PredictorParams::default(),
                Constraints::new(Nanos::new(30_000.0), Nanos::new(45_000.0)),
            );
            let outcome = session.explore(Heuristic::Iterative).expect("explore");
            match outcome.feasible.iter().min_by_key(|f| f.system.initiation_interval.value()) {
                Some(best) => println!(
                    "{name:>10} | {k:>5} | {:>6} | {:>9} | {:>5} | {:>8.0} | {:>9.0} | {:>8}",
                    outcome.trials,
                    best.system.initiation_interval.value(),
                    best.system.delay.value(),
                    best.system.clock.likely(),
                    best.system.power.likely(),
                    outcome.feasible_trials,
                ),
                None => println!(
                    "{name:>10} | {k:>5} | {:>6} | {:>9} | {:>5} | {:>8} | {:>9} | {:>8}",
                    outcome.trials, "-", "-", "-", "-", 0
                ),
            }
        }
    }
}
