//! Regenerates Table 5: statistics on the results from BAD, experiment 2.

fn main() {
    let stats = chop_bench::prediction_stats(2);
    print!(
        "{}",
        chop_bench::render_stats(
            "Table 5: Statistics on the results from BAD for experiment 2",
            &stats
        )
    );
}
