//! `cache_tier` — CDS-style concurrency bench for the sharded
//! prediction-cache tier, plus the warm-restart latency comparison.
//!
//! Two measurements, both written to `BENCH_cache_tier.json`:
//!
//! * **mixed** — N threads hammer one cache with a mixed lookup/insert
//!   workload at 95/5 and 50/50 ratios, at 1, 4 and 16 threads, against
//!   two layouts of the *same* type: `shards = 1` (exactly the old
//!   single-mutex cache — every access serializes on one lock, and LRU
//!   eviction min-scans the whole map) and the auto-sized stripe
//!   (`recommended_shards(threads)`). Each combination runs at two
//!   pressures: `fit` (capacity = key space, measuring lock traffic
//!   alone) and `evict` (capacity = key space / 8, where every insert
//!   of an absent key pays an LRU eviction scan — O(capacity) for the
//!   single mutex'd map, O(capacity/shards) per stripe). The payload is
//!   a real `Arc<[PredictedDesign]>` harvested from an exploration, so
//!   clone/drop costs match production traffic.
//! * **explore** — wall-clock of a full experiment-1 exploration with a
//!   cold cache versus the identical exploration after restoring the
//!   first run's snapshot into a fresh cache (the warm-restart path).
//!
//! `--smoke` shrinks the run (1 thread, short windows, no file write
//! unless `--out` is given) so CI can exercise the harness cheaply.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use chop_bad::prune::PredictionStats;
use chop_bad::PredictedDesign;
use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::{
    load_snapshot, recommended_shards, write_snapshot, Heuristic, PredictionCache,
};
use chop_service::json::{obj, Value};

struct Options {
    out: Option<String>,
    smoke: bool,
}

fn parse_args() -> Options {
    let mut options = Options { out: None, smoke: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                options.out = Some(args.next().unwrap_or_else(|| usage("--out needs a value")));
            }
            "--smoke" => options.smoke = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    options
}

fn usage(message: &str) -> ! {
    eprintln!("cache_tier: {message}");
    eprintln!("usage: cache_tier [--out FILE] [--smoke]");
    std::process::exit(2);
}

/// One measured cell of the mixed-workload grid.
struct MixedReport {
    layout: &'static str,
    pressure: &'static str,
    shards: usize,
    threads: usize,
    /// Lookup percentage of the mix (the rest are inserts).
    lookup_pct: u32,
    ops: u64,
    elapsed_ms: f64,
}

impl MixedReport {
    fn mops_per_s(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let ops = self.ops as f64;
        ops / (self.elapsed_ms / 1000.0) / 1.0e6
    }
}

/// Keys are spread over this space; capacity matches it so the grid
/// measures lock contention, not eviction policy.
const KEY_SPACE: u64 = 32 * 1024;

fn main() {
    let options = parse_args();
    let threads: &[usize] = if options.smoke { &[1] } else { &[1, 4, 16] };
    let window =
        if options.smoke { Duration::from_millis(60) } else { Duration::from_millis(400) };

    // A real payload: the designs one predictor call produced, so every
    // bench insert/hit pays production Arc clone/drop costs.
    let (designs, stats) = harvest_payload();

    let mut mixed = Vec::new();
    #[allow(clippy::cast_possible_truncation)]
    for (pressure, capacity) in [("fit", KEY_SPACE as usize), ("evict", KEY_SPACE as usize / 8)]
    {
        for &lookup_pct in &[95u32, 50] {
            for &n in threads {
                for (layout, shards) in [("mutex", 1usize), ("sharded", recommended_shards(n))]
                {
                    let report = run_mixed(
                        layout, pressure, capacity, shards, n, lookup_pct, window, &designs,
                        &stats,
                    );
                    eprintln!(
                        "cache_tier: {layout:>7}/{pressure:<5} ({shards:>2} shard(s)) \
                         {n:>2} thread(s) {lookup_pct}/{} mix — {:.2} Mops/s \
                         ({} ops in {:.0} ms)",
                        100 - lookup_pct,
                        report.mops_per_s(),
                        report.ops,
                        report.elapsed_ms,
                    );
                    mixed.push(report);
                }
            }
        }
    }

    let (cold_ms, warm_ms) = run_explore_comparison(options.smoke);
    eprintln!(
        "cache_tier: explore cold {cold_ms:.1} ms, snapshot-warm {warm_ms:.1} ms \
         ({:.1}x)",
        if warm_ms > 0.0 { cold_ms / warm_ms } else { 0.0 }
    );

    let default_out = format!("{}/../../BENCH_cache_tier.json", env!("CARGO_MANIFEST_DIR"));
    let out = match (&options.out, options.smoke) {
        (Some(path), _) => Some(path.clone()),
        (None, true) => None, // smoke runs measure, they don't overwrite the record
        (None, false) => Some(default_out),
    };
    if let Some(path) = out {
        write_report(&path, &mixed, cold_ms, warm_ms);
        eprintln!("cache_tier: wrote {path}");
    }
}

/// Runs one exploration and takes the first cached entry's payload.
fn harvest_payload() -> (Arc<[PredictedDesign]>, PredictionStats) {
    let session = experiment1_session(&Exp1Config { partitions: 2, package: 1 })
        .expect("experiment 1 session");
    session.explore(Heuristic::Iterative).expect("harvest explore");
    session
        .shared_cache()
        .export()
        .into_iter()
        .next()
        .map(|(_, d, s)| (d, s))
        .expect("the harvest explore must cache at least one entry")
}

/// One cell: `threads` workers run the mixed workload against a fresh
/// cache until the deadline; returns aggregate ops and wall time.
#[allow(clippy::too_many_arguments)]
fn run_mixed(
    layout: &'static str,
    pressure: &'static str,
    capacity: usize,
    shards: usize,
    threads: usize,
    lookup_pct: u32,
    window: Duration,
    designs: &Arc<[PredictedDesign]>,
    stats: &PredictionStats,
) -> MixedReport {
    let cache = Arc::new(PredictionCache::with_config(capacity, shards));
    // Pre-fill to capacity so `evict` cells pay the LRU scan from the
    // first insert and `fit` cells mix hits and misses realistically.
    for key in 0..(capacity as u64).min(KEY_SPACE / 2) {
        cache.insert(key * 2, Arc::clone(designs), *stats);
    }
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut workers = Vec::with_capacity(threads);
    for t in 0..threads {
        let cache = Arc::clone(&cache);
        let designs = Arc::clone(designs);
        let stats = *stats;
        let barrier = Arc::clone(&barrier);
        workers.push(thread::spawn(move || {
            // Deterministic per-thread xorshift64* stream.
            let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1);
            let mut step = || {
                rng ^= rng >> 12;
                rng ^= rng << 25;
                rng ^= rng >> 27;
                rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            let mut ops = 0u64;
            barrier.wait();
            let deadline = Instant::now() + window;
            // Check the clock per batch, not per op: an Instant::now()
            // per operation would dominate the sub-microsecond path.
            'outer: loop {
                for _ in 0..1024 {
                    let roll = step();
                    let key = step() % KEY_SPACE;
                    if roll % 100 < u64::from(lookup_pct) {
                        std::hint::black_box(cache.get(key));
                    } else {
                        cache.insert(key, Arc::clone(&designs), stats);
                    }
                    ops += 1;
                }
                if Instant::now() >= deadline {
                    break 'outer;
                }
            }
            ops
        }));
    }
    barrier.wait();
    let started = Instant::now();
    let ops: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    let elapsed = started.elapsed();
    MixedReport {
        layout,
        pressure,
        shards: cache.shard_count(),
        threads,
        lookup_pct,
        ops,
        elapsed_ms: elapsed.as_secs_f64() * 1000.0,
    }
}

/// Cold versus snapshot-warm exploration of the same session config.
fn run_explore_comparison(smoke: bool) -> (f64, f64) {
    let config = Exp1Config { partitions: if smoke { 1 } else { 3 }, package: 1 };
    let cold_session = experiment1_session(&config).expect("cold session");
    let started = Instant::now();
    cold_session.explore(Heuristic::Iterative).expect("cold explore");
    let cold_ms = started.elapsed().as_secs_f64() * 1000.0;

    let snap =
        std::env::temp_dir().join(format!("chop-bench-cache-tier-{}.snap", std::process::id()));
    write_snapshot(&snap, &cold_session.shared_cache()).expect("write snapshot");
    let restored = Arc::new(PredictionCache::new());
    load_snapshot(&snap, &restored).expect("load snapshot");
    let _ = std::fs::remove_file(&snap);

    let warm_session =
        experiment1_session(&config).expect("warm session").with_shared_cache(restored);
    let started = Instant::now();
    let outcome = warm_session.explore(Heuristic::Iterative).expect("warm explore");
    let warm_ms = started.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(
        outcome.trace.predictor_calls, 0,
        "the warm run must be served entirely from the restored snapshot"
    );
    (cold_ms, warm_ms)
}

#[allow(clippy::cast_precision_loss)]
fn write_report(path: &str, mixed: &[MixedReport], cold_ms: f64, warm_ms: f64) {
    let mut results: Vec<Value> = Vec::new();
    for report in mixed {
        results.push(obj(vec![
            (
                "name",
                Value::Str(format!(
                    "{}_{}_{}r{}w_{}t",
                    report.layout,
                    report.pressure,
                    report.lookup_pct,
                    100 - report.lookup_pct,
                    report.threads
                )),
            ),
            ("layout", Value::Str(report.layout.to_owned())),
            ("pressure", Value::Str(report.pressure.to_owned())),
            ("shards", Value::Num(report.shards as f64)),
            ("threads", Value::Num(report.threads as f64)),
            ("lookup_pct", Value::Num(f64::from(report.lookup_pct))),
            ("ops", Value::Num(report.ops as f64)),
            ("elapsed_ms", Value::Num(report.elapsed_ms.round())),
            ("mops_per_s", Value::Num((report.mops_per_s() * 100.0).round() / 100.0)),
        ]));
    }
    let report = obj(vec![
        ("bench", Value::Str("cache_tier".to_owned())),
        (
            "command",
            Value::Str("cargo run --release -p chop-bench --bin cache_tier".to_owned()),
        ),
        ("date", Value::Str(today())),
        (
            "config",
            obj(vec![
                (
                    "workload",
                    Value::Str(
                        "mixed lookup/insert over 32Ki keys, real PredictedDesign payloads"
                            .to_owned(),
                    ),
                ),
                ("key_space", Value::Num(KEY_SPACE as f64)),
                (
                    "ratios",
                    Value::Arr(vec![Value::Str("95/5".into()), Value::Str("50/50".into())]),
                ),
                (
                    "threads",
                    Value::Arr(vec![Value::Num(1.0), Value::Num(4.0), Value::Num(16.0)]),
                ),
                (
                    "pressures",
                    Value::Arr(vec![Value::Str("fit".into()), Value::Str("evict".into())]),
                ),
                (
                    "host_cpus",
                    Value::Num(
                        std::thread::available_parallelism()
                            .map(std::num::NonZeroUsize::get)
                            .unwrap_or(1) as f64,
                    ),
                ),
            ]),
        ),
        ("results", Value::Arr(results)),
        (
            "explore",
            obj(vec![
                (
                    "description",
                    Value::Str(
                        "experiment 1 (3 partitions, package 2): cold cache vs \
                         snapshot-restored cache"
                            .to_owned(),
                    ),
                ),
                ("cold_ms", Value::Num((cold_ms * 10.0).round() / 10.0)),
                ("snapshot_warm_ms", Value::Num((warm_ms * 10.0).round() / 10.0)),
                (
                    "speedup",
                    Value::Num(if warm_ms > 0.0 {
                        ((cold_ms / warm_ms) * 10.0).round() / 10.0
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ]);
    let mut text = String::new();
    report.write(&mut text);
    text.push('\n');
    std::fs::write(path, text).expect("write bench report");
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's
/// algorithm), so reports carry a real timestamp without a time crate.
fn today() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let days = i64::try_from(secs / 86_400).unwrap_or(0);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
