//! Regenerates Figure 6: the AR lattice filter data-flow graph — prints
//! the structural statistics and the full Graphviz DOT description.

use chop_dfg::{analysis, benchmarks, dot, OpClass};

fn main() {
    let g = benchmarks::ar_lattice_filter();
    let h = g.op_histogram();
    println!("Figure 6: AR lattice filter data flow graph");
    println!("  operations: {h}");
    println!("  multiplications: {}", h.count_class(OpClass::Multiplication));
    println!("  additions:       {}", h.count_class(OpClass::Addition));
    println!("  primary inputs:  {}", g.inputs().count());
    println!("  primary outputs: {}", g.outputs().count());
    println!(
        "  critical path:   {} functional operations",
        analysis::critical_path(&g, |_, n| u64::from(n.op().class().is_some()))
    );
    println!("\n{}", dot::to_dot(&g));
}
