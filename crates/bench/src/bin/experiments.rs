//! Runs the complete evaluation — every table and figure — in paper order.
//! `cargo run -p chop-bench --release --bin experiments`

fn main() {
    println!("=== CHOP reproduction: full evaluation ===\n");

    println!("--- Inputs ---");
    println!("Library: Table 1 (run `--bin table1` for the full listing)");
    println!("Packages: Table 2 (run `--bin table2`)");
    println!("Workload: Figure 6 AR lattice filter (run `--bin figure6`)\n");

    println!("--- Experiment 1 (single-cycle, dp clock 10×300 ns) ---\n");
    print!(
        "{}",
        chop_bench::render_stats(
            "Table 3: Statistics on the results from BAD for experiment 1",
            &chop_bench::prediction_stats(1)
        )
    );
    println!();
    print!(
        "{}",
        chop_bench::render_results(
            "Table 4: Results of experiment 1",
            &chop_bench::experiment1_rows()
        )
    );
    println!();
    let mut all = Vec::new();
    let mut elapsed = std::time::Duration::ZERO;
    for partitions in 1..=3usize {
        let (points, e) = chop_bench::design_space(1, partitions);
        all.extend(points);
        elapsed += e;
    }
    print!(
        "{}",
        chop_bench::render_design_space(
            "Figure 7: Designs considered during experiment 1",
            &all,
            elapsed
        )
    );

    println!("\n--- Experiment 2 (multi-cycle, dp clock 300 ns, perf 20 µs) ---\n");
    print!(
        "{}",
        chop_bench::render_stats(
            "Table 5: Statistics on the results from BAD for experiment 2",
            &chop_bench::prediction_stats(2)
        )
    );
    println!();
    print!(
        "{}",
        chop_bench::render_results(
            "Table 6: Results of experiment 2",
            &chop_bench::experiment2_rows()
        )
    );
    println!();
    let (points, e) = chop_bench::design_space(2, 1);
    print!(
        "{}",
        chop_bench::render_design_space(
            "Figure 8: Some of designs considered during experiment 2 (1 partition)",
            &points,
            e
        )
    );
}
