//! Regenerates Table 1: the 3 µm component library.

use chop_library::standard::table1_library;

fn main() {
    println!("Table 1: Library used in the experiments");
    println!(
        "{:>8} | {:>15} | {:>5} | {:>8} | {:>6}",
        "Module", "Type", "Bit", "Area", "Delay"
    );
    println!("{:>8} | {:>15} | {:>5} | {:>8} | {:>6}", "Name", "", "Width", "mil²", "ns");
    println!("{}", "-".repeat(58));
    for m in table1_library().modules() {
        println!(
            "{:>8} | {:>15} | {:>5} | {:>8.0} | {:>6.0}",
            m.name(),
            m.kind().to_string(),
            m.width().value(),
            m.area().value(),
            m.delay().value()
        );
    }
}
