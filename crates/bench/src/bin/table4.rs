//! Regenerates Table 4: results of experiment 1 (single-cycle operations,
//! datapath clock 10× the 300 ns main clock, constraints 30 µs / 30 µs).

fn main() {
    let rows = chop_bench::experiment1_rows();
    print!("{}", chop_bench::render_results("Table 4: Results of experiment 1", &rows));
}
