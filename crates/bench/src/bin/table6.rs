//! Regenerates Table 6: results of experiment 2 (multi-cycle operations,
//! datapath and transfer clocks at the 300 ns main clock, performance
//! tightened to 20 µs).

fn main() {
    let rows = chop_bench::experiment2_rows();
    print!("{}", chop_bench::render_results("Table 6: Results of experiment 2", &rows));
}
