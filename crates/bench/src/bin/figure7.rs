//! Regenerates Figure 7: every design considered during experiment 1 when
//! pruning is disabled (keep-all mode), across the 1/2/3-partition
//! searches.

//! Pass `csv` as the first argument to emit the raw points instead of the
//! ASCII scatter.

use chop_core::prelude::DesignPoint;

fn main() {
    let csv = std::env::args().nth(1).as_deref() == Some("csv");
    let mut all: Vec<DesignPoint> = Vec::new();
    let mut total_elapsed = std::time::Duration::ZERO;
    for partitions in 1..=3usize {
        let (points, elapsed) = chop_bench::design_space(1, partitions);
        if !csv {
            println!(
                "  {partitions} partition(s): {} designs, {:.2} s",
                points.len(),
                elapsed.as_secs_f64()
            );
        }
        all.extend(points);
        total_elapsed += elapsed;
    }
    if csv {
        print!("{}", chop_bench::to_csv(&all));
    } else {
        print!(
            "{}",
            chop_bench::render_design_space(
                "Figure 7: Designs considered during experiment 1",
                &all,
                total_elapsed
            )
        );
    }
}
