//! `serve_load` — concurrent-connection load generator for `chop serve`.
//!
//! Spawns an in-process [`chop_service::Server`] and drives it with N
//! concurrent TCP connections issuing mixed open/explore/repartition
//! traffic, at 1, 64 and 1024 connections. Two phases per level:
//!
//! * **idle** — the connections are held open doing nothing for a fixed
//!   window while the bench samples the process's thread count and CPU
//!   time. This is the number the reactor refactor exists to move: a
//!   thread-per-connection server pays one thread plus ~10 wakeups/s per
//!   idle client, a readiness-driven one pays a single poller.
//! * **mixed** — one client thread per connection runs open → explore →
//!   repartition → explore → close cycles until a deadline, reporting
//!   p50/p99 request latency and aggregate requests/s.
//!
//! Results are merged into `BENCH_serve.json` under a `--label` prefix
//! (`baseline` for the thread-per-connection server, `reactor` for the
//! epoll core), so the checked-in file carries both sides of the
//! comparison and either side can be regenerated alone.
//!
//! `--smoke` shrinks the run (1 and 8 connections, short windows, no
//! file write unless `--out` is given) so CI can exercise the full
//! client/server path in a few seconds.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use chop_service::json::{obj, parse, Value};
use chop_service::{Client, ExploreParams, OpenParams, Request, Response, ServeConfig, Server};

const SPEC: &str = "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n";

struct Options {
    label: String,
    out: Option<String>,
    smoke: bool,
}

fn parse_args() -> Options {
    let mut options = Options { label: "reactor".to_owned(), out: None, smoke: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => {
                options.label = args.next().unwrap_or_else(|| usage("--label needs a value"));
            }
            "--out" => {
                options.out = Some(args.next().unwrap_or_else(|| usage("--out needs a value")));
            }
            "--smoke" => options.smoke = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    options
}

fn usage(message: &str) -> ! {
    eprintln!("serve_load: {message}");
    eprintln!("usage: serve_load [--label baseline|reactor] [--out FILE] [--smoke]");
    std::process::exit(2);
}

/// One measured load level.
struct LevelReport {
    connections: usize,
    idle_threads: usize,
    idle_cpu_ms: f64,
    idle_window_ms: u64,
    requests: usize,
    elapsed_ms: f64,
    p50_us: u64,
    p99_us: u64,
    errors: usize,
}

fn main() {
    let options = parse_args();
    let levels: &[usize] = if options.smoke { &[1, 8] } else { &[1, 64, 1024] };
    let idle_window =
        if options.smoke { Duration::from_millis(300) } else { Duration::from_secs(2) };
    let mixed_window =
        if options.smoke { Duration::from_millis(400) } else { Duration::from_millis(1500) };

    let mut reports = Vec::new();
    for &connections in levels {
        let report = run_level(connections, idle_window, mixed_window);
        eprintln!(
            "serve_load[{}]: {} conns — idle: {} threads, {:.1} ms cpu / {} ms; \
             mixed: {} reqs in {:.0} ms ({:.0} req/s), p50 {} us, p99 {} us, {} errors",
            options.label,
            report.connections,
            report.idle_threads,
            report.idle_cpu_ms,
            report.idle_window_ms,
            report.requests,
            report.elapsed_ms,
            to_f64(report.requests) / (report.elapsed_ms / 1000.0),
            report.p50_us,
            report.p99_us,
            report.errors,
        );
        reports.push(report);
    }

    let default_out = format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR"));
    let out = match (&options.out, options.smoke) {
        (Some(path), _) => Some(path.clone()),
        (None, true) => None, // smoke runs measure, they don't overwrite the record
        (None, false) => Some(default_out),
    };
    if let Some(path) = out {
        write_report(&path, &options.label, &reports);
        eprintln!("serve_load: wrote {path}");
    }
}

#[allow(clippy::cast_precision_loss)]
fn to_f64(n: usize) -> f64 {
    n as f64
}

fn run_level(connections: usize, idle_window: Duration, mixed_window: Duration) -> LevelReport {
    // A fresh server per level isolates thread/CPU accounting. The
    // inflight cap is lifted far above the connection count so admission
    // control never converts load into `busy` replies mid-measurement.
    let config =
        ServeConfig { workers: 4, max_inflight: 1 << 16, jobs: 1, ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run().expect("server drains cleanly"));

    // Phase 1: idle connections. A ping roundtrip on each guarantees the
    // server has genuinely accepted it (not just queued it in the
    // listener backlog) before the hold starts.
    let mut idle = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut client = connect_retry(addr);
        match client.request(&Request::Ping).expect("ping") {
            Response::Pong { .. } => {}
            other => panic!("expected pong, got {other:?}"),
        }
        idle.push(client);
    }
    let cpu_before = process_cpu_ms();
    thread::sleep(idle_window);
    let idle_cpu_ms = process_cpu_ms() - cpu_before;
    let idle_threads = process_threads();
    drop(idle);

    // Phase 2: mixed open/explore/repartition throughput. One client
    // thread per connection; a barrier lines up the start so elapsed
    // time covers only concurrent load.
    let barrier = Arc::new(Barrier::new(connections + 1));
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(Mutex::new(0usize));
    let mut drivers = Vec::with_capacity(connections);
    for t in 0..connections {
        let barrier = Arc::clone(&barrier);
        let latencies = Arc::clone(&latencies);
        let errors = Arc::clone(&errors);
        drivers.push(thread::spawn(move || {
            let mut client = connect_retry(addr);
            let mut local = Vec::new();
            let mut failed = 0usize;
            barrier.wait();
            let deadline = Instant::now() + mixed_window;
            let mut cycle = 0usize;
            while Instant::now() < deadline {
                let session = format!("ld-{t}-{cycle}");
                let requests = [
                    Request::Open {
                        session: session.clone(),
                        params: OpenParams {
                            spec: SPEC.into(),
                            partitions: 2,
                            ..OpenParams::default()
                        },
                    },
                    Request::Explore {
                        session: session.clone(),
                        params: ExploreParams::default(),
                    },
                    Request::Repartition {
                        session: session.clone(),
                        node: 3,
                        to: u32::from(cycle.is_multiple_of(2)),
                    },
                    Request::Explore {
                        session: session.clone(),
                        params: ExploreParams::default(),
                    },
                    Request::Close { session },
                ];
                for request in requests {
                    let start = Instant::now();
                    let reply = client.request(&request);
                    let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    match reply {
                        Ok(Response::Error(e)) => {
                            failed += 1;
                            eprintln!("serve_load: server error: {e}");
                        }
                        Ok(_) => local.push(micros),
                        Err(e) => {
                            failed += 1;
                            eprintln!("serve_load: transport error: {e}");
                            client = connect_retry(addr);
                        }
                    }
                }
                cycle += 1;
            }
            latencies.lock().expect("latency lock").extend(local);
            *errors.lock().expect("error lock") += failed;
        }));
    }
    barrier.wait();
    let started = Instant::now();
    for driver in drivers {
        driver.join().expect("driver thread");
    }
    let elapsed = started.elapsed();

    let mut shutdown = connect_retry(addr);
    let _ = shutdown.request(&Request::Shutdown);
    server_thread.join().expect("server thread");

    let mut all = Arc::try_unwrap(latencies)
        .map(|m| m.into_inner().expect("latency lock"))
        .unwrap_or_default();
    all.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if all.is_empty() {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((all.len() - 1) as f64 * p).round() as usize;
        all[rank.min(all.len() - 1)]
    };
    let errors = *errors.lock().expect("error lock");
    LevelReport {
        connections,
        idle_threads,
        idle_cpu_ms,
        idle_window_ms: u64::try_from(idle_window.as_millis()).unwrap_or(u64::MAX),
        requests: all.len(),
        elapsed_ms: elapsed.as_secs_f64() * 1000.0,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        errors,
    }
}

fn connect_retry(addr: SocketAddr) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr.to_string()) {
            Ok(client) => return client,
            Err(e) => {
                assert!(Instant::now() < deadline, "could not connect to {addr}: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Threads currently alive in this process (`/proc/self/task`).
fn process_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map(|dir| dir.count()).unwrap_or(0)
}

/// User+system CPU milliseconds consumed by this process so far, from
/// `/proc/self/stat` (fields 14/15, assuming the conventional 100 Hz
/// `CLK_TCK`).
fn process_cpu_ms() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else { return 0.0 };
    // comm may contain spaces; everything after the closing paren is
    // space-separated with the state as field 0.
    let Some(rest) = stat.rsplit(')').next() else { return 0.0 };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let ticks = |i: usize| fields.get(i).and_then(|f| f.parse::<f64>().ok()).unwrap_or(0.0);
    (ticks(11) + ticks(12)) * 10.0
}

/// Merges this run's results into `path` under `label`, preserving any
/// entries recorded under other labels.
fn write_report(path: &str, label: &str, reports: &[LevelReport]) {
    let mut kept: Vec<Value> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        if let Ok(value) = parse(&existing) {
            if let Some(results) = value.get("results").and_then(Value::as_arr) {
                let prefix = format!("{label}_");
                kept.extend(
                    results
                        .iter()
                        .filter(|r| {
                            r.get("name")
                                .and_then(Value::as_str)
                                .is_none_or(|name| !name.starts_with(&prefix))
                        })
                        .cloned(),
                );
            }
        }
    }
    #[allow(clippy::cast_precision_loss)]
    for report in reports {
        let req_per_s = if report.elapsed_ms > 0.0 {
            report.requests as f64 / (report.elapsed_ms / 1000.0)
        } else {
            0.0
        };
        kept.push(obj(vec![
            ("name", Value::Str(format!("{label}_{}conn", report.connections))),
            (
                "description",
                Value::Str(format!(
                    "{} server, {} concurrent connections: idle hold then mixed \
                     open/explore/repartition/close cycles",
                    label, report.connections
                )),
            ),
            ("connections", Value::Num(report.connections as f64)),
            ("idle_threads", Value::Num(report.idle_threads as f64)),
            ("idle_cpu_ms", Value::Num((report.idle_cpu_ms * 10.0).round() / 10.0)),
            ("idle_window_ms", Value::Num(report.idle_window_ms as f64)),
            ("requests", Value::Num(report.requests as f64)),
            ("elapsed_ms", Value::Num(report.elapsed_ms.round())),
            ("req_per_s", Value::Num(req_per_s.round())),
            ("p50_us", Value::Num(report.p50_us as f64)),
            ("p99_us", Value::Num(report.p99_us as f64)),
            ("errors", Value::Num(report.errors as f64)),
        ]));
    }
    // Stable presentation order: baseline rows before reactor rows,
    // ascending connection count within a label.
    kept.sort_by_key(|r| {
        let name = r.get("name").and_then(Value::as_str).unwrap_or("").to_owned();
        let conns = r.get("connections").and_then(Value::as_f64).unwrap_or(0.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        (name.starts_with("reactor_"), conns as u64, name)
    });

    let report = obj(vec![
        ("bench", Value::Str("serve_load".to_owned())),
        (
            "command",
            Value::Str(
                "cargo run --release -p chop-bench --bin serve_load -- --label <label>"
                    .to_owned(),
            ),
        ),
        (
            "note",
            Value::Str(
                "request lines are now decoded in place from the connection buffer \
                 (zero-copy LineBuffer views; previously one Vec allocation plus a \
                 full-buffer memmove per request). Pre-change reactor rows for \
                 comparison: 1 conn 18285 req/s (p50 39 us), 64 conn 19159 req/s \
                 (p50 3078 us), 1024 conn 12521 req/s (p50 74677 us)."
                    .to_owned(),
            ),
        ),
        ("date", Value::Str(today())),
        (
            "config",
            obj(vec![
                ("workload", Value::Str("open/explore/repartition/explore/close".to_owned())),
                ("spec", Value::Str("5-node mul/add chain, 2 partitions".to_owned())),
                ("workers", Value::Num(4.0)),
                (
                    "levels",
                    Value::Arr(vec![Value::Num(1.0), Value::Num(64.0), Value::Num(1024.0)]),
                ),
            ]),
        ),
        ("results", Value::Arr(kept)),
    ]);
    let mut text = String::new();
    report.write(&mut text);
    text.push('\n');
    std::fs::write(path, text).expect("write bench report");
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's
/// algorithm), so reports carry a real timestamp without a time crate.
fn today() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let days = i64::try_from(secs / 86_400).unwrap_or(0);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
