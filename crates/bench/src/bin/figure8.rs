//! Regenerates Figure 8: designs considered during experiment 2 for the
//! single-partition implementation (the paper could not keep the larger
//! partitionings in memory without pruning; neither do we need to).

//! Pass `csv` as the first argument to emit the raw points instead of the
//! ASCII scatter.

fn main() {
    let (points, elapsed) = chop_bench::design_space(2, 1);
    if std::env::args().nth(1).as_deref() == Some("csv") {
        print!("{}", chop_bench::to_csv(&points));
    } else {
        print!(
            "{}",
            chop_bench::render_design_space(
                "Figure 8: Some of designs considered during experiment 2 (1 partition)",
                &points,
                elapsed
            )
        );
    }
}
