//! Regenerates Table 2: the MOSIS standard chip-package subset.

use chop_library::standard::table2_packages;

fn main() {
    println!("Table 2: A subset of MOSIS Standard Chip Packages");
    println!(
        "{:>2} | {:>8} | {:>8} | {:>14} | {:>9} | {:>8}",
        "No", "Width", "Height", "Number of Pins", "Pad Delay", "Pad Area"
    );
    println!(
        "{:>2} | {:>8} | {:>8} | {:>14} | {:>9} | {:>8}",
        "", "mil", "mil", "", "ns", "mil²"
    );
    println!("{}", "-".repeat(66));
    for (i, p) in table2_packages().iter().enumerate() {
        println!(
            "{:>2} | {:>8.2} | {:>8.2} | {:>14} | {:>9.1} | {:>8.2}",
            i + 1,
            p.width().value(),
            p.height().value(),
            p.pins(),
            p.pad_delay().value(),
            p.pad_area().value()
        );
    }
}
