//! Regenerates Table 3: statistics on the results from BAD, experiment 1.

fn main() {
    let stats = chop_bench::prediction_stats(1);
    print!(
        "{}",
        chop_bench::render_stats(
            "Table 3: Statistics on the results from BAD for experiment 1",
            &stats
        )
    );
}
