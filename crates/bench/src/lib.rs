//! Experiment harness for the CHOP reproduction.
//!
//! Each binary target regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md` for the index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — the 3 µm module library |
//! | `table2` | Table 2 — the MOSIS package subset |
//! | `figure6` | Fig. 6 — AR lattice filter statistics + DOT dump |
//! | `table3` | Table 3 — BAD statistics, experiment 1 |
//! | `table4` | Table 4 — results of experiment 1 |
//! | `table5` | Table 5 — BAD statistics, experiment 2 |
//! | `table6` | Table 6 — results of experiment 2 |
//! | `figure7` | Fig. 7 — design space of experiment 1 (keep-all) |
//! | `figure8` | Fig. 8 — design space of experiment 2, one partition |
//! | `experiments` | all of the above, in order |
//!
//! The Criterion benches cover the run-time claims (the CPU-time columns
//! and the pruning speedup) and the substrate hot paths.

use std::time::Duration;

use chop_core::prelude::experiments::{
    experiment1_session, experiment2_session, Exp1Config, Exp2Config,
};
use chop_core::prelude::{DesignPoint, Heuristic, SearchOutcome, Session};

/// One row block of Table 4/6: configuration, heuristic and its outcome.
#[derive(Debug)]
pub struct ResultRow {
    /// Partition count.
    pub partitions: usize,
    /// Table 2 package number (1-based, as in the paper).
    pub package_no: usize,
    /// Heuristic used.
    pub heuristic: Heuristic,
    /// Search outcome.
    pub outcome: SearchOutcome,
}

/// Runs experiment 1 for the paper's full row set (both packages, both
/// heuristics, 1–3 partitions).
///
/// # Panics
///
/// Panics if any session fails to build or explore — the canned
/// experiment configurations are known-good.
#[must_use]
pub fn experiment1_rows() -> Vec<ResultRow> {
    let mut rows = Vec::new();
    for &(partitions, package) in &[(1usize, 1usize), (2, 1), (2, 0), (3, 1)] {
        for heuristic in [Heuristic::Enumeration, Heuristic::Iterative] {
            let session =
                experiment1_session(&Exp1Config { partitions, package }).expect("valid config");
            let outcome = session.explore(heuristic).expect("exploration succeeds");
            rows.push(ResultRow { partitions, package_no: package + 1, heuristic, outcome });
        }
    }
    rows
}

/// Runs experiment 2 for the paper's row set (package 2, both heuristics,
/// 1–3 partitions).
///
/// # Panics
///
/// Panics if any session fails to build or explore.
#[must_use]
pub fn experiment2_rows() -> Vec<ResultRow> {
    let mut rows = Vec::new();
    for partitions in 1..=3usize {
        for heuristic in [Heuristic::Iterative, Heuristic::Enumeration] {
            let session = experiment2_session(&Exp2Config { partitions, package: 1 })
                .expect("valid config");
            let outcome = session.explore(heuristic).expect("exploration succeeds");
            rows.push(ResultRow { partitions, package_no: 2, heuristic, outcome });
        }
    }
    rows
}

/// Table 3/5 statistics per partition count (they depend only on BAD and
/// level-1 pruning, not on the search heuristic).
///
/// # Panics
///
/// Panics if a session fails or `experiment` is not 1 or 2.
#[must_use]
pub fn prediction_stats(experiment: u8) -> Vec<(usize, usize, usize)> {
    (1..=3usize)
        .map(|partitions| {
            let session: Session = match experiment {
                1 => experiment1_session(&Exp1Config { partitions, package: 1 })
                    .expect("valid config"),
                2 => experiment2_session(&Exp2Config { partitions, package: 1 })
                    .expect("valid config"),
                other => panic!("unknown experiment {other}"),
            };
            let (_, stats) = session.predict_partitions().expect("prediction succeeds");
            let total: usize = stats.iter().map(|s| s.total).sum();
            let feasible: usize = stats.iter().map(|s| s.feasible).sum();
            (partitions, total, feasible)
        })
        .collect()
}

/// Keep-all design-space dump for the figures: every point examined during
/// an unpruned enumeration.
///
/// # Panics
///
/// Panics if a session fails or `experiment` is not 1 or 2.
#[must_use]
pub fn design_space(experiment: u8, partitions: usize) -> (Vec<DesignPoint>, Duration) {
    let session: Session = match experiment {
        1 => experiment1_session(&Exp1Config { partitions, package: 1 }).expect("valid config"),
        2 => experiment2_session(&Exp2Config { partitions, package: 1 }).expect("valid config"),
        other => panic!("unknown experiment {other}"),
    };
    let outcome = session
        .with_pruning(false)
        .with_keep_all(true)
        .explore(Heuristic::Enumeration)
        .expect("exploration succeeds");
    (outcome.points, outcome.elapsed)
}

/// Renders a Table 4/6 block for a set of rows.
#[must_use]
pub fn render_results(title: &str, rows: &[ResultRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>9} | {:>7} | H | {:>8} | {:>12} | {:>8} | {:>10} | {:>5} | {:>11}",
        "Partition",
        "Package",
        "CPU",
        "Partitioning",
        "Feasible",
        "Initiation",
        "Delay",
        "Clock Cycle"
    );
    let _ = writeln!(
        out,
        "{:>9} | {:>7} |   | {:>8} | {:>12} | {:>8} | {:>10} | {:>5} | {:>11}",
        "Count", "Type", "Time s", "Imp. Trials", "Trials", "Interval", "", "ns"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for row in rows {
        if row.outcome.feasible.is_empty() {
            let _ = writeln!(
                out,
                "{:>9} | {:>7} | {} | {:>8.2} | {:>12} | {:>8} | {:>10} | {:>5} | {:>11}",
                row.partitions,
                row.package_no,
                row.heuristic,
                row.outcome.elapsed.as_secs_f64(),
                row.outcome.trials,
                row.outcome.feasible_trials,
                "-",
                "-",
                "-"
            );
            continue;
        }
        let mut first = true;
        for f in &row.outcome.feasible {
            if first {
                let _ = writeln!(
                    out,
                    "{:>9} | {:>7} | {} | {:>8.2} | {:>12} | {:>8} | {:>10} | {:>5} | {:>11.0}",
                    row.partitions,
                    row.package_no,
                    row.heuristic,
                    row.outcome.elapsed.as_secs_f64(),
                    row.outcome.trials,
                    row.outcome.feasible_trials,
                    f.system.initiation_interval.value(),
                    f.system.delay.value(),
                    f.system.clock.likely(),
                );
                first = false;
            } else {
                let _ = writeln!(
                    out,
                    "{:>9} | {:>7} |   | {:>8} | {:>12} | {:>8} | {:>10} | {:>5} | {:>11.0}",
                    "",
                    "",
                    "",
                    "",
                    "",
                    f.system.initiation_interval.value(),
                    f.system.delay.value(),
                    f.system.clock.likely(),
                );
            }
        }
    }
    out
}

/// Renders a Table 3/5 block.
#[must_use]
pub fn render_stats(title: &str, stats: &[(usize, usize, usize)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>15} | {:>27} | {:>30}",
        "Partition Count", "Total number of predictions", "Number of feasible predictions"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for (k, total, feasible) in stats {
        let _ = writeln!(out, "{k:>15} | {total:>27} | {feasible:>30}");
    }
    out
}

/// Renders design points as CSV (`delay_ns,area_mil2,initiation_ns,
/// feasible`) for external plotting of the Figure 7/8 scatters.
#[must_use]
pub fn to_csv(points: &[DesignPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("delay_ns,area_mil2,initiation_ns,feasible\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.1},{:.1},{:.1},{}",
            p.delay_ns,
            p.area,
            p.initiation_ns,
            u8::from(p.feasible)
        );
    }
    out
}

/// Renders a figure-style design-space dump: point count, unique count and
/// an ASCII scatter of delay (x) vs area (y).
#[must_use]
pub fn render_design_space(title: &str, points: &[DesignPoint], elapsed: Duration) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut keys: Vec<_> = points.iter().map(DesignPoint::unique_key).collect();
    keys.sort_unstable();
    keys.dedup();
    let _ = writeln!(
        out,
        "{title}: {} designs considered ({} unique) in {:.2} s",
        points.len(),
        keys.len(),
        elapsed.as_secs_f64()
    );
    if points.is_empty() {
        return out;
    }
    let (mut min_d, mut max_d) = (f64::INFINITY, 0.0f64);
    let (mut min_a, mut max_a) = (f64::INFINITY, 0.0f64);
    for p in points {
        min_d = min_d.min(p.delay_ns);
        max_d = max_d.max(p.delay_ns);
        min_a = min_a.min(p.area);
        max_a = max_a.max(p.area);
    }
    const W: usize = 64;
    const H: usize = 20;
    let mut grid = vec![[' '; W]; H];
    for p in points {
        let x = if max_d > min_d {
            ((p.delay_ns - min_d) / (max_d - min_d) * (W - 1) as f64) as usize
        } else {
            0
        };
        let y = if max_a > min_a {
            ((p.area - min_a) / (max_a - min_a) * (H - 1) as f64) as usize
        } else {
            0
        };
        let cell = &mut grid[H - 1 - y][x.min(W - 1)];
        if p.feasible {
            *cell = '*';
        } else if *cell != '*' {
            *cell = '.';
        }
    }
    let _ = writeln!(out, "area {max_a:>10.0} mil² ┐ (* feasible, . infeasible)");
    for row in &grid {
        let _ = writeln!(out, "  {}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "area {min_a:>10.0} mil² ┘");
    let _ = writeln!(out, "  delay: {min_d:.0} ns … {max_d:.0} ns (left to right)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_render() {
        let s = prediction_stats(1);
        assert_eq!(s.len(), 3);
        let text = render_stats("Table 3", &s);
        assert!(text.contains("Table 3"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn design_space_renders_scatter() {
        let (points, elapsed) = design_space(1, 1);
        assert!(!points.is_empty());
        let text = render_design_space("Figure 7 (1 partition)", &points, elapsed);
        assert!(text.contains("designs considered"));
        assert!(text.contains('*') || text.contains('.'));
    }

    #[test]
    fn experiment1_rows_cover_paper_blocks() {
        let rows = experiment1_rows();
        // 4 configurations × 2 heuristics.
        assert_eq!(rows.len(), 8);
        let text = render_results("Table 4", &rows);
        assert!(text.contains("Clock Cycle"));
    }
}
