//! The BAD prediction sweep.

use std::collections::BTreeMap;
use std::fmt;

use chop_dfg::{analysis, Dfg, OpClass};
use chop_library::{Library, LibraryError, ModuleSet};
use chop_sched::lifetime::{max_live_bits_pipelined_where, max_live_bits_where};
use chop_sched::pipeline::min_initiation_interval;
use chop_sched::{list_schedule, NodeSpec, ResourceMap, ScheduleError};
use chop_stat::units::Bits;
use chop_stat::Estimate;

use crate::area::{wiring_area, PlaSpec};
use crate::clock::ClockConfig;
use crate::params::PredictorParams;
use crate::prediction::{DesignDetail, PredictedDesign};
use crate::style::{ArchitectureStyle, DesignStyle, OperationTiming};

/// Error produced by [`Predictor::predict`].
#[derive(Debug)]
pub enum PredictError {
    /// The library cannot implement the partition (missing class, register
    /// or multiplexer).
    Library(LibraryError),
    /// Internal scheduling failed (should not happen for validated inputs).
    Schedule(ScheduleError),
    /// No module set fits the architecture style (e.g. every multiplier is
    /// slower than the single-cycle datapath clock).
    NoUsableModuleSet,
    /// The predictor panicked; the payload is the panic message. Produced
    /// by callers that isolate a prediction with `catch_unwind` so one
    /// poisoned partition cannot abort a whole exploration.
    Panicked(String),
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::Library(e) => write!(f, "library cannot serve partition: {e}"),
            PredictError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            PredictError::NoUsableModuleSet => {
                write!(f, "no module set fits the architecture style and clocking")
            }
            PredictError::Panicked(message) => {
                write!(f, "predictor panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PredictError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PredictError::Library(e) => Some(e),
            PredictError::Schedule(e) => Some(e),
            PredictError::NoUsableModuleSet | PredictError::Panicked(_) => None,
        }
    }
}

impl From<LibraryError> for PredictError {
    fn from(e: LibraryError) -> Self {
        PredictError::Library(e)
    }
}

impl From<ScheduleError> for PredictError {
    fn from(e: ScheduleError) -> Self {
        PredictError::Schedule(e)
    }
}

/// The Behavioral Area-Delay predictor.
///
/// See the [crate-level documentation](crate) for the model and an example.
#[derive(Debug, Clone)]
pub struct Predictor {
    library: Library,
    clocks: ClockConfig,
    style: ArchitectureStyle,
    params: PredictorParams,
}

impl Predictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`PredictorParams::assert_valid`].
    #[must_use]
    pub fn new(
        library: Library,
        clocks: ClockConfig,
        style: ArchitectureStyle,
        params: PredictorParams,
    ) -> Self {
        params.assert_valid();
        Self { library, clocks, style, params }
    }

    /// The component library in use.
    #[must_use]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The clock configuration in use.
    #[must_use]
    pub fn clocks(&self) -> &ClockConfig {
        &self.clocks
    }

    /// The architecture style in use.
    #[must_use]
    pub fn style(&self) -> &ArchitectureStyle {
        &self.style
    }

    /// The model parameters in use.
    #[must_use]
    pub fn params(&self) -> &PredictorParams {
        &self.params
    }

    /// Enumerates predicted implementations of a partition.
    ///
    /// Sweeps every module set × functional-unit allocation × design style
    /// the architecture allows, schedules each candidate and attaches the
    /// full area/overhead model. No pruning happens here — that is CHOP's
    /// job ([`crate::prune`]), so the caller can also observe the whole
    /// design space (paper Figures 7/8).
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::Library`] if the library lacks a register, a
    /// multiplexer or a module for a class used by the partition, and
    /// [`PredictError::NoUsableModuleSet`] if the style/clocking excludes
    /// every module set (single-cycle operation with a datapath cycle
    /// shorter than every module of some class).
    pub fn predict(&self, dfg: &Dfg) -> Result<Vec<PredictedDesign>, PredictError> {
        let hist = dfg.op_histogram();
        let classes = hist.classes();
        self.library.check_supports(classes.iter().copied())?;

        if classes.is_empty() {
            return Ok(vec![self.trivial_design(dfg)]);
        }

        let peak = peak_parallelism(dfg, &classes);
        let mut designs = Vec::new();
        let mut any_set_usable = false;

        for module_set in self.library.module_sets(classes.iter().copied()) {
            let Some(durations) = self.class_durations(&module_set, &classes) else {
                continue; // module set unusable for this style
            };
            any_set_usable = true;
            let specs = NodeSpec::from_fn(
                dfg,
                |id| match dfg.node(id).op() {
                    op if op.is_memory_access() => 1,
                    op => op.class().map_or(0, |c| durations[&c]),
                },
                |id| dfg.node(id).op().class(),
            );
            for allocation in allocation_sweep(
                &classes,
                &hist,
                &peak,
                self.params.max_units_per_class,
                self.params.allocation_sweep,
            ) {
                let schedule = list_schedule(dfg, &specs, &allocation)?;
                let stages = schedule.makespan().max(1);
                for style in self.style.styles() {
                    let (ii_dp, latency_dp) = match style {
                        DesignStyle::NonPipelined => (stages, stages),
                        DesignStyle::Pipelined => {
                            let ii =
                                min_initiation_interval(dfg, &specs, &schedule, &allocation);
                            if ii >= stages {
                                // Degenerates to the non-pipelined design.
                                continue;
                            }
                            (ii, stages)
                        }
                    };
                    // Hardwired constants and externally buffered primary
                    // inputs don't occupy datapath registers; the input
                    // buffering lives in CHOP's data-transfer modules.
                    let keep = |e: &chop_dfg::Edge| {
                        !matches!(
                            dfg.node(e.src()).op(),
                            chop_dfg::Operation::Const | chop_dfg::Operation::Input
                        )
                    };
                    let register_bits = match style {
                        DesignStyle::Pipelined => {
                            max_live_bits_pipelined_where(dfg, &schedule, ii_dp, keep)
                        }
                        DesignStyle::NonPipelined => max_live_bits_where(dfg, &schedule, keep),
                    };
                    designs.push(self.assemble(
                        dfg,
                        &module_set,
                        &allocation,
                        &hist,
                        &durations,
                        style,
                        stages,
                        ii_dp,
                        latency_dp,
                        register_bits,
                    ));
                }
            }
        }
        if !any_set_usable {
            return Err(PredictError::NoUsableModuleSet);
        }
        Ok(designs)
    }

    /// Duration (datapath cycles) of each class under a module set, or
    /// `None` if the set is unusable for the architecture style.
    fn class_durations(
        &self,
        module_set: &ModuleSet,
        classes: &[OpClass],
    ) -> Option<BTreeMap<OpClass, u64>> {
        let mut durations = BTreeMap::new();
        for &class in classes {
            let module = module_set.module_for(&self.library, class)?;
            let cycles = match self.style.timing() {
                OperationTiming::SingleCycle => {
                    if module.delay().value() > self.clocks.datapath_cycle().value() {
                        return None;
                    }
                    1
                }
                OperationTiming::MultiCycle => self.clocks.datapath_cycles_for(module.delay()),
            };
            durations.insert(class, cycles);
        }
        Some(durations)
    }

    /// Full area/overhead model for one scheduled candidate.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        dfg: &Dfg,
        module_set: &ModuleSet,
        allocation: &ResourceMap,
        hist: &chop_dfg::OpHistogram,
        durations: &BTreeMap<OpClass, u64>,
        style: DesignStyle,
        stages: u64,
        ii_dp: u64,
        latency_dp: u64,
        register_bits: Bits,
    ) -> PredictedDesign {
        let word = Bits::new(16);
        let register = self.library.register().expect("checked by check_supports");
        let mux = self.library.multiplexer().expect("checked by check_supports");

        // Functional-unit area and steering estimate.
        let mut fu_area = 0.0;
        let mut fu_power = 0.0;
        let mut word_muxes = 0u64;
        let mut total_units = 0u64;
        let mut max_ops_per_unit = 1u64;
        for (class, units) in allocation.iter() {
            let module = module_set
                .module_for(&self.library, class)
                .expect("allocation classes come from the module set");
            fu_area += module.area().value() * units as f64;
            // Dynamic power scales with utilization: the fraction of one
            // initiation interval each unit spends busy.
            let busy_cycles = hist.count_class(class) as f64 * durations[&class] as f64;
            let utilization = (busy_cycles / (units as f64 * ii_dp as f64)).min(1.0);
            fu_power += module.power().value() * units as f64 * utilization;
            let ops = hist.count_class(class) as u64;
            let units = units as u64;
            total_units += units;
            let ops_per_unit = ops.div_ceil(units.max(1));
            max_ops_per_unit = max_ops_per_unit.max(ops_per_unit);
            // Two input ports per unit, one 2:1 mux tree level per extra
            // source feeding each port.
            word_muxes += units * 2 * ops_per_unit.saturating_sub(1);
        }
        // Register-file input steering: roughly one 2:1 slice per stored bit.
        let mux_count = word_muxes * word.value() + register_bits.value();
        let reg_words = register_bits.value().div_ceil(word.value());

        // Controller: one state per schedule step, controls for mux selects,
        // register enables and unit strobes.
        let control_outputs =
            u32::try_from(word_muxes + reg_words + total_units).unwrap_or(u32::MAX);
        let controller = PlaSpec::for_fsm(stages, control_outputs, 2);

        let reg_area = register.area_at_width(register_bits).value();
        let mux_area = mux.area().value() * mux_count as f64;
        let pla_area = controller.area(&self.params).value();
        let active = fu_area + reg_area + mux_area + pla_area;
        let wiring = wiring_area(chop_stat::units::SquareMils::new(active), &self.params);
        let total_area = active + wiring.value();
        let area = Estimate::with_spreads(
            total_area,
            self.params.area_spread_below,
            self.params.area_spread_above,
        );

        // Clock-cycle overhead: register prop/setup + mux tree + wiring
        // (scaling with the block's linear dimension) + controller.
        let mux_levels = (64 - max_ops_per_unit.leading_zeros()).max(1);
        let overhead_ns = register.delay().value()
            + mux.delay().value() * f64::from(mux_levels)
            + self.params.wiring_delay_factor * active.sqrt()
            + controller.delay(&self.params).value();
        let clock_overhead = Estimate::with_spreads(
            overhead_ns,
            self.params.delay_spread_below,
            self.params.delay_spread_above,
        );

        // Power: utilization-scaled functional units plus steering,
        // storage and controller overhead at half activity.
        let overhead_power =
            (reg_area + mux_area + pla_area) * chop_library::DEFAULT_POWER_DENSITY * 0.5;
        let power = Estimate::with_spreads(
            fu_power + overhead_power,
            self.params.area_spread_below,
            self.params.area_spread_above,
        );

        // Memory bandwidth: accesses per initiation per block.
        let mut memory_bandwidth = BTreeMap::new();
        for (id, node) in dfg.nodes() {
            let _ = id;
            if let Some(m) = node.op().memory() {
                *memory_bandwidth.entry(m.index()).or_insert(0) += 1;
            }
        }

        PredictedDesign::new(
            style,
            module_set.clone(),
            allocation.clone(),
            self.clocks.datapath_to_main(ii_dp),
            self.clocks.datapath_to_main(latency_dp),
            area,
            clock_overhead,
            power,
            DesignDetail { stages, register_bits, mux_count, controller },
            memory_bandwidth,
        )
    }

    /// A zero-datapath design for partitions with no functional-unit
    /// operations (pure routing / memory staging).
    fn trivial_design(&self, dfg: &Dfg) -> PredictedDesign {
        let mut memory_bandwidth = BTreeMap::new();
        for (_, node) in dfg.nodes() {
            if let Some(m) = node.op().memory() {
                *memory_bandwidth.entry(m.index()).or_insert(0) += 1;
            }
        }
        let controller = PlaSpec::for_fsm(1, 1, 1);
        let area = controller.area(&self.params).value();
        PredictedDesign::new(
            DesignStyle::NonPipelined,
            ModuleSet::empty(),
            ResourceMap::new(),
            self.clocks.datapath_to_main(1),
            self.clocks.datapath_to_main(1),
            Estimate::with_spreads(
                area,
                self.params.area_spread_below,
                self.params.area_spread_above,
            ),
            Estimate::exact(0.0),
            Estimate::exact(area * chop_library::DEFAULT_POWER_DENSITY * 0.5),
            DesignDetail { stages: 1, register_bits: Bits::zero(), mux_count: 0, controller },
            memory_bandwidth,
        )
    }
}

/// Peak concurrency per class under unit-delay ASAP — a sound cap on how
/// many units of a class can ever be busy simultaneously with a
/// dependence-respecting schedule at unit granularity.
fn peak_parallelism(dfg: &Dfg, classes: &[OpClass]) -> BTreeMap<OpClass, usize> {
    let levels = analysis::asap_levels(dfg);
    let mut per_level: BTreeMap<(OpClass, u32), usize> = BTreeMap::new();
    for (id, node) in dfg.nodes() {
        if let Some(class) = node.op().class() {
            *per_level.entry((class, levels[id.index()])).or_insert(0) += 1;
        }
    }
    let mut peak = BTreeMap::new();
    for &class in classes {
        let p = per_level
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(1);
        peak.insert(class, p.max(1));
    }
    peak
}

/// Cartesian sweep of unit counts: for each class, the strategy's counts
/// up to `min(op count, peak parallelism, cap)` instances.
fn allocation_sweep(
    classes: &[OpClass],
    hist: &chop_dfg::OpHistogram,
    peak: &BTreeMap<OpClass, usize>,
    cap: usize,
    strategy: crate::params::AllocationSweep,
) -> Vec<ResourceMap> {
    let ranges: Vec<(OpClass, Vec<usize>)> = classes
        .iter()
        .map(|&c| {
            let max = hist.count_class(c).min(peak[&c]).min(cap).max(1);
            (c, strategy.counts(max))
        })
        .collect();
    let mut result = vec![ResourceMap::new()];
    for (class, counts) in ranges {
        let mut next = Vec::with_capacity(result.len() * counts.len());
        for alloc in &result {
            for &n in &counts {
                let mut a = alloc.clone();
                a.set(class, n);
                next.push(a);
            }
        }
        result = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;
    use chop_library::standard::table1_library;
    use chop_stat::units::Nanos;

    use super::*;

    fn exp1_predictor() -> Predictor {
        Predictor::new(
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap(),
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
        )
    }

    fn exp2_predictor() -> Predictor {
        Predictor::new(
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
            ArchitectureStyle::multi_cycle(),
            PredictorParams::default(),
        )
    }

    #[test]
    fn exp1_produces_designs() {
        let designs = exp1_predictor().predict(&benchmarks::ar_lattice_filter()).unwrap();
        // Order-of-magnitude check against Table 3 (111 predictions for the
        // single-partition case).
        assert!(designs.len() >= 40, "got {}", designs.len());
        assert!(designs.len() <= 1000, "got {}", designs.len());
    }

    #[test]
    fn exp2_space_is_larger_than_exp1() {
        let ar = benchmarks::ar_lattice_filter();
        let d1 = exp1_predictor().predict(&ar).unwrap();
        let d2 = exp2_predictor().predict(&ar).unwrap();
        // Table 5 vs Table 3: the multi-cycle space is strictly larger
        // (656 vs 111 in the paper) because slow modules become usable.
        assert!(d2.len() > d1.len(), "exp2 {} <= exp1 {}", d2.len(), d1.len());
    }

    #[test]
    fn single_cycle_excludes_slow_multipliers() {
        let designs = exp1_predictor().predict(&benchmarks::ar_lattice_filter()).unwrap();
        for d in &designs {
            let name = d.module_set().name_for(OpClass::Multiplication).unwrap();
            // mul3 (7370 ns) cannot fit a 3000 ns single-cycle datapath.
            assert_ne!(name, "mul3");
        }
    }

    #[test]
    fn multi_cycle_admits_all_multipliers() {
        let designs = exp2_predictor().predict(&benchmarks::ar_lattice_filter()).unwrap();
        let names: std::collections::BTreeSet<&str> = designs
            .iter()
            .filter_map(|d| d.module_set().name_for(OpClass::Multiplication))
            .collect();
        assert!(names.contains("mul1"));
        assert!(names.contains("mul2"));
        assert!(names.contains("mul3"));
    }

    #[test]
    fn pipelined_designs_have_shorter_ii() {
        let designs = exp2_predictor().predict(&benchmarks::ar_lattice_filter()).unwrap();
        let pipelined: Vec<_> =
            designs.iter().filter(|d| d.style() == DesignStyle::Pipelined).collect();
        assert!(!pipelined.is_empty());
        for d in pipelined {
            assert!(d.initiation_interval().value() < d.latency().value());
        }
    }

    #[test]
    fn more_units_cost_more_area_and_less_time() {
        let designs = exp2_predictor().predict(&benchmarks::ar_lattice_filter()).unwrap();
        // Compare fully-serial vs widest allocation for one module set and
        // non-pipelined style.
        let target_set = designs[0].module_set().clone();
        let np: Vec<_> = designs
            .iter()
            .filter(|d| d.style() == DesignStyle::NonPipelined && *d.module_set() == target_set)
            .collect();
        let serial = np
            .iter()
            .min_by_key(|d| {
                d.allocation().get(OpClass::Multiplication)
                    + d.allocation().get(OpClass::Addition)
            })
            .unwrap();
        let parallel = np
            .iter()
            .max_by_key(|d| {
                d.allocation().get(OpClass::Multiplication)
                    + d.allocation().get(OpClass::Addition)
            })
            .unwrap();
        assert!(parallel.area().likely() > serial.area().likely());
        assert!(parallel.latency() <= serial.latency());
    }

    #[test]
    fn trivial_partition_predicted() {
        use chop_dfg::{DfgBuilder, Operation};
        use chop_stat::units::Bits;
        let mut b = DfgBuilder::new();
        let i = b.node(Operation::Input, Bits::new(16));
        let o = b.node(Operation::Output, Bits::new(16));
        b.connect(i, o).unwrap();
        let g = b.build().unwrap();
        let designs = exp1_predictor().predict(&g).unwrap();
        assert_eq!(designs.len(), 1);
        assert_eq!(designs[0].detail().register_bits.value(), 0);
    }

    #[test]
    fn missing_class_is_reported() {
        let g = benchmarks::diffeq(); // needs a comparator
        let err = exp1_predictor().predict(&g).unwrap_err();
        assert!(matches!(err, PredictError::Library(LibraryError::NoImplementation(_))));
    }

    #[test]
    fn no_usable_module_set_reported() {
        // A 100 ns single-cycle datapath clock is faster than every adder
        // except add1 (34), but slower than no multiplier except none —
        // mul1 is 375 ns, so multiplication has no usable module.
        let p = Predictor::new(
            table1_library(),
            ClockConfig::new(Nanos::new(100.0), 1, 1).unwrap(),
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
        );
        let err = p.predict(&benchmarks::ar_lattice_filter()).unwrap_err();
        assert!(matches!(err, PredictError::NoUsableModuleSet));
    }

    #[test]
    fn guidelines_render() {
        let lib = table1_library();
        let designs = exp2_predictor().predict(&benchmarks::fir_filter(4)).unwrap();
        let text = designs[0].guideline(&lib);
        assert!(text.contains("registers"));
        assert!(text.contains("multiplexers"));
    }

    #[test]
    fn powers_of_two_sweep_shrinks_the_space_but_keeps_extremes() {
        use crate::params::AllocationSweep;
        let ar = benchmarks::ar_lattice_filter();
        let full = exp2_predictor().predict(&ar).unwrap();
        let coarse = Predictor::new(
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
            ArchitectureStyle::multi_cycle(),
            PredictorParams {
                allocation_sweep: AllocationSweep::PowersOfTwo,
                ..PredictorParams::default()
            },
        )
        .predict(&ar)
        .unwrap();
        assert!(coarse.len() < full.len());
        // The fastest and slowest points survive the coarse sweep.
        let extreme = |designs: &[PredictedDesign]| {
            let min = designs.iter().map(|d| d.initiation_interval()).min().unwrap();
            let max = designs.iter().map(|d| d.initiation_interval()).max().unwrap();
            (min, max)
        };
        assert_eq!(extreme(&coarse), extreme(&full));
    }

    #[test]
    fn power_positive_and_rises_with_throughput() {
        let designs = exp2_predictor().predict(&benchmarks::ar_lattice_filter()).unwrap();
        for d in &designs {
            assert!(d.power().likely() > 0.0);
        }
        // Among designs sharing a module set, the fastest initiation
        // interval burns at least as much functional-unit power as the
        // slowest (utilization ≥).
        let set = designs[0].module_set().clone();
        let same: Vec<_> = designs.iter().filter(|d| *d.module_set() == set).collect();
        let fast = same.iter().min_by_key(|d| d.initiation_interval()).unwrap();
        let slow = same.iter().max_by_key(|d| d.initiation_interval()).unwrap();
        assert!(
            fast.power().likely() >= slow.power().likely() * 0.5,
            "fast {} vs slow {}",
            fast.power().likely(),
            slow.power().likely()
        );
    }

    #[test]
    fn memory_bandwidth_counted() {
        use chop_dfg::{DfgBuilder, MemoryRef, Operation};
        use chop_stat::units::Bits;
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        let m = MemoryRef::new(0);
        let r1 = b.node(Operation::MemRead(m), w);
        let r2 = b.node(Operation::MemRead(m), w);
        let addr = b.node(Operation::Input, w);
        b.connect(addr, r1).unwrap();
        b.connect(addr, r2).unwrap();
        let a = b.node(Operation::Add, w);
        b.connect(r1, a).unwrap();
        b.connect(r2, a).unwrap();
        let o = b.node(Operation::Output, w);
        b.connect(a, o).unwrap();
        let g = b.build().unwrap();
        let designs = exp2_predictor().predict(&g).unwrap();
        assert_eq!(designs[0].memory_bandwidth().get(&0), Some(&2));
    }
}
