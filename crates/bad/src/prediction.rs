//! Predicted implementations of a partition.

use std::collections::BTreeMap;
use std::fmt;

use chop_dfg::OpClass;
use chop_library::{Library, ModuleSet};
use chop_sched::ResourceMap;
use chop_stat::units::{Bits, Cycles};
use chop_stat::Estimate;
use serde::{Deserialize, Serialize};

use crate::area::PlaSpec;
use crate::style::DesignStyle;

/// Structural detail of a predicted design — the "design decisions and
/// prediction results" CHOP outputs as a guideline for the designer
/// (paper §3.1 lists exactly these: design style and stages, module
/// library, adder/multiplier counts, register bits, 1-bit 2-to-1
/// multiplexers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignDetail {
    /// Schedule length in datapath cycles ("stages").
    pub stages: u64,
    /// Register bits in the datapath.
    pub register_bits: Bits,
    /// 1-bit 2:1 multiplexer slices.
    pub mux_count: u64,
    /// The predicted PLA controller.
    pub controller: PlaSpec,
}

/// One predicted implementation of a partition, as produced by BAD.
///
/// Performance (`initiation_interval`) and delay (`latency`) are in *main*
/// clock cycles so CHOP can mix partitions with different datapath clocks;
/// area and clock-cycle overhead are probability triplets.
///
/// # Examples
///
/// ```
/// use chop_bad::{ArchitectureStyle, ClockConfig, Predictor, PredictorParams};
/// use chop_dfg::benchmarks;
/// use chop_library::standard::table1_library;
/// use chop_stat::units::Nanos;
///
/// let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1)?;
/// let predictor = Predictor::new(
///     table1_library(), clocks, ArchitectureStyle::single_cycle(),
///     PredictorParams::default(),
/// );
/// let designs = predictor.predict(&benchmarks::ar_lattice_filter())?;
/// let d = &designs[0];
/// assert!(d.initiation_interval().value() >= 1);
/// assert!(d.latency().value() >= d.initiation_interval().value());
/// assert!(d.area().likely() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictedDesign {
    style: DesignStyle,
    module_set: ModuleSet,
    allocation: ResourceMap,
    initiation_interval: Cycles,
    latency: Cycles,
    area: Estimate,
    clock_overhead: Estimate,
    power: Estimate,
    detail: DesignDetail,
    memory_bandwidth: BTreeMap<u32, u64>,
}

impl PredictedDesign {
    /// Assembles a predicted design (used by the predictor and by tests
    /// that need synthetic predictions).
    ///
    /// # Panics
    ///
    /// Panics if the initiation interval is zero or exceeds the latency.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        style: DesignStyle,
        module_set: ModuleSet,
        allocation: ResourceMap,
        initiation_interval: Cycles,
        latency: Cycles,
        area: Estimate,
        clock_overhead: Estimate,
        power: Estimate,
        detail: DesignDetail,
        memory_bandwidth: BTreeMap<u32, u64>,
    ) -> Self {
        assert!(initiation_interval.value() >= 1, "initiation interval must be positive");
        assert!(
            initiation_interval.value() <= latency.value(),
            "initiation interval cannot exceed latency"
        );
        Self {
            style,
            module_set,
            allocation,
            initiation_interval,
            latency,
            area,
            clock_overhead,
            power,
            detail,
            memory_bandwidth,
        }
    }

    /// The design style.
    #[must_use]
    pub fn style(&self) -> DesignStyle {
        self.style
    }

    /// The chosen module per operation class.
    #[must_use]
    pub fn module_set(&self) -> &ModuleSet {
        &self.module_set
    }

    /// Functional units allocated per class.
    #[must_use]
    pub fn allocation(&self) -> &ResourceMap {
        &self.allocation
    }

    /// Cycles between successive initiations, in main-clock cycles.
    #[must_use]
    pub fn initiation_interval(&self) -> Cycles {
        self.initiation_interval
    }

    /// Input-to-output latency, in main-clock cycles.
    #[must_use]
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Predicted silicon area (functional units, registers, multiplexers,
    /// controller and wiring), in mil².
    #[must_use]
    pub fn area(&self) -> Estimate {
        self.area
    }

    /// Delay this design adds to its clock cycle (register, multiplexer,
    /// wiring and controller delays), in ns.
    #[must_use]
    pub fn clock_overhead(&self) -> Estimate {
        self.clock_overhead
    }

    /// Predicted power consumption in mW (functional units scaled by
    /// utilization, plus steering/storage/controller overhead) — the power
    /// extension the paper lists as future research.
    #[must_use]
    pub fn power(&self) -> Estimate {
        self.power
    }

    /// Structural details (stages, registers, muxes, controller).
    #[must_use]
    pub fn detail(&self) -> &DesignDetail {
        &self.detail
    }

    /// Accesses per initiation for each referenced memory block.
    #[must_use]
    pub fn memory_bandwidth(&self) -> &BTreeMap<u32, u64> {
        &self.memory_bandwidth
    }

    /// Whether this design is at least as good as `other` on every axis
    /// (most-likely area, initiation interval, latency) and strictly better
    /// on at least one — the "inferiority" relation behind CHOP's pruning.
    #[must_use]
    pub fn dominates(&self, other: &PredictedDesign) -> bool {
        let le = self.area.likely() <= other.area.likely()
            && self.initiation_interval <= other.initiation_interval
            && self.latency <= other.latency;
        let lt = self.area.likely() < other.area.likely()
            || self.initiation_interval < other.initiation_interval
            || self.latency < other.latency;
        le && lt
    }

    /// A stable key identifying the *externally observable* design point
    /// (style, II, latency, rounded area) — used to count unique designs in
    /// the paper's Figures 7/8.
    #[must_use]
    pub fn design_point_key(&self) -> (u8, u64, u64, u64) {
        (
            match self.style {
                DesignStyle::Pipelined => 0,
                DesignStyle::NonPipelined => 1,
            },
            self.initiation_interval.value(),
            self.latency.value(),
            self.area.likely().round() as u64,
        )
    }

    /// Renders the §3.1-style designer guideline for this design.
    ///
    /// # Examples
    ///
    /// ```
    /// use chop_bad::{ArchitectureStyle, ClockConfig, Predictor, PredictorParams};
    /// use chop_dfg::benchmarks;
    /// use chop_library::standard::table1_library;
    /// use chop_stat::units::Nanos;
    ///
    /// let clocks = ClockConfig::new(Nanos::new(300.0), 1, 1)?;
    /// let lib = table1_library();
    /// let predictor = Predictor::new(
    ///     lib.clone(), clocks, ArchitectureStyle::multi_cycle(),
    ///     PredictorParams::default(),
    /// );
    /// let designs = predictor.predict(&benchmarks::fir_filter(4))?;
    /// let text = designs[0].guideline(&lib);
    /// assert!(text.contains("design style"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn guideline(&self, library: &Library) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "- a {} design style with {} stages,",
            self.style, self.detail.stages
        );
        let modules: Vec<String> =
            self.module_set.iter().map(|(_, name)| name.to_owned()).collect();
        if !modules.is_empty() {
            let _ = writeln!(out, "- module library of {},", modules.join(" and "));
        }
        let fu: Vec<String> = self
            .allocation
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(class, n)| {
                let unit = match class {
                    OpClass::Addition => "adder(s)",
                    OpClass::Multiplication => "multiplier(s)",
                    _ => "unit(s)",
                };
                let name = self
                    .module_set
                    .module_for(library, class)
                    .map(|m| format!(" [{}]", m.name()))
                    .unwrap_or_default();
                format!("{n} {unit}{name}")
            })
            .collect();
        if !fu.is_empty() {
            let _ = writeln!(out, "- {},", fu.join(" and "));
        }
        let _ = writeln!(
            out,
            "- {} bits of registers for the data path,",
            self.detail.register_bits.value()
        );
        let _ = writeln!(out, "- {} 1-bit 2-to-1 multiplexers,", self.detail.mux_count);
        let _ = writeln!(out, "- a {} controller.", self.detail.controller);
        out
    }
}

impl fmt::Display for PredictedDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} II={} L={} area={}",
            self.style,
            self.initiation_interval.value(),
            self.latency.value(),
            self.area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(ii: u64, lat: u64, area: f64) -> PredictedDesign {
        PredictedDesign::new(
            DesignStyle::NonPipelined,
            ModuleSet::empty(),
            ResourceMap::new(),
            Cycles::new(ii),
            Cycles::new(lat),
            Estimate::with_spread(area, 0.1),
            Estimate::exact(10.0),
            Estimate::exact(100.0),
            DesignDetail {
                stages: lat,
                register_bits: Bits::new(32),
                mux_count: 8,
                controller: PlaSpec::new(3, 4, 8),
            },
            BTreeMap::new(),
        )
    }

    #[test]
    fn dominance_is_strict_pareto() {
        let a = mk(10, 20, 1000.0);
        let better = mk(8, 20, 1000.0);
        let worse = mk(12, 25, 2000.0);
        let tradeoff = mk(8, 20, 2000.0);
        assert!(better.dominates(&a));
        assert!(a.dominates(&worse));
        assert!(!a.dominates(&a.clone()));
        assert!(!tradeoff.dominates(&a));
        assert!(!a.dominates(&tradeoff));
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_ii_panics() {
        let _ = mk(0, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "exceed latency")]
    fn ii_beyond_latency_panics() {
        let _ = mk(20, 10, 1.0);
    }

    #[test]
    fn design_point_key_discriminates() {
        assert_ne!(
            mk(10, 20, 1000.0).design_point_key(),
            mk(11, 20, 1000.0).design_point_key()
        );
        assert_eq!(
            mk(10, 20, 1000.4).design_point_key(),
            mk(10, 20, 1000.0).design_point_key()
        );
    }

    #[test]
    fn display_mentions_style() {
        assert!(mk(5, 5, 10.0).to_string().contains("non-pipelined"));
    }
}
