//! BAD — the Behavioral Area-Delay predictor embedded in CHOP.
//!
//! Given a partition's behavioral specification (a [`chop_dfg::Dfg`]), a
//! component library, a clocking configuration and an architecture style,
//! BAD enumerates *predicted implementations*: for every module set, every
//! functional-unit allocation and both design styles it schedules the
//! partition, predicts registers, multiplexers, PLA controller, wiring and
//! clock-cycle overhead, and reports area/performance/delay as probability
//! triplets (paper §2.4: "BAD considers pipelined and non-pipelined design
//! styles, includes all possible module-set combinations, considers
//! serial-parallel tradeoffs and performs detailed predictions on register
//! and multiplexer allocation, PLA-based controller area, and standard cell
//! routing area, as well as the additional delays introduced to the clock
//! cycle").
//!
//! # Examples
//!
//! ```
//! use chop_bad::{ArchitectureStyle, ClockConfig, Predictor, PredictorParams};
//! use chop_dfg::benchmarks;
//! use chop_library::standard::table1_library;
//! use chop_stat::units::Nanos;
//!
//! // Experiment-1 clocking: 300 ns main clock, datapath 10× slower.
//! let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1)?;
//! let predictor = Predictor::new(
//!     table1_library(),
//!     clocks,
//!     ArchitectureStyle::single_cycle(),
//!     PredictorParams::default(),
//! );
//! let designs = predictor.predict(&benchmarks::ar_lattice_filter())?;
//! assert!(!designs.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
mod clock;
mod params;
mod prediction;
mod predictor;
pub mod prune;
mod style;

pub use clock::{ClockConfig, ClockConfigError};
pub use params::{AllocationSweep, PredictorParams};
pub use prediction::{DesignDetail, PredictedDesign};
pub use predictor::{PredictError, Predictor};
pub use prune::{PartitionEnvelope, PredictionStats};
pub use style::{ArchitectureStyle, DesignStyle, OperationTiming};

// The exploration engine shares predictors and prediction lists across
// scoped worker threads; losing these bounds (e.g. by adding interior
// mutability) must fail to compile here rather than at every use site.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Predictor>();
    _assert_send_sync::<PredictedDesign>();
    _assert_send_sync::<PredictionStats>();
};
