//! Level-1 pruning: per-partition feasibility and inferiority filtering.
//!
//! "The first level pruning happens before integrated partitioning
//! predictions are performed. The predictions produced by BAD for each
//! partition are examined and predictions which are infeasible or inferior
//! are discarded" (paper §2.1).

use chop_stat::units::{Nanos, SquareMils};
use chop_stat::{Estimate, FeasibilityThreshold};
use serde::{Deserialize, Serialize};

use crate::clock::ClockConfig;
use crate::prediction::PredictedDesign;

/// Per-partition feasibility envelope used for level-1 pruning: the area
/// budget of the partition's chip and the global performance/delay
/// constraints, with the designer's probability thresholds.
///
/// # Examples
///
/// ```
/// use chop_bad::PartitionEnvelope;
/// use chop_stat::units::{Nanos, SquareMils};
///
/// let env = PartitionEnvelope::new(
///     SquareMils::new(90_000.0),
///     Nanos::new(30_000.0),
///     Nanos::new(30_000.0),
/// );
/// assert_eq!(env.area_budget().value(), 90_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionEnvelope {
    area_budget: SquareMils,
    performance: Nanos,
    delay: Nanos,
    area_threshold: FeasibilityThreshold,
    performance_threshold: FeasibilityThreshold,
    delay_threshold: FeasibilityThreshold,
}

impl PartitionEnvelope {
    /// Creates an envelope with the paper's default thresholds: 100 % for
    /// area and performance, 80 % for delay.
    #[must_use]
    pub fn new(area_budget: SquareMils, performance: Nanos, delay: Nanos) -> Self {
        Self {
            area_budget,
            performance,
            delay,
            area_threshold: FeasibilityThreshold::certain(),
            performance_threshold: FeasibilityThreshold::certain(),
            delay_threshold: FeasibilityThreshold::new(0.8),
        }
    }

    /// Overrides the probability thresholds.
    #[must_use]
    pub fn with_thresholds(
        mut self,
        area: FeasibilityThreshold,
        performance: FeasibilityThreshold,
        delay: FeasibilityThreshold,
    ) -> Self {
        self.area_threshold = area;
        self.performance_threshold = performance;
        self.delay_threshold = delay;
        self
    }

    /// The chip-area budget.
    #[must_use]
    pub fn area_budget(&self) -> SquareMils {
        self.area_budget
    }

    /// The performance (initiation-interval) constraint in ns.
    #[must_use]
    pub fn performance(&self) -> Nanos {
        self.performance
    }

    /// The system-delay constraint in ns.
    #[must_use]
    pub fn delay(&self) -> Nanos {
        self.delay
    }

    /// The area probability threshold.
    #[must_use]
    pub fn area_threshold(&self) -> FeasibilityThreshold {
        self.area_threshold
    }

    /// The performance probability threshold.
    #[must_use]
    pub fn performance_threshold(&self) -> FeasibilityThreshold {
        self.performance_threshold
    }

    /// The delay probability threshold.
    #[must_use]
    pub fn delay_threshold(&self) -> FeasibilityThreshold {
        self.delay_threshold
    }

    /// Whether a predicted design can possibly satisfy this envelope.
    ///
    /// The clock used for the cycle→ns conversion is the design's effective
    /// clock (main clock, stretched by the datapath overhead when the
    /// datapath runs on the main clock).
    #[must_use]
    pub fn admits(&self, design: &PredictedDesign, clocks: &ClockConfig) -> bool {
        let clock = effective_clock(design, clocks);
        let ii_ns = clock * design.initiation_interval().value() as f64;
        let latency_ns = clock * design.latency().value() as f64;
        design.area().probability_le(self.area_budget.value()).meets(self.area_threshold)
            && ii_ns.probability_le(self.performance.value()).meets(self.performance_threshold)
            && latency_ns.probability_le(self.delay.value()).meets(self.delay_threshold)
    }
}

/// The design's effective main-clock period estimate: the configured main
/// period, stretched by the datapath's register/mux/wiring/controller
/// overhead when the datapath switches on the main clock (experiment 2).
#[must_use]
pub fn effective_clock(design: &PredictedDesign, clocks: &ClockConfig) -> Estimate {
    let base = Estimate::exact(clocks.main_cycle().value());
    if clocks.datapath_on_main_clock() {
        base + design.clock_overhead()
    } else {
        base
    }
}

/// Effective adjusted clock period in ns for reporting (most-likely value).
#[must_use]
pub fn effective_clock_ns(design: &PredictedDesign, clocks: &ClockConfig) -> Nanos {
    Nanos::new(effective_clock(design, clocks).likely())
}

/// Counters reported in the paper's Tables 3 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Total predictions produced by BAD.
    pub total: usize,
    /// Predictions surviving the feasibility envelope.
    pub feasible: usize,
    /// Predictions surviving feasibility *and* inferiority pruning.
    pub non_inferior: usize,
}

/// Level-1 pruning: drops envelope-infeasible designs, then drops designs
/// dominated by a surviving design. Returns the survivors together with the
/// Table 3/5 statistics.
///
/// # Examples
///
/// ```
/// use chop_bad::prune::prune;
/// use chop_bad::{ArchitectureStyle, ClockConfig, PartitionEnvelope, Predictor, PredictorParams};
/// use chop_dfg::benchmarks;
/// use chop_library::standard::table1_library;
/// use chop_stat::units::{Nanos, SquareMils};
///
/// let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1)?;
/// let p = Predictor::new(
///     table1_library(), clocks, ArchitectureStyle::single_cycle(),
///     PredictorParams::default(),
/// );
/// let designs = p.predict(&benchmarks::ar_lattice_filter())?;
/// let env = PartitionEnvelope::new(
///     SquareMils::new(90_000.0), Nanos::new(30_000.0), Nanos::new(30_000.0));
/// let (kept, stats) = prune(designs, &env, &clocks);
/// assert_eq!(stats.non_inferior, kept.len());
/// assert!(stats.feasible <= stats.total);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn prune(
    designs: Vec<PredictedDesign>,
    envelope: &PartitionEnvelope,
    clocks: &ClockConfig,
) -> (Vec<PredictedDesign>, PredictionStats) {
    let total = designs.len();
    let feasible: Vec<PredictedDesign> =
        designs.into_iter().filter(|d| envelope.admits(d, clocks)).collect();
    let n_feasible = feasible.len();
    let kept = pareto_filter(feasible);
    let stats = PredictionStats { total, feasible: n_feasible, non_inferior: kept.len() };
    (kept, stats)
}

/// Removes designs dominated by another design in the set.
#[must_use]
pub fn pareto_filter(designs: Vec<PredictedDesign>) -> Vec<PredictedDesign> {
    let mut kept: Vec<PredictedDesign> = Vec::with_capacity(designs.len());
    for d in designs {
        if kept.iter().any(|k| k.dominates(&d)) {
            continue;
        }
        kept.retain(|k| !d.dominates(k));
        kept.push(d);
    }
    kept
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;
    use chop_library::standard::table1_library;
    use chop_library::standard::table2_packages;

    use super::*;
    use crate::params::PredictorParams;
    use crate::predictor::Predictor;
    use crate::style::ArchitectureStyle;

    fn exp1() -> (Predictor, ClockConfig) {
        let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        (
            Predictor::new(
                table1_library(),
                clocks,
                ArchitectureStyle::single_cycle(),
                PredictorParams::default(),
            ),
            clocks,
        )
    }

    fn paper_envelope() -> PartitionEnvelope {
        let pkg = &table2_packages()[1];
        PartitionEnvelope::new(pkg.usable_area(), Nanos::new(30_000.0), Nanos::new(30_000.0))
    }

    #[test]
    fn pruning_reduces_monotonically() {
        let (p, clocks) = exp1();
        let designs = p.predict(&benchmarks::ar_lattice_filter()).unwrap();
        let (kept, stats) = prune(designs, &paper_envelope(), &clocks);
        assert!(stats.feasible <= stats.total);
        assert!(stats.non_inferior <= stats.feasible);
        assert_eq!(kept.len(), stats.non_inferior);
    }

    #[test]
    fn some_single_chip_designs_survive_paper_constraints() {
        // Table 4, row 1: a feasible single-partition design exists.
        let (p, clocks) = exp1();
        let designs = p.predict(&benchmarks::ar_lattice_filter()).unwrap();
        let (kept, stats) = prune(designs, &paper_envelope(), &clocks);
        assert!(stats.feasible > 0, "no design feasible: {stats:?}");
        assert!(!kept.is_empty());
    }

    #[test]
    fn tightening_constraints_never_adds_designs() {
        let (p, clocks) = exp1();
        let designs = p.predict(&benchmarks::ar_lattice_filter()).unwrap();
        let loose = paper_envelope();
        let tight = PartitionEnvelope::new(
            SquareMils::new(40_000.0),
            Nanos::new(20_000.0),
            Nanos::new(20_000.0),
        );
        let (_, s_loose) = prune(designs.clone(), &loose, &clocks);
        let (_, s_tight) = prune(designs, &tight, &clocks);
        assert!(s_tight.feasible <= s_loose.feasible);
    }

    #[test]
    fn survivors_are_mutually_non_dominated() {
        let (p, clocks) = exp1();
        let designs = p.predict(&benchmarks::ar_lattice_filter()).unwrap();
        let (kept, _) = prune(designs, &paper_envelope(), &clocks);
        for i in 0..kept.len() {
            for j in 0..kept.len() {
                if i != j {
                    assert!(!kept[i].dominates(&kept[j]));
                }
            }
        }
    }

    #[test]
    fn effective_clock_stretches_only_on_main_datapath() {
        let (p, clocks) = exp1();
        let designs = p.predict(&benchmarks::ar_lattice_filter()).unwrap();
        // Datapath 10× slower: the main clock is untouched.
        assert_eq!(effective_clock_ns(&designs[0], &clocks).value(), 300.0);
        // Experiment-2 clocking: overhead loads the main clock.
        let clocks2 = ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap();
        let p2 = Predictor::new(
            table1_library(),
            clocks2,
            ArchitectureStyle::multi_cycle(),
            PredictorParams::default(),
        );
        let d2 = p2.predict(&benchmarks::ar_lattice_filter()).unwrap();
        assert!(effective_clock_ns(&d2[0], &clocks2).value() > 300.0);
    }
}
