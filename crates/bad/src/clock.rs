//! Clocking configuration: main, datapath and data-transfer clocks.

use std::fmt;

use chop_stat::units::{Cycles, Nanos};
use serde::{Deserialize, Serialize};

/// Error constructing a [`ClockConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClockConfigError {
    /// The main clock period was zero.
    ZeroMainClock,
    /// A clock multiplier was zero.
    ZeroMultiplier,
}

impl fmt::Display for ClockConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockConfigError::ZeroMainClock => write!(f, "main clock period must be positive"),
            ClockConfigError::ZeroMultiplier => {
                write!(f, "clock multipliers must be at least 1")
            }
        }
    }
}

impl std::error::Error for ClockConfigError {}

/// The synchronous clock family of a CHOP run.
///
/// The paper assumes "two separate clocks for data path and data transfer
/// … both clocks in our model are to be synchronous with frequencies being
/// multiples of the major clock frequency" (§2.2). Periods here are the
/// main period times an integer multiplier — experiment 1 uses a datapath
/// clock 10× slower than the 300 ns main clock, experiment 2 uses 1×.
///
/// # Examples
///
/// ```
/// use chop_bad::ClockConfig;
/// use chop_stat::units::Nanos;
///
/// let exp1 = ClockConfig::new(Nanos::new(300.0), 10, 1)?;
/// assert_eq!(exp1.datapath_cycle().value(), 3000.0);
/// assert_eq!(exp1.transfer_cycle().value(), 300.0);
/// # Ok::<(), chop_bad::ClockConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    main: Nanos,
    datapath_multiplier: u32,
    transfer_multiplier: u32,
}

impl ClockConfig {
    /// Creates a clock configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ClockConfigError`] if the main period is zero or a
    /// multiplier is zero.
    pub fn new(
        main: Nanos,
        datapath_multiplier: u32,
        transfer_multiplier: u32,
    ) -> Result<Self, ClockConfigError> {
        if main.value() <= 0.0 {
            return Err(ClockConfigError::ZeroMainClock);
        }
        if datapath_multiplier == 0 || transfer_multiplier == 0 {
            return Err(ClockConfigError::ZeroMultiplier);
        }
        Ok(Self { main, datapath_multiplier, transfer_multiplier })
    }

    /// The main (major) clock period.
    #[must_use]
    pub fn main_cycle(&self) -> Nanos {
        self.main
    }

    /// The datapath clock period (`main × datapath multiplier`).
    #[must_use]
    pub fn datapath_cycle(&self) -> Nanos {
        Nanos::new(self.main.value() * f64::from(self.datapath_multiplier))
    }

    /// The data-transfer clock period (`main × transfer multiplier`).
    #[must_use]
    pub fn transfer_cycle(&self) -> Nanos {
        Nanos::new(self.main.value() * f64::from(self.transfer_multiplier))
    }

    /// The datapath multiplier.
    #[must_use]
    pub fn datapath_multiplier(&self) -> u32 {
        self.datapath_multiplier
    }

    /// The transfer multiplier.
    #[must_use]
    pub fn transfer_multiplier(&self) -> u32 {
        self.transfer_multiplier
    }

    /// Whether datapath logic switches on the main clock (its overhead then
    /// loads the main cycle directly, as in experiment 2).
    #[must_use]
    pub fn datapath_on_main_clock(&self) -> bool {
        self.datapath_multiplier == 1
    }

    /// Converts a datapath cycle count to main-clock cycles.
    #[must_use]
    pub fn datapath_to_main(&self, cycles: u64) -> Cycles {
        Cycles::new(cycles * u64::from(self.datapath_multiplier))
    }

    /// Converts a transfer cycle count to main-clock cycles.
    #[must_use]
    pub fn transfer_to_main(&self, cycles: u64) -> Cycles {
        Cycles::new(cycles * u64::from(self.transfer_multiplier))
    }

    /// Number of whole datapath cycles needed to cover `delay`.
    #[must_use]
    pub fn datapath_cycles_for(&self, delay: Nanos) -> u64 {
        self.datapath_cycle().cycles_to_cover(delay).max(1)
    }
}

impl fmt::Display for ClockConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "main {} (datapath ×{}, transfer ×{})",
            self.main, self.datapath_multiplier, self.transfer_multiplier
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_main() {
        assert_eq!(
            ClockConfig::new(Nanos::new(0.0), 1, 1).unwrap_err(),
            ClockConfigError::ZeroMainClock
        );
    }

    #[test]
    fn rejects_zero_multiplier() {
        assert_eq!(
            ClockConfig::new(Nanos::new(300.0), 0, 1).unwrap_err(),
            ClockConfigError::ZeroMultiplier
        );
        assert_eq!(
            ClockConfig::new(Nanos::new(300.0), 1, 0).unwrap_err(),
            ClockConfigError::ZeroMultiplier
        );
    }

    #[test]
    fn experiment_clock_families() {
        let exp1 = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        assert_eq!(exp1.datapath_cycle().value(), 3000.0);
        assert!(!exp1.datapath_on_main_clock());
        let exp2 = ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap();
        assert!(exp2.datapath_on_main_clock());
    }

    #[test]
    fn cycle_conversions() {
        let c = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        assert_eq!(c.datapath_to_main(6).value(), 60);
        assert_eq!(c.transfer_to_main(6).value(), 6);
    }

    #[test]
    fn datapath_cycles_for_module_delays() {
        let c = ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap();
        assert_eq!(c.datapath_cycles_for(Nanos::new(53.0)), 1);
        assert_eq!(c.datapath_cycles_for(Nanos::new(2950.0)), 10);
        assert_eq!(c.datapath_cycles_for(Nanos::new(7370.0)), 25);
        // Zero-delay is clamped to one cycle.
        assert_eq!(c.datapath_cycles_for(Nanos::new(0.0)), 1);
    }
}
