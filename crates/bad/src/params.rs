//! Tunable model parameters of the predictor.

use serde::{Deserialize, Serialize};

/// How BAD sweeps functional-unit counts per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AllocationSweep {
    /// Every count from 1 up to the class's useful maximum — the paper's
    /// exhaustive serial-parallel exploration.
    #[default]
    Exhaustive,
    /// Powers of two only (1, 2, 4, …) — a coarse sweep for very wide
    /// graphs; an ablation of prediction-space density.
    PowersOfTwo,
}

impl AllocationSweep {
    /// The unit counts to try for a class whose useful maximum is `max`.
    #[must_use]
    pub fn counts(&self, max: usize) -> Vec<usize> {
        match self {
            AllocationSweep::Exhaustive => (1..=max.max(1)).collect(),
            AllocationSweep::PowersOfTwo => {
                let mut v = Vec::new();
                let mut n = 1usize;
                while n <= max.max(1) {
                    v.push(n);
                    n *= 2;
                }
                if *v.last().expect("non-empty") != max && max > 1 {
                    v.push(max);
                }
                v
            }
        }
    }
}

/// Calibration constants for BAD's area/delay models.
///
/// Defaults are tuned to the paper's 3 µm technology so that the standard
/// Table 1 / Table 2 experiments land in the reported ballpark; every
/// constant can be overridden for other technologies.
///
/// # Examples
///
/// ```
/// use chop_bad::PredictorParams;
///
/// let mut p = PredictorParams::default();
/// p.wiring_factor = 0.5; // pessimistic routing
/// assert!(p.wiring_factor > PredictorParams::default().wiring_factor);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorParams {
    /// Fractional uncertainty below the most-likely area.
    pub area_spread_below: f64,
    /// Fractional uncertainty above the most-likely area.
    pub area_spread_above: f64,
    /// Fractional uncertainty below the most-likely delay.
    pub delay_spread_below: f64,
    /// Fractional uncertainty above the most-likely delay.
    pub delay_spread_above: f64,
    /// Standard-cell routing area as a fraction of active (cell) area.
    pub wiring_factor: f64,
    /// PLA area per crosspoint, in mil² (3 µm technology).
    pub pla_cell_area: f64,
    /// Fixed PLA periphery delay, in ns.
    pub pla_base_delay: f64,
    /// Incremental PLA delay per input+term, in ns.
    pub pla_delay_per_line: f64,
    /// Wiring delay per unit of the block's linear dimension
    /// (ns per √mil² — wire length grows with the block's side).
    pub wiring_delay_factor: f64,
    /// Hard cap on functional units enumerated per class (keeps the sweep
    /// bounded on very wide graphs).
    pub max_units_per_class: usize,
    /// Which unit counts to enumerate per class.
    pub allocation_sweep: AllocationSweep,
}

impl Default for PredictorParams {
    fn default() -> Self {
        Self {
            area_spread_below: 0.08,
            area_spread_above: 0.10,
            delay_spread_below: 0.05,
            delay_spread_above: 0.12,
            wiring_factor: 0.20,
            pla_cell_area: 0.55,
            pla_base_delay: 18.0,
            pla_delay_per_line: 0.45,
            wiring_delay_factor: 0.05,
            max_units_per_class: 16,
            allocation_sweep: AllocationSweep::Exhaustive,
        }
    }
}

impl PredictorParams {
    /// Parameters with zero uncertainty — point predictions. Useful for
    /// ablating the probabilistic feasibility analysis.
    #[must_use]
    pub fn deterministic() -> Self {
        Self {
            area_spread_below: 0.0,
            area_spread_above: 0.0,
            delay_spread_below: 0.0,
            delay_spread_above: 0.0,
            ..Self::default()
        }
    }

    /// Validates that all fractions are non-negative and finite.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values, or a zero unit cap.
    pub fn assert_valid(&self) {
        for (name, v) in [
            ("area_spread_below", self.area_spread_below),
            ("area_spread_above", self.area_spread_above),
            ("delay_spread_below", self.delay_spread_below),
            ("delay_spread_above", self.delay_spread_above),
            ("wiring_factor", self.wiring_factor),
            ("pla_cell_area", self.pla_cell_area),
            ("pla_base_delay", self.pla_base_delay),
            ("pla_delay_per_line", self.pla_delay_per_line),
            ("wiring_delay_factor", self.wiring_delay_factor),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be finite and non-negative");
        }
        assert!(self.max_units_per_class >= 1, "max_units_per_class must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        PredictorParams::default().assert_valid();
        assert_eq!(PredictorParams::default().allocation_sweep, AllocationSweep::Exhaustive);
    }

    #[test]
    fn sweep_counts() {
        assert_eq!(AllocationSweep::Exhaustive.counts(4), vec![1, 2, 3, 4]);
        assert_eq!(AllocationSweep::Exhaustive.counts(0), vec![1]);
        assert_eq!(AllocationSweep::PowersOfTwo.counts(8), vec![1, 2, 4, 8]);
        assert_eq!(AllocationSweep::PowersOfTwo.counts(6), vec![1, 2, 4, 6]);
        assert_eq!(AllocationSweep::PowersOfTwo.counts(1), vec![1]);
    }

    #[test]
    fn powers_of_two_subset_of_exhaustive() {
        for max in 1..=20usize {
            let p = AllocationSweep::PowersOfTwo.counts(max);
            let e = AllocationSweep::Exhaustive.counts(max);
            assert!(p.iter().all(|n| e.contains(n)), "max={max}");
            assert!(p.len() <= e.len());
            // The extremes are always covered.
            assert_eq!(*p.first().unwrap(), 1);
            assert_eq!(*p.last().unwrap(), max.max(1));
        }
    }

    #[test]
    fn deterministic_has_no_spread() {
        let p = PredictorParams::deterministic();
        assert_eq!(p.area_spread_below, 0.0);
        assert_eq!(p.area_spread_above, 0.0);
        p.assert_valid();
    }

    #[test]
    #[should_panic(expected = "wiring_factor")]
    fn negative_factor_panics() {
        let p = PredictorParams { wiring_factor: -0.1, ..PredictorParams::default() };
        p.assert_valid();
    }
}
