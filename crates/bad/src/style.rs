//! Architecture and design styles.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How operations relate to the datapath clock.
///
/// Experiment 1 of the paper uses single-cycle operations (each operation
/// completes within one datapath cycle); experiment 2 allows multi-cycle
/// operations so that a faster clock can be used efficiently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperationTiming {
    /// Every operation completes in exactly one datapath cycle; modules
    /// slower than the cycle are unusable.
    SingleCycle,
    /// Operations may span several datapath cycles
    /// (`ceil(module delay / cycle)`).
    MultiCycle,
}

impl fmt::Display for OperationTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperationTiming::SingleCycle => write!(f, "single-cycle"),
            OperationTiming::MultiCycle => write!(f, "multi-cycle"),
        }
    }
}

/// The design style of one predicted implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignStyle {
    /// Overlapped initiations; the initiation interval may be shorter than
    /// the latency.
    Pipelined,
    /// One data set at a time; initiation interval equals latency.
    NonPipelined,
}

impl fmt::Display for DesignStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignStyle::Pipelined => write!(f, "pipelined"),
            DesignStyle::NonPipelined => write!(f, "non-pipelined"),
        }
    }
}

/// The architecture style handed to BAD: operation timing plus which design
/// styles the downstream synthesis flow supports.
///
/// # Examples
///
/// ```
/// use chop_bad::{ArchitectureStyle, DesignStyle, OperationTiming};
///
/// let style = ArchitectureStyle::single_cycle();
/// assert_eq!(style.timing(), OperationTiming::SingleCycle);
/// assert!(style.styles().contains(&DesignStyle::Pipelined));
///
/// let np_only = ArchitectureStyle::new(OperationTiming::MultiCycle, false, true);
/// assert_eq!(np_only.styles(), vec![DesignStyle::NonPipelined]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchitectureStyle {
    timing: OperationTiming,
    allow_pipelined: bool,
    allow_nonpipelined: bool,
}

impl ArchitectureStyle {
    /// Creates an architecture style.
    ///
    /// # Panics
    ///
    /// Panics if both design styles are disallowed.
    #[must_use]
    pub fn new(
        timing: OperationTiming,
        allow_pipelined: bool,
        allow_nonpipelined: bool,
    ) -> Self {
        assert!(
            allow_pipelined || allow_nonpipelined,
            "at least one design style must be allowed"
        );
        Self { timing, allow_pipelined, allow_nonpipelined }
    }

    /// The single-cycle style of experiment 1, both design styles allowed.
    #[must_use]
    pub fn single_cycle() -> Self {
        Self::new(OperationTiming::SingleCycle, true, true)
    }

    /// The multi-cycle style of experiment 2, both design styles allowed.
    #[must_use]
    pub fn multi_cycle() -> Self {
        Self::new(OperationTiming::MultiCycle, true, true)
    }

    /// The operation timing model.
    #[must_use]
    pub fn timing(&self) -> OperationTiming {
        self.timing
    }

    /// The design styles BAD should sweep.
    #[must_use]
    pub fn styles(&self) -> Vec<DesignStyle> {
        let mut v = Vec::with_capacity(2);
        if self.allow_pipelined {
            v.push(DesignStyle::Pipelined);
        }
        if self.allow_nonpipelined {
            v.push(DesignStyle::NonPipelined);
        }
        v
    }
}

impl fmt::Display for ArchitectureStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let styles: Vec<String> = self.styles().iter().map(ToString::to_string).collect();
        write!(f, "{} operations ({})", self.timing, styles.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn styles_reflect_flags() {
        assert_eq!(ArchitectureStyle::single_cycle().styles().len(), 2);
        let p = ArchitectureStyle::new(OperationTiming::MultiCycle, true, false);
        assert_eq!(p.styles(), vec![DesignStyle::Pipelined]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn no_styles_panics() {
        let _ = ArchitectureStyle::new(OperationTiming::SingleCycle, false, false);
    }

    #[test]
    fn displays() {
        assert!(ArchitectureStyle::multi_cycle().to_string().contains("multi-cycle"));
        assert_eq!(DesignStyle::Pipelined.to_string(), "pipelined");
    }
}
