//! Area and delay models: PLA controllers and standard-cell wiring.
//!
//! BAD predicts "PLA-based controller area, and standard cell routing
//! area" (paper §2.4); the same PLA model also sizes CHOP's data-transfer
//! module controllers ("the wait and data transfer times are used to
//! predict the number of inputs, outputs and product terms of a PLA to
//! control the data transfer, from which PLA size and delay are predicted
//! by the same methods used in BAD", §2.5).

use std::fmt;

use chop_stat::units::{Nanos, SquareMils};
use serde::{Deserialize, Serialize};

use crate::params::PredictorParams;

/// A PLA controller specification: inputs, outputs and product terms.
///
/// # Examples
///
/// ```
/// use chop_bad::area::PlaSpec;
/// use chop_bad::PredictorParams;
///
/// let pla = PlaSpec::new(6, 20, 30);
/// let p = PredictorParams::default();
/// assert!(pla.area(&p).value() > 0.0);
/// assert!(pla.delay(&p).value() > p.pla_base_delay - 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PlaSpec {
    inputs: u32,
    outputs: u32,
    terms: u32,
}

impl PlaSpec {
    /// Creates a PLA spec.
    #[must_use]
    pub fn new(inputs: u32, outputs: u32, terms: u32) -> Self {
        Self { inputs, outputs, terms }
    }

    /// Sizes the controller of a finite-state machine with `states` states
    /// driving `control_outputs` control lines, with `status_inputs`
    /// external status bits.
    ///
    /// Inputs are the state register feedback plus status; product terms
    /// approximate one per state transition.
    #[must_use]
    pub fn for_fsm(states: u64, control_outputs: u32, status_inputs: u32) -> Self {
        let state_bits =
            if states <= 1 { 1 } else { (64 - (states - 1).leading_zeros()).max(1) };
        let inputs = state_bits + status_inputs;
        let outputs = control_outputs + state_bits;
        let terms =
            u32::try_from(states.max(1)).unwrap_or(u32::MAX).saturating_add(status_inputs);
        Self { inputs, outputs, terms }
    }

    /// Number of PLA inputs.
    #[must_use]
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Number of PLA outputs.
    #[must_use]
    pub fn outputs(&self) -> u32 {
        self.outputs
    }

    /// Number of product terms.
    #[must_use]
    pub fn terms(&self) -> u32 {
        self.terms
    }

    /// PLA area: `(2·inputs + outputs) · terms` crosspoints at the
    /// technology's crosspoint area.
    #[must_use]
    pub fn area(&self, params: &PredictorParams) -> SquareMils {
        let crosspoints =
            f64::from(2 * self.inputs + self.outputs) * f64::from(self.terms.max(1));
        SquareMils::new(crosspoints * params.pla_cell_area)
    }

    /// PLA propagation delay: base periphery delay plus a per-line term.
    #[must_use]
    pub fn delay(&self, params: &PredictorParams) -> Nanos {
        Nanos::new(
            params.pla_base_delay
                + params.pla_delay_per_line * f64::from(self.inputs + self.terms),
        )
    }
}

impl fmt::Display for PlaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PLA({} in, {} out, {} terms)", self.inputs, self.outputs, self.terms)
    }
}

/// Standard-cell routing area for a block of active area.
///
/// # Examples
///
/// ```
/// use chop_bad::area::wiring_area;
/// use chop_bad::PredictorParams;
/// use chop_stat::units::SquareMils;
///
/// let p = PredictorParams::default();
/// let w = wiring_area(SquareMils::new(10_000.0), &p);
/// assert_eq!(w.value(), 10_000.0 * p.wiring_factor);
/// ```
#[must_use]
pub fn wiring_area(active: SquareMils, params: &PredictorParams) -> SquareMils {
    SquareMils::new(active.value() * params.wiring_factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsm_sizing_scales_with_states() {
        let small = PlaSpec::for_fsm(4, 10, 1);
        let large = PlaSpec::for_fsm(64, 10, 1);
        assert!(large.inputs() > small.inputs());
        assert!(large.terms() > small.terms());
        let p = PredictorParams::default();
        assert!(large.area(&p).value() > small.area(&p).value());
        assert!(large.delay(&p).value() > small.delay(&p).value());
    }

    #[test]
    fn fsm_single_state_still_sized() {
        let pla = PlaSpec::for_fsm(1, 2, 0);
        assert_eq!(pla.inputs(), 1);
        assert!(pla.terms() >= 1);
        assert!(pla.area(&PredictorParams::default()).value() > 0.0);
    }

    #[test]
    fn area_formula_matches() {
        let pla = PlaSpec::new(3, 4, 10);
        let p = PredictorParams { pla_cell_area: 1.0, ..PredictorParams::default() };
        // (2*3 + 4) * 10 = 100 crosspoints.
        assert_eq!(pla.area(&p).value(), 100.0);
    }

    #[test]
    fn wiring_proportional_to_active() {
        let p = PredictorParams::default();
        let a = wiring_area(SquareMils::new(1000.0), &p).value();
        let b = wiring_area(SquareMils::new(2000.0), &p).value();
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn state_bits_rounding() {
        // 30-ish states need 5 state bits.
        let pla = PlaSpec::for_fsm(30, 0, 0);
        assert_eq!(pla.inputs(), 5);
        // Exactly a power of two: 32 states also need 5 bits.
        let pla32 = PlaSpec::for_fsm(32, 0, 0);
        assert_eq!(pla32.inputs(), 5);
        let pla33 = PlaSpec::for_fsm(33, 0, 0);
        assert_eq!(pla33.inputs(), 6);
    }
}
