//! Property-based tests of the BAD predictor over random workloads.

use chop_bad::prune::{pareto_filter, prune};
use chop_bad::{ArchitectureStyle, ClockConfig, PartitionEnvelope, Predictor, PredictorParams};
use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
use chop_library::standard::table1_library;
use chop_stat::units::{Nanos, SquareMils};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = (u64, RandomDfgParams)> {
    (any::<u64>(), 1usize..5, 1usize..6, 1usize..4, 0u32..100).prop_map(
        |(seed, layers, width, inputs, mul_percent)| {
            (seed, RandomDfgParams { layers, width, inputs, mul_percent, bits: 16 })
        },
    )
}

fn predictor(multi_cycle: bool) -> (Predictor, ClockConfig) {
    let clocks = if multi_cycle {
        ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap()
    } else {
        ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap()
    };
    let style = if multi_cycle {
        ArchitectureStyle::multi_cycle()
    } else {
        ArchitectureStyle::single_cycle()
    };
    (Predictor::new(table1_library(), clocks, style, PredictorParams::default()), clocks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn predictions_are_internally_consistent(
        (seed, params) in arb_workload(),
        multi_cycle in any::<bool>(),
    ) {
        let dfg = random_layered(seed, params);
        let (p, _) = predictor(multi_cycle);
        let designs = p.predict(&dfg).unwrap();
        prop_assert!(!designs.is_empty());
        for d in &designs {
            prop_assert!(d.initiation_interval().value() >= 1);
            prop_assert!(d.initiation_interval() <= d.latency());
            prop_assert!(d.area().lo() <= d.area().likely());
            prop_assert!(d.area().likely() <= d.area().hi());
            prop_assert!(d.area().likely() > 0.0);
            prop_assert!(d.power().likely() >= 0.0);
            prop_assert!(d.clock_overhead().likely() >= 0.0);
        }
    }

    #[test]
    fn prediction_is_deterministic((seed, params) in arb_workload()) {
        let dfg = random_layered(seed, params);
        let (p, _) = predictor(true);
        let a = p.predict(&dfg).unwrap();
        let b = p.predict(&dfg).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn pruning_is_monotone_in_constraints(
        (seed, params) in arb_workload(),
        area in 20_000.0f64..120_000.0,
        time in 5_000.0f64..80_000.0,
    ) {
        let dfg = random_layered(seed, params);
        let (p, clocks) = predictor(true);
        let designs = p.predict(&dfg).unwrap();
        let loose = PartitionEnvelope::new(
            SquareMils::new(area * 2.0),
            Nanos::new(time * 2.0),
            Nanos::new(time * 2.0),
        );
        let tight = PartitionEnvelope::new(
            SquareMils::new(area),
            Nanos::new(time),
            Nanos::new(time),
        );
        let (_, s_loose) = prune(designs.clone(), &loose, &clocks);
        let (_, s_tight) = prune(designs, &tight, &clocks);
        prop_assert!(s_tight.feasible <= s_loose.feasible);
        prop_assert_eq!(s_tight.total, s_loose.total);
    }

    #[test]
    fn pareto_filter_is_idempotent_and_minimal((seed, params) in arb_workload()) {
        let dfg = random_layered(seed, params);
        let (p, _) = predictor(true);
        let designs = p.predict(&dfg).unwrap();
        let once = pareto_filter(designs);
        let twice = pareto_filter(once.clone());
        prop_assert_eq!(once.len(), twice.len());
        for i in 0..once.len() {
            for j in 0..once.len() {
                if i != j {
                    prop_assert!(!once[i].dominates(&once[j]));
                }
            }
        }
    }

    #[test]
    fn single_cycle_latencies_are_main_clock_multiples(
        (seed, params) in arb_workload(),
    ) {
        let dfg = random_layered(seed, params);
        let (p, clocks) = predictor(false);
        let designs = p.predict(&dfg).unwrap();
        let dpm = u64::from(clocks.datapath_multiplier());
        for d in &designs {
            prop_assert_eq!(d.initiation_interval().value() % dpm, 0);
            prop_assert_eq!(d.latency().value() % dpm, 0);
        }
    }

    #[test]
    fn guideline_renders_for_every_design((seed, params) in arb_workload()) {
        let dfg = random_layered(seed, params);
        let lib = table1_library();
        let (p, _) = predictor(true);
        for d in p.predict(&dfg).unwrap().iter().take(8) {
            let text = d.guideline(&lib);
            prop_assert!(text.contains("design style"));
            prop_assert!(!text.is_empty());
        }
    }
}
