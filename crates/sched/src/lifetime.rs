//! Value-lifetime analysis and register (max-live) estimation.
//!
//! BAD "performs detailed predictions on register … allocation" (paper
//! §2.4). The standard predictor for register bits is the maximum number of
//! value bits simultaneously live under a given schedule; for pipelined
//! styles the lifetimes are folded modulo the initiation interval because
//! successive initiations keep their values live concurrently.

use chop_dfg::Dfg;
use chop_stat::units::Bits;

use crate::list::Schedule;

/// A value's live interval: produced at `birth`, last consumed at `death`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveInterval {
    /// Cycle the value becomes available (producer finish).
    pub birth: u64,
    /// Last cycle the value is needed (max consumer start).
    pub death: u64,
    /// Width of the value.
    pub width: Bits,
}

/// Computes live intervals for every edge of the graph under a schedule.
///
/// The style has no operator chaining: every value is latched when its
/// producer finishes and stays registered at least through its consumer's
/// first cycle, so even back-to-back producer/consumer pairs contribute
/// one register-cycle.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::{list_schedule, NodeSpec, ResourceMap};
/// use chop_sched::lifetime::live_intervals;
///
/// let g = benchmarks::fir_filter(4);
/// let specs = NodeSpec::uniform(&g, 1);
/// let alloc: ResourceMap =
///     [(OpClass::Addition, 1), (OpClass::Multiplication, 1)].into_iter().collect();
/// let s = list_schedule(&g, &specs, &alloc)?;
/// let intervals = live_intervals(&g, &s);
/// assert_eq!(intervals.len(), g.edges().count());
/// # Ok::<(), chop_sched::ScheduleError>(())
/// ```
#[must_use]
pub fn live_intervals(dfg: &Dfg, schedule: &Schedule) -> Vec<LiveInterval> {
    live_intervals_where(dfg, schedule, |_| true)
}

/// Like [`live_intervals`] but only for edges accepted by `keep` — used by
/// predictors that exclude hardwired constants and externally buffered
/// primary inputs from the datapath register budget.
pub fn live_intervals_where(
    dfg: &Dfg,
    schedule: &Schedule,
    keep: impl Fn(&chop_dfg::Edge) -> bool,
) -> Vec<LiveInterval> {
    dfg.edges()
        .filter(|(_, e)| keep(e))
        .map(|(_, e)| LiveInterval {
            birth: schedule.finish(e.src()),
            // The architecture style has no operator chaining: a value is
            // latched when produced and read during its consumer's first
            // cycle, so it occupies a register at least one cycle.
            death: schedule.start(e.dst()) + 1,
            width: e.width(),
        })
        .collect()
}

/// Maximum number of register bits simultaneously live (non-pipelined).
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::{list_schedule, NodeSpec, ResourceMap};
/// use chop_sched::lifetime::max_live_bits;
///
/// let g = benchmarks::ar_lattice_filter();
/// let specs = NodeSpec::uniform(&g, 1);
/// let alloc: ResourceMap =
///     [(OpClass::Addition, 2), (OpClass::Multiplication, 4)].into_iter().collect();
/// let s = list_schedule(&g, &specs, &alloc)?;
/// let bits = max_live_bits(&g, &s);
/// assert!(bits.value() >= 16);
/// # Ok::<(), chop_sched::ScheduleError>(())
/// ```
#[must_use]
pub fn max_live_bits(dfg: &Dfg, schedule: &Schedule) -> Bits {
    max_live_bits_where(dfg, schedule, |_| true)
}

/// Like [`max_live_bits`] but only counting edges accepted by `keep`.
pub fn max_live_bits_where(
    dfg: &Dfg,
    schedule: &Schedule,
    keep: impl Fn(&chop_dfg::Edge) -> bool,
) -> Bits {
    let intervals = live_intervals_where(dfg, schedule, keep);
    let horizon = schedule.makespan();
    let mut best = 0u64;
    for t in 0..=horizon {
        let live: u64 = intervals
            .iter()
            .filter(|iv| iv.birth <= t && t < iv.death)
            .map(|iv| iv.width.value())
            .sum();
        best = best.max(live);
    }
    Bits::new(best)
}

/// Maximum live register bits for a pipeline at initiation interval `ii`:
/// every live interval is replicated at offsets `k·ii` and the per-slot
/// totals are maximized over one interval window.
///
/// Equals [`max_live_bits`] when `ii >= makespan` (no overlap).
///
/// # Panics
///
/// Panics if `ii` is zero.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::{list_schedule, NodeSpec, ResourceMap};
/// use chop_sched::lifetime::{max_live_bits, max_live_bits_pipelined};
///
/// let g = benchmarks::ar_lattice_filter();
/// let specs = NodeSpec::uniform(&g, 1);
/// let alloc: ResourceMap =
///     [(OpClass::Addition, 4), (OpClass::Multiplication, 8)].into_iter().collect();
/// let s = list_schedule(&g, &specs, &alloc)?;
/// let flat = max_live_bits(&g, &s);
/// let folded = max_live_bits_pipelined(&g, &s, 2);
/// assert!(folded.value() >= flat.value());
/// # Ok::<(), chop_sched::ScheduleError>(())
/// ```
#[must_use]
pub fn max_live_bits_pipelined(dfg: &Dfg, schedule: &Schedule, ii: u64) -> Bits {
    max_live_bits_pipelined_where(dfg, schedule, ii, |_| true)
}

/// Like [`max_live_bits_pipelined`] but only counting edges accepted by
/// `keep`.
///
/// # Panics
///
/// Panics if `ii` is zero.
pub fn max_live_bits_pipelined_where(
    dfg: &Dfg,
    schedule: &Schedule,
    ii: u64,
    keep: impl Fn(&chop_dfg::Edge) -> bool,
) -> Bits {
    assert!(ii > 0, "initiation interval must be positive");
    let intervals = live_intervals_where(dfg, schedule, keep);
    let mut slot_bits = vec![0u64; ii as usize];
    for iv in &intervals {
        if iv.death <= iv.birth {
            continue;
        }
        let len = iv.death - iv.birth;
        if len >= ii {
            // Value lives longer than one initiation: live in every slot,
            // ceil(len/ii) copies deep.
            let copies = len.div_ceil(ii);
            for slot in slot_bits.iter_mut() {
                *slot += iv.width.value() * copies;
            }
        } else {
            for t in iv.birth..iv.death {
                slot_bits[(t % ii) as usize] += iv.width.value();
            }
        }
    }
    Bits::new(slot_bits.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use chop_dfg::{benchmarks, OpClass};

    use super::*;
    use crate::list::{list_schedule, NodeSpec, ResourceMap};

    fn alloc(adds: usize, muls: usize) -> ResourceMap {
        [(OpClass::Addition, adds), (OpClass::Multiplication, muls)].into_iter().collect()
    }

    #[test]
    fn intervals_are_causal() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let s = list_schedule(&g, &specs, &alloc(2, 2)).unwrap();
        for iv in live_intervals(&g, &s) {
            assert!(iv.birth <= iv.death);
        }
    }

    #[test]
    fn max_live_bounded_by_total_value_bits() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let total: u64 = g.edges().map(|(_, e)| e.width().value()).sum();
        for a in [alloc(1, 1), alloc(2, 4), alloc(12, 16)] {
            let s = list_schedule(&g, &specs, &a).unwrap();
            let live = max_live_bits(&g, &s).value();
            assert!(live > 0);
            assert!(live <= total);
        }
    }

    #[test]
    fn pipeline_fold_at_large_ii_matches_flat() {
        let g = benchmarks::fir_filter(4);
        let specs = NodeSpec::uniform(&g, 1);
        let s = list_schedule(&g, &specs, &alloc(4, 4)).unwrap();
        let flat = max_live_bits(&g, &s);
        let folded = max_live_bits_pipelined(&g, &s, s.makespan().max(1) * 2);
        assert_eq!(flat.value(), folded.value());
    }

    #[test]
    fn tighter_ii_needs_more_registers() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let s = list_schedule(&g, &specs, &alloc(4, 8)).unwrap();
        let loose = max_live_bits_pipelined(&g, &s, s.makespan().max(1));
        let tight = max_live_bits_pipelined(&g, &s, 1);
        assert!(tight.value() >= loose.value());
    }
}
