//! Unconstrained ASAP/ALAP time bounds.

use chop_dfg::Dfg;

use crate::list::NodeSpec;

/// As-soon-as-possible start cycles with unlimited resources.
///
/// # Examples
///
/// ```
/// use chop_dfg::benchmarks;
/// use chop_sched::{asap_times, NodeSpec};
///
/// let g = benchmarks::diffeq();
/// let t = asap_times(&g, &NodeSpec::uniform(&g, 1));
/// assert_eq!(t.len(), g.len());
/// ```
#[must_use]
pub fn asap_times(dfg: &Dfg, specs: &NodeSpec) -> Vec<u64> {
    let mut start = vec![0u64; dfg.len()];
    for &id in dfg.topo_order() {
        let ready =
            dfg.pred_nodes(id).map(|p| start[p.index()] + specs.duration(p)).max().unwrap_or(0);
        start[id.index()] = ready;
    }
    start
}

/// As-late-as-possible start cycles against the unconstrained critical-path
/// length (so the most critical nodes get ALAP == ASAP).
///
/// # Examples
///
/// ```
/// use chop_dfg::benchmarks;
/// use chop_sched::{alap_times, asap_times, NodeSpec};
///
/// let g = benchmarks::diffeq();
/// let specs = NodeSpec::uniform(&g, 1);
/// let asap = asap_times(&g, &specs);
/// let alap = alap_times(&g, &specs);
/// for i in 0..g.len() {
///     assert!(asap[i] <= alap[i]);
/// }
/// ```
#[must_use]
pub fn alap_times(dfg: &Dfg, specs: &NodeSpec) -> Vec<u64> {
    let asap = asap_times(dfg, specs);
    let horizon =
        dfg.node_ids().map(|id| asap[id.index()] + specs.duration(id)).max().unwrap_or(0);
    let mut latest_finish = vec![horizon; dfg.len()];
    for &id in dfg.topo_order().iter().rev() {
        let must_finish_by = dfg
            .succ_nodes(id)
            .map(|s| latest_finish[s.index()].saturating_sub(specs.duration(s)))
            .min()
            .unwrap_or(horizon);
        latest_finish[id.index()] = must_finish_by;
    }
    dfg.node_ids()
        .map(|id| latest_finish[id.index()].saturating_sub(specs.duration(id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;

    use super::*;

    #[test]
    fn asap_respects_precedence() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 2);
        let t = asap_times(&g, &specs);
        for (_, e) in g.edges() {
            assert!(
                t[e.src().index()] + specs.duration(e.src()) <= t[e.dst().index()],
                "edge violates ASAP"
            );
        }
    }

    #[test]
    fn alap_ge_asap_with_critical_nodes_tight() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let asap = asap_times(&g, &specs);
        let alap = alap_times(&g, &specs);
        let mut any_tight = false;
        for i in 0..g.len() {
            assert!(asap[i] <= alap[i]);
            if asap[i] == alap[i] {
                any_tight = true;
            }
        }
        assert!(any_tight, "critical-path nodes must have zero slack");
    }

    #[test]
    fn alap_respects_precedence() {
        let g = benchmarks::elliptic_wave_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let alap = alap_times(&g, &specs);
        for (_, e) in g.edges() {
            assert!(alap[e.src().index()] + specs.duration(e.src()) <= alap[e.dst().index()]);
        }
    }
}
