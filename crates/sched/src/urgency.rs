//! Urgency scheduling of task graphs over capacitated resources.
//!
//! After CHOP creates data-transfer tasks, "an urgency scheduling is
//! performed to confirm feasibility of sharing the data pins of chips as
//! well as to keep memory accesses to each memory block feasible while
//! reaching the minimum overall system delay. The urgency measure is based
//! on the actual critical path delays of tasks" (paper §2.5). This module
//! is that scheduler, generalized over any set of capacitated resources
//! (pin pools, memory ports).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a task in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u32);

impl TaskId {
    /// The task's index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a capacitated resource (a chip's data-pin pool, a memory
/// block's port pool, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(u32);

impl ResourceId {
    /// Creates a resource id (an index into the capacity vector).
    #[must_use]
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The resource's index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Task {
    duration: u64,
    demands: Vec<(ResourceId, u64)>,
    label: String,
}

/// Error constructing or scheduling a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrgencyError {
    /// A dependency referenced an unknown task.
    UnknownTask(TaskId),
    /// The dependencies form a cycle.
    Cyclic,
    /// A task demands more of a resource than its total capacity — it can
    /// never run.
    UnsatisfiableDemand {
        /// The offending task.
        task: TaskId,
        /// The over-demanded resource.
        resource: ResourceId,
        /// Amount demanded.
        demanded: u64,
        /// Capacity available.
        capacity: u64,
    },
    /// A demand referenced a resource outside the capacity vector.
    UnknownResource(ResourceId),
}

impl fmt::Display for UrgencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrgencyError::UnknownTask(t) => write!(f, "unknown task {t}"),
            UrgencyError::Cyclic => write!(f, "task graph contains a cycle"),
            UrgencyError::UnsatisfiableDemand { task, resource, demanded, capacity } => write!(
                f,
                "task {task} demands {demanded} of {resource} but only {capacity} exists"
            ),
            UrgencyError::UnknownResource(r) => write!(f, "unknown resource {r}"),
        }
    }
}

impl std::error::Error for UrgencyError {}

/// Priority policy for [`TaskGraph::schedule_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Most urgent first — remaining critical path (the paper's choice).
    Urgency,
    /// First-come-first-served by task id — the baseline the urgency
    /// measure is ablated against.
    Fifo,
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulePolicy::Urgency => write!(f, "urgency"),
            SchedulePolicy::Fifo => write!(f, "fifo"),
        }
    }
}

/// A precedence graph of tasks with durations and resource demands.
///
/// # Examples
///
/// ```
/// use chop_sched::urgency::{ResourceId, TaskGraph};
///
/// let pins = ResourceId::new(0);
/// let mut g = TaskGraph::new();
/// let produce = g.add_task("P1", 10, vec![]);
/// let transfer = g.add_task("T1", 3, vec![(pins, 16)]);
/// let consume = g.add_task("P2", 8, vec![]);
/// g.add_dep(produce, transfer)?;
/// g.add_dep(transfer, consume)?;
/// let s = g.schedule(&[16])?;
/// assert_eq!(s.makespan(), 21);
/// # Ok::<(), chop_sched::urgency::UrgencyError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    deps: Vec<(TaskId, TaskId)>,
}

impl TaskGraph {
    /// Creates an empty task graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task with a duration (cycles) and resource demands; returns
    /// its id.
    pub fn add_task(
        &mut self,
        label: impl Into<String>,
        duration: u64,
        demands: Vec<(ResourceId, u64)>,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task { duration, demands, label: label.into() });
        id
    }

    /// Adds a precedence edge `before → after`.
    ///
    /// # Errors
    ///
    /// Returns [`UrgencyError::UnknownTask`] for ids not produced by this
    /// graph.
    pub fn add_dep(&mut self, before: TaskId, after: TaskId) -> Result<(), UrgencyError> {
        for t in [before, after] {
            if t.index() >= self.tasks.len() {
                return Err(UrgencyError::UnknownTask(t));
            }
        }
        self.deps.push((before, after));
        Ok(())
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Duration of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn duration(&self, id: TaskId) -> u64 {
        self.tasks[id.index()].duration
    }

    /// Label of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn label(&self, id: TaskId) -> &str {
        &self.tasks[id.index()].label
    }

    /// Urgency of each task: its own duration plus the longest downstream
    /// chain — "the actual critical path delays of tasks".
    ///
    /// # Errors
    ///
    /// Returns [`UrgencyError::Cyclic`] if the precedences form a cycle.
    pub fn urgencies(&self) -> Result<Vec<u64>, UrgencyError> {
        let order = self.topo_order()?;
        let n = self.tasks.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.deps {
            succ[a.index()].push(b.index());
        }
        let mut urgency = vec![0u64; n];
        for &i in order.iter().rev() {
            let downstream = succ[i].iter().map(|&s| urgency[s]).max().unwrap_or(0);
            urgency[i] = self.tasks[i].duration + downstream;
        }
        Ok(urgency)
    }

    fn topo_order(&self) -> Result<Vec<usize>, UrgencyError> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.deps {
            succ[a.index()].push(b.index());
            indeg[b.index()] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &s in &succ[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if order.len() != n {
            return Err(UrgencyError::Cyclic);
        }
        Ok(order)
    }

    /// Schedules the graph over resources with the given capacities
    /// (indexed by [`ResourceId`]), most-urgent-first.
    ///
    /// # Errors
    ///
    /// Returns an [`UrgencyError`] for cyclic precedences, demands on
    /// unknown resources or demands exceeding total capacity.
    pub fn schedule(&self, capacities: &[u64]) -> Result<TaskSchedule, UrgencyError> {
        self.schedule_with(SchedulePolicy::Urgency, capacities)
    }

    /// Schedules with an explicit priority policy — [`SchedulePolicy::Fifo`]
    /// exists to quantify what the urgency measure buys.
    ///
    /// # Errors
    ///
    /// Same as [`TaskGraph::schedule`].
    pub fn schedule_with(
        &self,
        policy: SchedulePolicy,
        capacities: &[u64],
    ) -> Result<TaskSchedule, UrgencyError> {
        for (i, task) in self.tasks.iter().enumerate() {
            for &(r, amount) in &task.demands {
                let cap = *capacities.get(r.index()).ok_or(UrgencyError::UnknownResource(r))?;
                if amount > cap {
                    return Err(UrgencyError::UnsatisfiableDemand {
                        task: TaskId(i as u32),
                        resource: r,
                        demanded: amount,
                        capacity: cap,
                    });
                }
            }
        }
        let urgency = self.urgencies()?;
        let n = self.tasks.len();
        let mut pred_count = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.deps {
            succ[a.index()].push(b.index());
            pred[b.index()].push(a.index());
            pred_count[b.index()] += 1;
        }
        let mut start = vec![0u64; n];
        let mut finish = vec![0u64; n];
        let mut placed = vec![false; n];
        let mut in_use = vec![0u64; capacities.len()];
        // Running tasks: (finish_time, index).
        let mut running: Vec<(u64, usize)> = Vec::new();
        let mut ready: Vec<usize> = (0..n).filter(|&i| pred_count[i] == 0).collect();
        let mut time = 0u64;
        let mut done = 0usize;
        while done < n {
            match policy {
                SchedulePolicy::Urgency => {
                    ready.sort_by_key(|&i| (std::cmp::Reverse(urgency[i]), i));
                }
                SchedulePolicy::Fifo => ready.sort_unstable(),
            }
            let mut still_waiting = Vec::new();
            let mut progressed = false;
            for &i in &ready {
                let operands_at = pred[i].iter().map(|&p| finish[p]).max().unwrap_or(0);
                if operands_at > time {
                    still_waiting.push(i);
                    continue;
                }
                let fits = self.tasks[i]
                    .demands
                    .iter()
                    .all(|&(r, amount)| in_use[r.index()] + amount <= capacities[r.index()]);
                if !fits {
                    still_waiting.push(i);
                    continue;
                }
                for &(r, amount) in &self.tasks[i].demands {
                    in_use[r.index()] += amount;
                }
                start[i] = time;
                finish[i] = time + self.tasks[i].duration;
                running.push((finish[i], i));
                placed[i] = true;
                done += 1;
                progressed = true;
                for &s in &succ[i] {
                    pred_count[s] -= 1;
                    if pred_count[s] == 0 {
                        still_waiting.push(s);
                    }
                }
            }
            still_waiting.sort_unstable();
            still_waiting.dedup();
            still_waiting.retain(|&i| !placed[i]);
            ready = still_waiting;
            if !progressed {
                // Advance to the next release or operand-availability event.
                let next_finish = running.iter().map(|&(f, _)| f).filter(|&f| f > time).min();
                let next_operand = ready
                    .iter()
                    .flat_map(|&i| pred[i].iter().map(|&p| finish[p]))
                    .filter(|&f| f > time)
                    .min();
                time = match (next_finish, next_operand) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => time + 1,
                };
            }
            // Release resources of tasks finished by `time`.
            let mut kept = Vec::with_capacity(running.len());
            for &(f, i) in &running {
                if f <= time {
                    for &(r, amount) in &self.tasks[i].demands {
                        in_use[r.index()] -= amount;
                    }
                } else {
                    kept.push((f, i));
                }
            }
            running = kept;
        }
        Ok(TaskSchedule { start, finish })
    }
}

/// The result of [`TaskGraph::schedule`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSchedule {
    start: Vec<u64>,
    finish: Vec<u64>,
}

impl TaskSchedule {
    /// Start cycle of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn start(&self, id: TaskId) -> u64 {
        self.start[id.index()]
    }

    /// Finish cycle of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn finish(&self, id: TaskId) -> u64 {
        self.finish[id.index()]
    }

    /// Overall makespan — the system delay in cycles.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.finish.iter().copied().max().unwrap_or(0)
    }

    /// Idle (wait) time between a task's operands being ready and its start
    /// — the `W` of the paper's buffer equation.
    #[must_use]
    pub fn wait_before(&self, graph: &TaskGraph, id: TaskId) -> u64 {
        let ready = graph
            .deps
            .iter()
            .filter(|(_, b)| *b == id)
            .map(|(a, _)| self.finish[a.index()])
            .max()
            .unwrap_or(0);
        self.start[id.index()].saturating_sub(ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_schedules_sequentially() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 5, vec![]);
        let b = g.add_task("b", 3, vec![]);
        g.add_dep(a, b).unwrap();
        let s = g.schedule(&[]).unwrap();
        assert_eq!(s.start(a), 0);
        assert_eq!(s.start(b), 5);
        assert_eq!(s.makespan(), 8);
    }

    #[test]
    fn cyclic_deps_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1, vec![]);
        let b = g.add_task("b", 1, vec![]);
        g.add_dep(a, b).unwrap();
        g.add_dep(b, a).unwrap();
        assert_eq!(g.schedule(&[]).unwrap_err(), UrgencyError::Cyclic);
    }

    #[test]
    fn impossible_demand_rejected() {
        let pins = ResourceId::new(0);
        let mut g = TaskGraph::new();
        let _ = g.add_task("x", 1, vec![(pins, 100)]);
        assert!(matches!(
            g.schedule(&[64]).unwrap_err(),
            UrgencyError::UnsatisfiableDemand { .. }
        ));
    }

    #[test]
    fn unknown_resource_rejected() {
        let mut g = TaskGraph::new();
        let _ = g.add_task("x", 1, vec![(ResourceId::new(5), 1)]);
        assert!(matches!(g.schedule(&[1]).unwrap_err(), UrgencyError::UnknownResource(_)));
    }

    #[test]
    fn resource_contention_serializes() {
        let pins = ResourceId::new(0);
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 4, vec![(pins, 10)]);
        let b = g.add_task("b", 4, vec![(pins, 10)]);
        let s = g.schedule(&[10]).unwrap();
        // Both want all 10 pins: must serialize.
        let (first, second) = if s.start(a) <= s.start(b) { (a, b) } else { (b, a) };
        assert_eq!(s.start(first), 0);
        assert_eq!(s.start(second), 4);
        assert_eq!(s.makespan(), 8);
    }

    #[test]
    fn partial_demands_overlap() {
        let pins = ResourceId::new(0);
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 4, vec![(pins, 5)]);
        let b = g.add_task("b", 4, vec![(pins, 5)]);
        let s = g.schedule(&[10]).unwrap();
        assert_eq!(s.start(a), 0);
        assert_eq!(s.start(b), 0);
        assert_eq!(s.makespan(), 4);
    }

    #[test]
    fn urgency_prefers_critical_chain() {
        let pins = ResourceId::new(0);
        let mut g = TaskGraph::new();
        // Critical chain: a(2) -> c(10). Short task: b(2).
        let a = g.add_task("a", 2, vec![(pins, 10)]);
        let b = g.add_task("b", 2, vec![(pins, 10)]);
        let c = g.add_task("c", 10, vec![]);
        g.add_dep(a, c).unwrap();
        let s = g.schedule(&[10]).unwrap();
        // a (urgency 12) must run before b (urgency 2).
        assert!(s.start(a) < s.start(b));
        assert_eq!(s.makespan(), 12);
        let _ = c;
    }

    #[test]
    fn wait_before_measures_stall() {
        let pins = ResourceId::new(0);
        let mut g = TaskGraph::new();
        let src = g.add_task("src", 1, vec![]);
        let hog = g.add_task("hog", 10, vec![(pins, 8)]);
        let xfer = g.add_task("xfer", 2, vec![(pins, 8)]);
        g.add_dep(src, xfer).unwrap();
        let s = g.schedule(&[8]).unwrap();
        // hog (urgency 10) grabs the pins at t=0; xfer's operand is ready at
        // t=1 but it stalls until t=10.
        assert_eq!(s.start(hog), 0);
        assert_eq!(s.start(xfer), 10);
        assert_eq!(s.wait_before(&g, xfer), 9);
    }

    #[test]
    fn urgency_beats_fifo_on_critical_chains() {
        // FIFO starts b (id order) while the critical chain a→c waits.
        let pins = ResourceId::new(0);
        let mut g = TaskGraph::new();
        let b = g.add_task("b", 2, vec![(pins, 10)]);
        let a = g.add_task("a", 2, vec![(pins, 10)]);
        let c = g.add_task("c", 10, vec![]);
        g.add_dep(a, c).unwrap();
        let urgent = g.schedule_with(SchedulePolicy::Urgency, &[10]).unwrap();
        let fifo = g.schedule_with(SchedulePolicy::Fifo, &[10]).unwrap();
        assert!(urgent.makespan() < fifo.makespan());
        let _ = b;
    }

    #[test]
    fn policies_agree_without_contention() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 3, vec![]);
        let b = g.add_task("b", 4, vec![]);
        let _ = (a, b);
        let u = g.schedule_with(SchedulePolicy::Urgency, &[]).unwrap();
        let f = g.schedule_with(SchedulePolicy::Fifo, &[]).unwrap();
        assert_eq!(u.makespan(), f.makespan());
    }

    #[test]
    fn urgencies_computed_along_longest_path() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1, vec![]);
        let b = g.add_task("b", 2, vec![]);
        let c = g.add_task("c", 3, vec![]);
        g.add_dep(a, b).unwrap();
        g.add_dep(b, c).unwrap();
        let u = g.urgencies().unwrap();
        assert_eq!(u[a.index()], 6);
        assert_eq!(u[b.index()], 5);
        assert_eq!(u[c.index()], 3);
    }
}
