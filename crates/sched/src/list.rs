//! Resource-constrained list scheduling with multi-cycle operations.

use std::collections::BTreeMap;
use std::fmt;

use chop_dfg::{Dfg, NodeId, OpClass};
use serde::{Deserialize, Serialize};

use crate::bounds::alap_times;

/// Per-node scheduling attributes: duration in cycles and the functional
/// unit class occupied, if any.
///
/// # Examples
///
/// ```
/// use chop_dfg::benchmarks;
/// use chop_sched::NodeSpec;
///
/// let g = benchmarks::diffeq();
/// let specs = NodeSpec::uniform(&g, 2);
/// assert_eq!(specs.len(), g.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    durations: Vec<u64>,
    resources: Vec<Option<OpClass>>,
}

impl NodeSpec {
    /// Builds specs from closures over the graph.
    pub fn from_fn<D, R>(dfg: &Dfg, mut duration: D, mut resource: R) -> Self
    where
        D: FnMut(NodeId) -> u64,
        R: FnMut(NodeId) -> Option<OpClass>,
    {
        let durations = dfg.node_ids().map(&mut duration).collect();
        let resources = dfg.node_ids().map(&mut resource).collect();
        Self { durations, resources }
    }

    /// Every functional-unit operation takes `cycles`; I/O, constants and
    /// memory accesses take zero cycles and no FU.
    #[must_use]
    pub fn uniform(dfg: &Dfg, cycles: u64) -> Self {
        Self::from_fn(
            dfg,
            |id| {
                if dfg.node(id).op().class().is_some() {
                    cycles
                } else {
                    0
                }
            },
            |id| dfg.node(id).op().class(),
        )
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// Whether the spec covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Duration of a node in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn duration(&self, id: NodeId) -> u64 {
        self.durations[id.index()]
    }

    /// Functional-unit class occupied by a node, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn resource(&self, id: NodeId) -> Option<OpClass> {
        self.resources[id.index()]
    }
}

/// Functional-unit allocation: instances available per operation class.
///
/// # Examples
///
/// ```
/// use chop_dfg::OpClass;
/// use chop_sched::ResourceMap;
///
/// let mut alloc = ResourceMap::new();
/// alloc.set(OpClass::Addition, 3);
/// assert_eq!(alloc.get(OpClass::Addition), 3);
/// assert_eq!(alloc.get(OpClass::Multiplication), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceMap {
    counts: BTreeMap<OpClass, usize>,
}

impl ResourceMap {
    /// Creates an empty allocation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the instance count for a class.
    pub fn set(&mut self, class: OpClass, count: usize) {
        self.counts.insert(class, count);
    }

    /// Instance count for a class (zero if unset).
    #[must_use]
    pub fn get(&self, class: OpClass) -> usize {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Iterates over `(class, count)` pairs in class order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, usize)> + '_ {
        self.counts.iter().map(|(c, n)| (*c, *n))
    }
}

impl FromIterator<(OpClass, usize)> for ResourceMap {
    fn from_iter<T: IntoIterator<Item = (OpClass, usize)>>(iter: T) -> Self {
        Self { counts: iter.into_iter().collect() }
    }
}

impl fmt::Display for ResourceMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.counts.iter().map(|(c, n)| format!("{n}×{c}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// Error returned by [`list_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A node needs a functional-unit class with zero allocated instances.
    NoUnitsForClass(OpClass),
    /// The spec does not cover every node of the graph.
    SpecLengthMismatch {
        /// Nodes in the graph.
        expected: usize,
        /// Entries in the spec.
        found: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoUnitsForClass(c) => {
                write!(f, "no functional units allocated for {c}")
            }
            ScheduleError::SpecLengthMismatch { expected, found } => {
                write!(f, "node spec covers {found} nodes, graph has {expected}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A computed schedule: start/finish cycles per node and the makespan.
///
/// See [`list_schedule`] for construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    start: Vec<u64>,
    finish: Vec<u64>,
    makespan: u64,
}

impl Schedule {
    /// Start cycle of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn start(&self, id: NodeId) -> u64 {
        self.start[id.index()]
    }

    /// Finish cycle of a node (start + duration; zero-duration nodes finish
    /// when they start).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn finish(&self, id: NodeId) -> u64 {
        self.finish[id.index()]
    }

    /// Total schedule length in cycles.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Number of scheduled nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    pub(crate) fn from_parts(start: Vec<u64>, finish: Vec<u64>) -> Self {
        let makespan = finish.iter().copied().max().unwrap_or(0);
        Self { start, finish, makespan }
    }
}

/// Resource-constrained list scheduling.
///
/// Ready operations are started in order of least ALAP slack (most urgent
/// first), each occupying one instance of its functional-unit class for its
/// whole duration — the multi-cycle-operation model of the paper's second
/// experiment. Zero-duration nodes (I/O, constants) are placed as soon as
/// their operands are ready and never occupy resources.
///
/// # Errors
///
/// Returns [`ScheduleError::NoUnitsForClass`] if some operation's class has
/// no allocated instances.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::{list_schedule, NodeSpec, ResourceMap};
///
/// let g = benchmarks::fir_filter(4);
/// let specs = NodeSpec::uniform(&g, 1);
/// let alloc: ResourceMap =
///     [(OpClass::Addition, 1), (OpClass::Multiplication, 1)].into_iter().collect();
/// let s = list_schedule(&g, &specs, &alloc)?;
/// // 4 muls serialized on one multiplier; adds overlap on the adder.
/// assert!(s.makespan() >= 6);
/// # Ok::<(), chop_sched::ScheduleError>(())
/// ```
pub fn list_schedule(
    dfg: &Dfg,
    specs: &NodeSpec,
    alloc: &ResourceMap,
) -> Result<Schedule, ScheduleError> {
    if specs.len() != dfg.len() {
        return Err(ScheduleError::SpecLengthMismatch {
            expected: dfg.len(),
            found: specs.len(),
        });
    }
    for id in dfg.node_ids() {
        if let Some(class) = specs.resource(id) {
            if alloc.get(class) == 0 {
                return Err(ScheduleError::NoUnitsForClass(class));
            }
        }
    }

    let alap = alap_times(dfg, specs);
    let n = dfg.len();
    let mut start = vec![0u64; n];
    let mut finish = vec![0u64; n];
    let mut placed = vec![false; n];
    let mut remaining_preds: Vec<usize> =
        dfg.node_ids().map(|id| dfg.preds(id).len()).collect();
    // Busy intervals per class: (finish_time, count) map as a simple vec of
    // finish times, one per busy instance.
    let mut busy: BTreeMap<OpClass, Vec<u64>> = BTreeMap::new();

    let mut ready: Vec<NodeId> =
        dfg.node_ids().filter(|id| remaining_preds[id.index()] == 0).collect();
    let mut time = 0u64;
    let mut done = 0usize;

    while done < n {
        // Sort ready list: most urgent (smallest ALAP) first; ties by id
        // for determinism.
        ready.sort_by_key(|id| (alap[id.index()], id.index()));
        let mut next_ready: Vec<NodeId> = Vec::new();
        let mut started_any = false;
        for &id in &ready {
            debug_assert!(!placed[id.index()]);
            // Earliest start is when all operands are finished.
            let operand_ready =
                dfg.pred_nodes(id).map(|p| finish[p.index()]).max().unwrap_or(0);
            if operand_ready > time {
                next_ready.push(id);
                continue;
            }
            let dur = specs.duration(id);
            if let Some(class) = specs.resource(id) {
                let pool = busy.entry(class).or_default();
                pool.retain(|&f| f > time);
                if pool.len() >= alloc.get(class) {
                    next_ready.push(id);
                    continue;
                }
                pool.push(time + dur);
            }
            start[id.index()] = time;
            finish[id.index()] = time + dur;
            placed[id.index()] = true;
            done += 1;
            started_any = true;
            for succ in dfg.succ_nodes(id) {
                remaining_preds[succ.index()] -= 1;
                if remaining_preds[succ.index()] == 0 {
                    next_ready.push(succ);
                }
            }
        }
        // De-duplicate (a successor may appear once per freed edge).
        next_ready.sort_by_key(|id| id.index());
        next_ready.dedup();
        next_ready.retain(|id| !placed[id.index()]);
        ready = next_ready;
        if !started_any {
            // Advance time to the next interesting event: the earliest busy
            // unit release or operand finish among ready nodes.
            let next_release =
                busy.values().flat_map(|v| v.iter().copied()).filter(|&f| f > time).min();
            let next_operand = ready
                .iter()
                .flat_map(|&id| dfg.pred_nodes(id).map(|p| finish[p.index()]))
                .filter(|&f| f > time)
                .min();
            time = match (next_release, next_operand) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => time + 1,
            };
        }
    }
    Ok(Schedule::from_parts(start, finish))
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;
    use chop_dfg::{DfgBuilder, Operation};
    use chop_stat::units::Bits;

    use super::*;

    fn ar_alloc(adds: usize, muls: usize) -> ResourceMap {
        [(OpClass::Addition, adds), (OpClass::Multiplication, muls)].into_iter().collect()
    }

    #[test]
    fn missing_units_rejected() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let alloc = ResourceMap::new();
        assert!(matches!(
            list_schedule(&g, &specs, &alloc),
            Err(ScheduleError::NoUnitsForClass(_))
        ));
    }

    #[test]
    fn spec_length_checked() {
        let g = benchmarks::diffeq();
        let other = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&other, 1);
        assert!(matches!(
            list_schedule(&g, &specs, &ar_alloc(1, 1)),
            Err(ScheduleError::SpecLengthMismatch { .. })
        ));
    }

    #[test]
    fn precedence_respected() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let s = list_schedule(&g, &specs, &ar_alloc(2, 2)).unwrap();
        for (_, e) in g.edges() {
            assert!(s.finish(e.src()) <= s.start(e.dst()));
        }
    }

    #[test]
    fn resource_limits_respected() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 3);
        let alloc = ar_alloc(1, 2);
        let s = list_schedule(&g, &specs, &alloc).unwrap();
        // At every cycle, count concurrent ops per class.
        for t in 0..s.makespan() {
            for (class, limit) in alloc.iter() {
                let used = g
                    .node_ids()
                    .filter(|&id| {
                        specs.resource(id) == Some(class)
                            && s.start(id) <= t
                            && t < s.finish(id)
                    })
                    .count();
                assert!(used <= limit, "class {class} oversubscribed at cycle {t}");
            }
        }
    }

    #[test]
    fn more_units_never_slower() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 2);
        let slow = list_schedule(&g, &specs, &ar_alloc(1, 1)).unwrap();
        let fast = list_schedule(&g, &specs, &ar_alloc(4, 8)).unwrap();
        assert!(fast.makespan() <= slow.makespan());
    }

    #[test]
    fn serial_bound_matches_op_count() {
        // One adder, chain-free adds: makespan == #adds × duration.
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        for _ in 0..5 {
            let x = b.node(Operation::Input, w);
            let y = b.node(Operation::Input, w);
            let a = b.node(Operation::Add, w);
            b.connect(x, a).unwrap();
            b.connect(y, a).unwrap();
        }
        let g = b.build().unwrap();
        let specs = NodeSpec::uniform(&g, 3);
        let s = list_schedule(&g, &specs, &ar_alloc(1, 1)).unwrap();
        assert_eq!(s.makespan(), 15);
    }

    #[test]
    fn parallel_bound_matches_critical_path() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        // Enough units for full parallelism: critical path is 5 FU ops.
        let s = list_schedule(&g, &specs, &ar_alloc(12, 16)).unwrap();
        assert_eq!(s.makespan(), 5);
    }

    #[test]
    fn multicycle_durations_extend_makespan() {
        let g = benchmarks::ar_lattice_filter();
        let one = list_schedule(&g, &NodeSpec::uniform(&g, 1), &ar_alloc(4, 4)).unwrap();
        let three = list_schedule(&g, &NodeSpec::uniform(&g, 3), &ar_alloc(4, 4)).unwrap();
        assert!(three.makespan() >= 3 * one.makespan() / 2);
    }

    #[test]
    fn per_class_durations() {
        // Multiplies take 5 cycles, adds 1.
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::from_fn(
            &g,
            |id| match g.node(id).op().class() {
                Some(OpClass::Multiplication) => 5,
                Some(_) => 1,
                None => 0,
            },
            |id| g.node(id).op().class(),
        );
        let s = list_schedule(&g, &specs, &ar_alloc(12, 16)).unwrap();
        // Critical path: mul(5), add(1), mul(5), add(1), add(1) = 13.
        assert_eq!(s.makespan(), 13);
    }
}
