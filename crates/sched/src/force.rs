//! Force-directed scheduling (Paulin & Knight, the paper's ref. \[9\]).
//!
//! Given a latency budget, force-directed scheduling places operations one
//! at a time into the control step that minimizes the "force" — the
//! increase in expected concurrency of its operation class — balancing the
//! distribution graphs and therefore minimizing the functional units
//! needed. CHOP's prediction sweep uses list scheduling (allocation →
//! latency); this module provides the dual direction (latency →
//! allocation), used by the ablation benches and available to downstream
//! predictors.

use std::collections::BTreeMap;
use std::fmt;

use chop_dfg::{Dfg, NodeId, OpClass};

use crate::bounds::{alap_times, asap_times};
use crate::list::{NodeSpec, ResourceMap, Schedule};

/// Error returned by [`force_directed_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForceScheduleError {
    /// The latency budget is shorter than the critical path.
    LatencyTooShort {
        /// Requested budget in cycles.
        requested: u64,
        /// Critical-path length in cycles.
        critical_path: u64,
    },
    /// The spec does not cover every node.
    SpecLengthMismatch {
        /// Nodes in the graph.
        expected: usize,
        /// Entries supplied.
        found: usize,
    },
}

impl fmt::Display for ForceScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForceScheduleError::LatencyTooShort { requested, critical_path } => write!(
                f,
                "latency budget {requested} is below the critical path {critical_path}"
            ),
            ForceScheduleError::SpecLengthMismatch { expected, found } => {
                write!(f, "node spec covers {found} nodes, graph has {expected}")
            }
        }
    }
}

impl std::error::Error for ForceScheduleError {}

/// Schedules the graph into at most `latency` cycles, choosing control
/// steps that minimize per-class concurrency (self-force only, the
/// classic first-order formulation).
///
/// Returns the schedule and the implied allocation — the per-class peak
/// concurrency, i.e. the functional units the schedule needs.
///
/// # Errors
///
/// Returns [`ForceScheduleError::LatencyTooShort`] if the critical path
/// exceeds `latency`, or a length mismatch error for bad specs.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::force::force_directed_schedule;
/// use chop_sched::NodeSpec;
///
/// let g = benchmarks::ar_lattice_filter();
/// let specs = NodeSpec::uniform(&g, 1);
/// // Relaxed budget: FDS balances the 16 multiplications over 8 steps.
/// let (schedule, alloc) = force_directed_schedule(&g, &specs, 8)?;
/// assert!(schedule.makespan() <= 8);
/// assert!(alloc.get(OpClass::Multiplication) <= 4);
/// # Ok::<(), chop_sched::force::ForceScheduleError>(())
/// ```
pub fn force_directed_schedule(
    dfg: &Dfg,
    specs: &NodeSpec,
    latency: u64,
) -> Result<(Schedule, ResourceMap), ForceScheduleError> {
    if specs.len() != dfg.len() {
        return Err(ForceScheduleError::SpecLengthMismatch {
            expected: dfg.len(),
            found: specs.len(),
        });
    }
    let asap = asap_times(dfg, specs);
    let critical_path =
        dfg.node_ids().map(|id| asap[id.index()] + specs.duration(id)).max().unwrap_or(0);
    if critical_path > latency {
        return Err(ForceScheduleError::LatencyTooShort { requested: latency, critical_path });
    }

    // Time frames under the latency budget: ALAP against `latency` rather
    // than the critical path.
    let slack = latency - critical_path;
    let alap_cp = alap_times(dfg, specs);
    let mut earliest: Vec<u64> = asap.clone();
    let mut latest: Vec<u64> = alap_cp.iter().map(|&t| t + slack).collect();

    // Distribution graphs per class: expected concurrency per cycle,
    // assuming uniform placement within each frame.
    let fu_nodes: Vec<NodeId> =
        dfg.node_ids().filter(|&id| specs.resource(id).is_some()).collect();
    let mut fixed: Vec<Option<u64>> = vec![None; dfg.len()];

    let distribution = |class: OpClass,
                        earliest: &[u64],
                        latest: &[u64],
                        fixed: &[Option<u64>],
                        dfg: &Dfg,
                        specs: &NodeSpec|
     -> Vec<f64> {
        let mut dg = vec![0.0f64; latency as usize + 1];
        for id in dfg.node_ids() {
            if specs.resource(id) != Some(class) {
                continue;
            }
            let dur = specs.duration(id).max(1);
            let (lo, hi) = match fixed[id.index()] {
                Some(t) => (t, t),
                None => (earliest[id.index()], latest[id.index()]),
            };
            let frames = (hi - lo + 1) as f64;
            for start in lo..=hi {
                for c in start..(start + dur).min(latency) {
                    dg[c as usize] += 1.0 / frames;
                }
            }
        }
        dg
    };

    // Greedy: repeatedly pick the unfixed op/step pair with minimum force.
    let mut remaining: Vec<NodeId> = fu_nodes.clone();
    while !remaining.is_empty() {
        let mut best: Option<(usize, u64, f64)> = None; // (idx in remaining, step, force)
        for (ri, &id) in remaining.iter().enumerate() {
            let class = specs.resource(id).expect("fu node");
            let dg = distribution(class, &earliest, &latest, &fixed, dfg, specs);
            let dur = specs.duration(id).max(1);
            let frames = (latest[id.index()] - earliest[id.index()] + 1) as f64;
            for t in earliest[id.index()]..=latest[id.index()] {
                // Self force: Σ over occupied cycles of DG(c)·(Δprob).
                let mut force = 0.0;
                for c in t..(t + dur).min(latency) {
                    force += dg[c as usize] * (1.0 - 1.0 / frames);
                }
                for s in earliest[id.index()]..=latest[id.index()] {
                    if s == t {
                        continue;
                    }
                    for c in s..(s + dur).min(latency) {
                        force -= dg[c as usize] / frames;
                    }
                }
                if best.is_none_or(|(_, _, f)| force < f - 1e-12) {
                    best = Some((ri, t, force));
                }
            }
        }
        let (ri, step, _) = best.expect("remaining is non-empty");
        let id = remaining.swap_remove(ri);
        fixed[id.index()] = Some(step);
        earliest[id.index()] = step;
        latest[id.index()] = step;
        // Propagate frame tightening through the precedence closure.
        propagate_frames(dfg, specs, &mut earliest, &mut latest);
    }

    // Zero-duration / non-FU nodes: ASAP placement within updated frames.
    let mut start = vec![0u64; dfg.len()];
    let mut finish = vec![0u64; dfg.len()];
    for &id in dfg.topo_order() {
        let s = match fixed[id.index()] {
            Some(t) => t,
            None => dfg.pred_nodes(id).map(|p| finish[p.index()]).max().unwrap_or(0),
        };
        start[id.index()] = s;
        finish[id.index()] = s + specs.duration(id);
    }
    let schedule = Schedule::from_parts(start, finish);

    // Implied allocation: per-class peak concurrency.
    let mut alloc = ResourceMap::new();
    let mut per_cycle: BTreeMap<(OpClass, u64), usize> = BTreeMap::new();
    for id in dfg.node_ids() {
        if let Some(class) = specs.resource(id) {
            for c in schedule.start(id)..schedule.finish(id) {
                *per_cycle.entry((class, c)).or_insert(0) += 1;
            }
        }
    }
    for ((class, _), n) in per_cycle {
        if n > alloc.get(class) {
            alloc.set(class, n);
        }
    }
    Ok((schedule, alloc))
}

/// Tightens every node's `[earliest, latest]` frame against its
/// neighbours' frames (forward ASAP pass + backward ALAP pass).
fn propagate_frames(dfg: &Dfg, specs: &NodeSpec, earliest: &mut [u64], latest: &mut [u64]) {
    for &id in dfg.topo_order() {
        let ready = dfg
            .pred_nodes(id)
            .map(|p| earliest[p.index()] + specs.duration(p))
            .max()
            .unwrap_or(0);
        earliest[id.index()] = earliest[id.index()].max(ready);
    }
    for &id in dfg.topo_order().iter().rev() {
        let due = dfg
            .succ_nodes(id)
            .map(|s| latest[s.index()].saturating_sub(specs.duration(id)))
            .min();
        if let Some(due) = due {
            latest[id.index()] = latest[id.index()].min(due);
        }
    }
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;

    use super::*;
    use crate::list::{list_schedule, NodeSpec};

    #[test]
    fn latency_budget_enforced() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let err = force_directed_schedule(&g, &specs, 3).unwrap_err();
        assert!(matches!(err, ForceScheduleError::LatencyTooShort { critical_path: 5, .. }));
    }

    #[test]
    fn schedule_is_precedence_valid() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let (s, _) = force_directed_schedule(&g, &specs, 8).unwrap();
        for (_, e) in g.edges() {
            assert!(s.finish(e.src()) <= s.start(e.dst()));
        }
        assert!(s.makespan() <= 8);
    }

    #[test]
    fn relaxed_latency_needs_fewer_units() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let (_, tight) = force_directed_schedule(&g, &specs, 5).unwrap();
        let (_, loose) = force_directed_schedule(&g, &specs, 16).unwrap();
        assert!(
            loose.get(OpClass::Multiplication) <= tight.get(OpClass::Multiplication),
            "loose {loose} vs tight {tight}"
        );
        // 16 multiplications over 16 steps: a handful of multipliers
        // suffice (perfect balance of 1 is blocked by the mul→add→mul
        // precedence chains; greedy first-order FDS lands close).
        assert!(loose.get(OpClass::Multiplication) <= 4, "got {loose}");
    }

    #[test]
    fn fds_beats_or_matches_asap_peak_demand() {
        // The whole point of FDS: balanced distribution beats greedy ASAP
        // placement (here approximated by an unconstrained list schedule
        // padded to the same latency).
        let g = benchmarks::fir_filter(8);
        let specs = NodeSpec::uniform(&g, 1);
        let wide: crate::list::ResourceMap =
            [(OpClass::Addition, 8), (OpClass::Multiplication, 8)].into_iter().collect();
        let asap_like = list_schedule(&g, &specs, &wide).unwrap();
        let latency = asap_like.makespan() + 2;
        let (_, fds_alloc) = force_directed_schedule(&g, &specs, latency).unwrap();
        // ASAP fires all 8 muls in cycle 0; FDS spreads them.
        assert!(fds_alloc.get(OpClass::Multiplication) < 8);
    }

    #[test]
    fn multicycle_operations_respected() {
        let g = benchmarks::fir_filter(4);
        let specs = NodeSpec::from_fn(
            &g,
            |id| match g.node(id).op().class() {
                Some(OpClass::Multiplication) => 3,
                Some(_) => 1,
                None => 0,
            },
            |id| g.node(id).op().class(),
        );
        let (s, alloc) = force_directed_schedule(&g, &specs, 12).unwrap();
        for (_, e) in g.edges() {
            assert!(s.finish(e.src()) <= s.start(e.dst()));
        }
        assert!(alloc.get(OpClass::Multiplication) >= 1);
    }
}
