//! Scheduling substrate for the CHOP partitioner.
//!
//! BAD predicts partition implementations by actually *scheduling* the
//! partition's data-flow graph under candidate allocations, and CHOP's
//! system-integration step schedules data-transfer tasks on shared chip
//! pins and memory ports with an urgency measure "similar to urgency
//! measures used in \[Sehwa\]" (paper §2.5). This crate provides both layers:
//!
//! * [`asap_times`]/[`alap_times`] — unconstrained bounds,
//! * [`list_schedule`] — resource-constrained list scheduling with
//!   multi-cycle operations (slack-driven priority),
//! * [`pipeline`] — modulo-reservation checks and minimum feasible
//!   initiation intervals for pipelined design styles,
//! * [`lifetime`] — value-lifetime analysis and max-live register bits
//!   (with modulo folding for pipelines),
//! * [`urgency`] — urgency scheduling of task graphs over capacitated
//!   resources (chip pins, memory ports).
//!
//! # Examples
//!
//! ```
//! use chop_dfg::{benchmarks, OpClass};
//! use chop_sched::{list_schedule, NodeSpec, ResourceMap};
//!
//! let g = benchmarks::ar_lattice_filter();
//! let specs = NodeSpec::uniform(&g, 1); // every FU op takes one cycle
//! let mut alloc = ResourceMap::new();
//! alloc.set(OpClass::Addition, 2);
//! alloc.set(OpClass::Multiplication, 2);
//! let s = list_schedule(&g, &specs, &alloc)?;
//! assert!(s.makespan() >= 8); // 16 muls on 2 multipliers
//! # Ok::<(), chop_sched::ScheduleError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod bounds;
pub mod force;
pub mod lifetime;
mod list;
pub mod pipeline;
pub mod urgency;

pub use bounds::{alap_times, asap_times};
pub use list::{list_schedule, NodeSpec, ResourceMap, Schedule, ScheduleError};
