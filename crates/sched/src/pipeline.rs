//! Pipeline (modulo) resource analysis.
//!
//! A pipelined design style initiates a new data set every *initiation
//! interval* (II) cycles. Operations of successive initiations overlap, so
//! resource usage must be checked *modulo* the II — the classic Sehwa-style
//! reservation-table model the paper builds on.

use std::collections::BTreeMap;

use chop_dfg::{Dfg, OpClass};

use crate::list::{NodeSpec, ResourceMap, Schedule};

/// Per-class functional-unit demand of a schedule folded modulo `ii`.
///
/// Entry `(class, slot)` counts operations of `class` busy in cycle
/// `slot mod ii` across all overlapped initiations; the map's value is the
/// *maximum* over slots — the instances needed to sustain the pipeline.
///
/// # Panics
///
/// Panics if `ii` is zero.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::{list_schedule, NodeSpec, ResourceMap};
/// use chop_sched::pipeline::modulo_demand;
///
/// let g = benchmarks::fir_filter(4);
/// let specs = NodeSpec::uniform(&g, 1);
/// let alloc: ResourceMap =
///     [(OpClass::Addition, 4), (OpClass::Multiplication, 4)].into_iter().collect();
/// let s = list_schedule(&g, &specs, &alloc)?;
/// let demand = modulo_demand(&g, &specs, &s, 1);
/// // With II=1 every op of a class overlaps: demand equals op count.
/// assert_eq!(demand.get(OpClass::Multiplication), 4);
/// # Ok::<(), chop_sched::ScheduleError>(())
/// ```
#[must_use]
pub fn modulo_demand(dfg: &Dfg, specs: &NodeSpec, schedule: &Schedule, ii: u64) -> ResourceMap {
    assert!(ii > 0, "initiation interval must be positive");
    let mut per_slot: BTreeMap<(OpClass, u64), usize> = BTreeMap::new();
    for id in dfg.node_ids() {
        let Some(class) = specs.resource(id) else { continue };
        let dur = specs.duration(id);
        if dur == 0 {
            continue;
        }
        if dur >= ii {
            // The op occupies its unit in every modulo slot.
            for slot in 0..ii {
                *per_slot.entry((class, slot)).or_insert(0) += 1;
            }
            // Ops longer than the II additionally overlap themselves:
            // ceil(dur/ii) concurrent instances in every slot is modeled by
            // adding the extra overlap count.
            let extra = (dur.div_ceil(ii) - 1) as usize;
            if extra > 0 {
                for slot in 0..ii {
                    *per_slot.entry((class, slot)).or_insert(0) += extra;
                }
            }
        } else {
            for t in schedule.start(id)..schedule.finish(id) {
                *per_slot.entry((class, t % ii)).or_insert(0) += 1;
            }
        }
    }
    let mut demand = ResourceMap::new();
    for ((class, _), count) in per_slot {
        if count > demand.get(class) {
            demand.set(class, count);
        }
    }
    demand
}

/// Whether a schedule can be pipelined at initiation interval `ii` with the
/// given allocation.
///
/// # Panics
///
/// Panics if `ii` is zero.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::{list_schedule, NodeSpec, ResourceMap};
/// use chop_sched::pipeline::supports_ii;
///
/// let g = benchmarks::fir_filter(4);
/// let specs = NodeSpec::uniform(&g, 1);
/// let alloc: ResourceMap =
///     [(OpClass::Addition, 4), (OpClass::Multiplication, 4)].into_iter().collect();
/// let s = list_schedule(&g, &specs, &alloc)?;
/// assert!(supports_ii(&g, &specs, &s, &alloc, 1));
/// # Ok::<(), chop_sched::ScheduleError>(())
/// ```
#[must_use]
pub fn supports_ii(
    dfg: &Dfg,
    specs: &NodeSpec,
    schedule: &Schedule,
    alloc: &ResourceMap,
    ii: u64,
) -> bool {
    let demand = modulo_demand(dfg, specs, schedule, ii);
    let ok = demand.iter().all(|(class, need)| need <= alloc.get(class));
    ok
}

/// The smallest initiation interval the schedule sustains with `alloc`,
/// searching from 1 up to the schedule makespan (at which point the design
/// degenerates to non-pipelined operation).
///
/// Returns `max(makespan, 1)` for empty or purely-combinational schedules.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::{list_schedule, NodeSpec, ResourceMap};
/// use chop_sched::pipeline::min_initiation_interval;
///
/// let g = benchmarks::ar_lattice_filter();
/// let specs = NodeSpec::uniform(&g, 1);
/// let alloc: ResourceMap =
///     [(OpClass::Addition, 2), (OpClass::Multiplication, 4)].into_iter().collect();
/// let s = list_schedule(&g, &specs, &alloc)?;
/// let ii = min_initiation_interval(&g, &specs, &s, &alloc);
/// // 16 muls / 4 multipliers => at least 4 cycles between initiations.
/// assert!(ii >= 4);
/// assert!(ii <= s.makespan());
/// # Ok::<(), chop_sched::ScheduleError>(())
/// ```
#[must_use]
pub fn min_initiation_interval(
    dfg: &Dfg,
    specs: &NodeSpec,
    schedule: &Schedule,
    alloc: &ResourceMap,
) -> u64 {
    let horizon = schedule.makespan().max(1);
    // Resource lower bound: ceil(total busy cycles per class / instances).
    let mut busy: BTreeMap<OpClass, u64> = BTreeMap::new();
    for id in dfg.node_ids() {
        if let Some(class) = specs.resource(id) {
            *busy.entry(class).or_insert(0) += specs.duration(id);
        }
    }
    let lower = busy
        .iter()
        .map(|(class, cycles)| {
            let inst = alloc.get(*class).max(1) as u64;
            cycles.div_ceil(inst)
        })
        .max()
        .unwrap_or(1)
        .max(1);
    (lower..=horizon)
        .find(|&ii| supports_ii(dfg, specs, schedule, alloc, ii))
        .unwrap_or(horizon)
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;

    use super::*;
    use crate::list::list_schedule;

    fn alloc(adds: usize, muls: usize) -> ResourceMap {
        [(OpClass::Addition, adds), (OpClass::Multiplication, muls)].into_iter().collect()
    }

    #[test]
    fn ii_equal_to_makespan_always_supported() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let a = alloc(2, 3);
        let s = list_schedule(&g, &specs, &a).unwrap();
        assert!(supports_ii(&g, &specs, &s, &a, s.makespan()));
    }

    #[test]
    fn min_ii_monotone_in_allocation() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let small = alloc(1, 2);
        let big = alloc(4, 8);
        let s_small = list_schedule(&g, &specs, &small).unwrap();
        let s_big = list_schedule(&g, &specs, &big).unwrap();
        let ii_small = min_initiation_interval(&g, &specs, &s_small, &small);
        let ii_big = min_initiation_interval(&g, &specs, &s_big, &big);
        assert!(ii_big <= ii_small);
    }

    #[test]
    fn min_ii_at_least_resource_bound() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let a = alloc(2, 2);
        let s = list_schedule(&g, &specs, &a).unwrap();
        let ii = min_initiation_interval(&g, &specs, &s, &a);
        // 16 mul-cycles / 2 units = 8.
        assert!(ii >= 8);
    }

    #[test]
    fn long_ops_self_overlap() {
        // A single 6-cycle multiply at II=2 needs ceil(6/2)=3 units.
        let g = benchmarks::fir_filter(1); // 1 mul, 0 adds
        let specs = NodeSpec::uniform(&g, 6);
        let a = alloc(1, 4);
        let s = list_schedule(&g, &specs, &a).unwrap();
        let demand = modulo_demand(&g, &specs, &s, 2);
        assert_eq!(demand.get(OpClass::Multiplication), 3);
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_ii_panics() {
        let g = benchmarks::fir_filter(2);
        let specs = NodeSpec::uniform(&g, 1);
        let a = alloc(1, 1);
        let s = list_schedule(&g, &specs, &a).unwrap();
        let _ = modulo_demand(&g, &specs, &s, 0);
    }
}
