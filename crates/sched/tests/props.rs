//! Property-based tests of the scheduling substrate over random graphs.

use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
use chop_dfg::OpClass;
use chop_sched::force::force_directed_schedule;
use chop_sched::lifetime::{max_live_bits, max_live_bits_pipelined};
use chop_sched::pipeline::{min_initiation_interval, supports_ii};
use chop_sched::{alap_times, asap_times, list_schedule, NodeSpec, ResourceMap};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = (u64, RandomDfgParams)> {
    (any::<u64>(), 1usize..6, 1usize..7, 1usize..4, 0u32..100).prop_map(
        |(seed, layers, width, inputs, mul_percent)| {
            (seed, RandomDfgParams { layers, width, inputs, mul_percent, bits: 16 })
        },
    )
}

fn arb_alloc() -> impl Strategy<Value = ResourceMap> {
    (1usize..5, 1usize..5).prop_map(|(a, m)| {
        [(OpClass::Addition, a), (OpClass::Multiplication, m)].into_iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn list_schedule_respects_precedence_and_resources(
        (seed, params) in arb_workload(),
        alloc in arb_alloc(),
        dur in 1u64..4,
    ) {
        let g = random_layered(seed, params);
        let specs = NodeSpec::uniform(&g, dur);
        let s = list_schedule(&g, &specs, &alloc).unwrap();
        for (_, e) in g.edges() {
            prop_assert!(s.finish(e.src()) <= s.start(e.dst()));
        }
        for t in 0..s.makespan() {
            for (class, limit) in alloc.iter() {
                let used = g
                    .node_ids()
                    .filter(|&id| {
                        specs.resource(id) == Some(class)
                            && s.start(id) <= t
                            && t < s.finish(id)
                    })
                    .count();
                prop_assert!(used <= limit);
            }
        }
    }

    #[test]
    fn makespan_bounded_by_asap_and_serial(
        (seed, params) in arb_workload(),
        alloc in arb_alloc(),
    ) {
        let g = random_layered(seed, params);
        let specs = NodeSpec::uniform(&g, 1);
        let s = list_schedule(&g, &specs, &alloc).unwrap();
        let asap = asap_times(&g, &specs);
        let critical = g
            .node_ids()
            .map(|id| asap[id.index()] + specs.duration(id))
            .max()
            .unwrap_or(0);
        let serial: u64 = g.node_ids().map(|id| specs.duration(id)).sum();
        prop_assert!(s.makespan() >= critical);
        prop_assert!(s.makespan() <= serial.max(1));
    }

    #[test]
    fn alap_never_precedes_asap((seed, params) in arb_workload(), dur in 1u64..4) {
        let g = random_layered(seed, params);
        let specs = NodeSpec::uniform(&g, dur);
        let asap = asap_times(&g, &specs);
        let alap = alap_times(&g, &specs);
        for i in 0..g.len() {
            prop_assert!(asap[i] <= alap[i]);
        }
    }

    #[test]
    fn min_ii_is_supported_and_tight(
        (seed, params) in arb_workload(),
        alloc in arb_alloc(),
    ) {
        let g = random_layered(seed, params);
        let specs = NodeSpec::uniform(&g, 1);
        let s = list_schedule(&g, &specs, &alloc).unwrap();
        let ii = min_initiation_interval(&g, &specs, &s, &alloc);
        prop_assert!(supports_ii(&g, &specs, &s, &alloc, ii));
        if ii > 1 {
            prop_assert!(!supports_ii(&g, &specs, &s, &alloc, ii - 1));
        }
    }

    #[test]
    fn pipelined_registers_dominate_flat(
        (seed, params) in arb_workload(),
        alloc in arb_alloc(),
        ii in 1u64..8,
    ) {
        let g = random_layered(seed, params);
        let specs = NodeSpec::uniform(&g, 1);
        let s = list_schedule(&g, &specs, &alloc).unwrap();
        let flat = max_live_bits(&g, &s);
        let folded = max_live_bits_pipelined(&g, &s, ii);
        prop_assert!(folded.value() >= flat.value() || ii >= s.makespan().max(1));
    }

    #[test]
    fn fds_never_exceeds_latency_budget(
        (seed, params) in arb_workload(),
        slack in 0u64..6,
    ) {
        let g = random_layered(seed, params);
        let specs = NodeSpec::uniform(&g, 1);
        let asap = asap_times(&g, &specs);
        let critical = g
            .node_ids()
            .map(|id| asap[id.index()] + specs.duration(id))
            .max()
            .unwrap_or(1);
        let budget = critical + slack;
        let (s, alloc) = force_directed_schedule(&g, &specs, budget).unwrap();
        prop_assert!(s.makespan() <= budget);
        for (_, e) in g.edges() {
            prop_assert!(s.finish(e.src()) <= s.start(e.dst()));
        }
        // The implied allocation admits the schedule by construction.
        for (class, n) in alloc.iter() {
            prop_assert!(n >= 1);
            let _ = class;
        }
    }
}
