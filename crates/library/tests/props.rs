//! Property-based tests for the component library.

use chop_dfg::OpClass;
use chop_library::{HwModule, Library, ModuleKind};
use chop_stat::units::{Bits, Nanos, SquareMils};
use proptest::prelude::*;

fn arb_module(idx: usize) -> impl Strategy<Value = HwModule> {
    (
        prop_oneof![
            Just(ModuleKind::Functional(OpClass::Addition)),
            Just(ModuleKind::Functional(OpClass::Multiplication)),
            Just(ModuleKind::Functional(OpClass::Logic)),
            Just(ModuleKind::Register),
            Just(ModuleKind::Multiplexer),
        ],
        1u64..64,
        1.0f64..50_000.0,
        1.0f64..8_000.0,
    )
        .prop_map(move |(kind, width, area, delay)| {
            HwModule::new(
                format!("m{idx}_{width}"),
                kind,
                Bits::new(width),
                SquareMils::new(area),
                Nanos::new(delay),
            )
        })
}

fn arb_library() -> impl Strategy<Value = Library> {
    proptest::collection::vec(any::<u8>(), 1..10).prop_flat_map(|seeds| {
        let strategies: Vec<_> = seeds.iter().enumerate().map(|(i, _)| arb_module(i)).collect();
        strategies.prop_map(|modules| {
            Library::from_modules(modules).expect("generated names are unique")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn candidates_are_sorted_fastest_first(lib in arb_library()) {
        for class in OpClass::ALL {
            let c = lib.candidates(class);
            for pair in c.windows(2) {
                prop_assert!(pair[0].delay().value() <= pair[1].delay().value());
            }
        }
    }

    #[test]
    fn module_set_count_is_product_of_candidates(lib in arb_library()) {
        let classes = [OpClass::Addition, OpClass::Multiplication, OpClass::Logic];
        let populated: Vec<OpClass> = classes
            .into_iter()
            .filter(|&c| !lib.candidates(c).is_empty())
            .collect();
        let sets = lib.module_sets(populated.iter().copied());
        let expected: usize = populated.iter().map(|&c| lib.candidates(c).len()).product();
        prop_assert_eq!(sets.len(), expected.max(usize::from(populated.is_empty())));
        // Every set resolves every class to a real module.
        for set in &sets {
            for &class in &populated {
                prop_assert!(set.module_for(&lib, class).is_some());
            }
        }
    }

    #[test]
    fn bit_sliced_area_scales_linearly(lib in arb_library(), width in 1u64..128) {
        for m in lib.modules() {
            let scaled = m.area_at_width(Bits::new(width)).value();
            match m.kind() {
                ModuleKind::Register | ModuleKind::Multiplexer => {
                    let per_bit = m.area().value() / m.width().value() as f64;
                    prop_assert!((scaled - per_bit * width as f64).abs() < 1e-6);
                }
                ModuleKind::Functional(_) => prop_assert_eq!(scaled, m.area().value()),
            }
        }
    }

    #[test]
    fn power_defaults_are_positive(lib in arb_library()) {
        for m in lib.modules() {
            prop_assert!(m.power().value() > 0.0);
        }
    }

    #[test]
    fn lookup_by_name_finds_every_module(lib in arb_library()) {
        for m in lib.modules() {
            let found = lib.by_name(m.name()).expect("inserted module must be found");
            prop_assert_eq!(found, m);
        }
        prop_assert!(lib.by_name("definitely-not-a-module").is_none());
    }
}
