//! Component, chip-package and memory libraries for the CHOP partitioner.
//!
//! CHOP's inputs (paper §2.2) include *a library of components*, *the chip
//! set onto which the design is to be partitioned* and *on and off chip
//! memory modules*. This crate provides all three:
//!
//! * [`HwModule`] / [`Library`] — functional-unit, register and multiplexer
//!   modules with area and delay, plus enumeration of *module sets* (one
//!   module choice per operation class — "the library allows up to 9
//!   module-set configurations for implementation of each partition"),
//! * [`ChipPackage`] / [`ChipSet`] — MOSIS-style packages with project-area
//!   dimensions, pin count, pad delay and I/O pad area,
//! * [`MemoryModule`] — on/off-chip memories with port counts and access
//!   times,
//! * [`standard`] — the paper's Table 1 (3 µm library) and Table 2 (MOSIS
//!   package subset) encoded verbatim.
//!
//! # Examples
//!
//! ```
//! use chop_library::standard;
//! use chop_dfg::OpClass;
//!
//! let lib = standard::table1_library();
//! let adders = lib.candidates(OpClass::Addition);
//! assert_eq!(adders.len(), 3);
//! let sets = lib.module_sets([OpClass::Addition, OpClass::Multiplication]);
//! assert_eq!(sets.len(), 9); // 3 adders × 3 multipliers
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod chip;
mod library;
mod memory;
mod module;
pub mod standard;

pub use chip::{ChipId, ChipPackage, ChipSet};
pub use library::{Library, LibraryError, ModuleSet};
pub use memory::{MemoryId, MemoryModule, MemoryPlacement};
pub use module::{HwModule, ModuleKind, DEFAULT_POWER_DENSITY};
