//! Hardware modules: functional units, registers and multiplexers.

use std::fmt;

use chop_dfg::OpClass;
use chop_stat::units::{Bits, MilliWatts, Nanos, SquareMils};
use serde::{Deserialize, Serialize};

/// Default dynamic power density of the 3 µm technology, in mW per mil²
/// of active area at full utilization. Used when a module carries no
/// explicit power figure.
pub const DEFAULT_POWER_DENSITY: f64 = 0.02;

/// What role a module plays in a datapath.
///
/// # Examples
///
/// ```
/// use chop_library::ModuleKind;
/// use chop_dfg::OpClass;
///
/// let k = ModuleKind::Functional(OpClass::Addition);
/// assert!(k.is_functional());
/// assert!(!ModuleKind::Register.is_functional());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModuleKind {
    /// Implements one operation class (adder, multiplier, …).
    Functional(OpClass),
    /// A one-bit (or wider) storage register.
    Register,
    /// A 2:1 multiplexer slice.
    Multiplexer,
}

impl ModuleKind {
    /// Whether this module implements a datapath operation.
    #[must_use]
    pub fn is_functional(&self) -> bool {
        matches!(self, ModuleKind::Functional(_))
    }

    /// The operation class this module implements, if functional.
    #[must_use]
    pub fn op_class(&self) -> Option<OpClass> {
        match self {
            ModuleKind::Functional(c) => Some(*c),
            _ => None,
        }
    }
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleKind::Functional(c) => write!(f, "{c}"),
            ModuleKind::Register => write!(f, "Register"),
            ModuleKind::Multiplexer => write!(f, "2:1 Multiplexer"),
        }
    }
}

/// One row of the component library: a named module with bit width, area
/// and delay (Table 1 of the paper).
///
/// # Examples
///
/// ```
/// use chop_library::{HwModule, ModuleKind};
/// use chop_dfg::OpClass;
/// use chop_stat::units::{Bits, Nanos, SquareMils};
///
/// let add2 = HwModule::new(
///     "add2",
///     ModuleKind::Functional(OpClass::Addition),
///     Bits::new(16),
///     SquareMils::new(2880.0),
///     Nanos::new(53.0),
/// );
/// assert_eq!(add2.name(), "add2");
/// assert_eq!(add2.delay().value(), 53.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwModule {
    name: String,
    kind: ModuleKind,
    width: Bits,
    area: SquareMils,
    delay: Nanos,
    power: Option<MilliWatts>,
}

impl HwModule {
    /// Creates a module description.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or `width` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        kind: ModuleKind,
        width: Bits,
        area: SquareMils,
        delay: Nanos,
    ) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "module name must not be empty");
        assert!(width.value() > 0, "module width must be positive");
        Self { name, kind, width, area, delay, power: None }
    }

    /// Attaches an explicit power figure (full-utilization dynamic power).
    ///
    /// # Examples
    ///
    /// ```
    /// use chop_library::{HwModule, ModuleKind};
    /// use chop_dfg::OpClass;
    /// use chop_stat::units::{Bits, MilliWatts, Nanos, SquareMils};
    ///
    /// let m = HwModule::new(
    ///     "add1", ModuleKind::Functional(OpClass::Addition),
    ///     Bits::new(16), SquareMils::new(4200.0), Nanos::new(34.0),
    /// ).with_power(MilliWatts::new(120.0));
    /// assert_eq!(m.power().value(), 120.0);
    /// ```
    #[must_use]
    pub fn with_power(mut self, power: MilliWatts) -> Self {
        self.power = Some(power);
        self
    }

    /// The module's library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module's role.
    #[must_use]
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// The module's natural bit width.
    #[must_use]
    pub fn width(&self) -> Bits {
        self.width
    }

    /// Area of one instance at its natural width.
    #[must_use]
    pub fn area(&self) -> SquareMils {
        self.area
    }

    /// Propagation delay of one instance.
    #[must_use]
    pub fn delay(&self) -> Nanos {
        self.delay
    }

    /// Full-utilization dynamic power of one instance: the explicit figure
    /// if one was attached, otherwise area × [`DEFAULT_POWER_DENSITY`].
    #[must_use]
    pub fn power(&self) -> MilliWatts {
        self.power.unwrap_or_else(|| MilliWatts::new(self.area.value() * DEFAULT_POWER_DENSITY))
    }

    /// Area of an instance scaled to `width` bits (bit-sliced modules like
    /// registers and multiplexers scale linearly; functional units are used
    /// at their natural width).
    #[must_use]
    pub fn area_at_width(&self, width: Bits) -> SquareMils {
        match self.kind {
            ModuleKind::Register | ModuleKind::Multiplexer => SquareMils::new(
                self.area.value() * width.value() as f64 / self.width.value() as f64,
            ),
            ModuleKind::Functional(_) => self.area,
        }
    }
}

impl fmt::Display for HwModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} bits, {}, {})",
            self.name,
            self.kind,
            self.width.value(),
            self.area,
            self.delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> HwModule {
        HwModule::new(
            "register",
            ModuleKind::Register,
            Bits::new(1),
            SquareMils::new(31.0),
            Nanos::new(5.0),
        )
    }

    #[test]
    #[should_panic(expected = "name")]
    fn empty_name_panics() {
        let _ = HwModule::new(
            "",
            ModuleKind::Register,
            Bits::new(1),
            SquareMils::new(1.0),
            Nanos::new(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = HwModule::new(
            "r",
            ModuleKind::Register,
            Bits::new(0),
            SquareMils::new(1.0),
            Nanos::new(1.0),
        );
    }

    #[test]
    fn bit_sliced_area_scales() {
        let r = reg();
        assert_eq!(r.area_at_width(Bits::new(16)).value(), 31.0 * 16.0);
    }

    #[test]
    fn functional_area_does_not_scale() {
        let m = HwModule::new(
            "mul1",
            ModuleKind::Functional(chop_dfg::OpClass::Multiplication),
            Bits::new(16),
            SquareMils::new(49_000.0),
            Nanos::new(375.0),
        );
        assert_eq!(m.area_at_width(Bits::new(32)).value(), 49_000.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(reg().to_string().contains("register"));
    }

    #[test]
    fn default_power_derived_from_area() {
        let r = reg();
        assert!((r.power().value() - 31.0 * DEFAULT_POWER_DENSITY).abs() < 1e-9);
    }

    #[test]
    fn explicit_power_overrides_default() {
        let r = reg().with_power(chop_stat::units::MilliWatts::new(1.5));
        assert_eq!(r.power().value(), 1.5);
    }
}
