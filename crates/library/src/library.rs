//! The component library and module-set enumeration.

use std::collections::BTreeMap;
use std::fmt;

use chop_dfg::OpClass;
use serde::{Deserialize, Serialize};

use crate::module::{HwModule, ModuleKind};

/// Error raised by [`Library`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibraryError {
    /// Two modules share a name.
    DuplicateName(String),
    /// No module implements the requested operation class.
    NoImplementation(OpClass),
    /// The library has no register module (needed by every datapath).
    NoRegister,
    /// The library has no multiplexer module.
    NoMultiplexer,
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::DuplicateName(n) => write!(f, "duplicate module name {n:?}"),
            LibraryError::NoImplementation(c) => {
                write!(f, "library has no module implementing {c}")
            }
            LibraryError::NoRegister => write!(f, "library has no register module"),
            LibraryError::NoMultiplexer => write!(f, "library has no multiplexer module"),
        }
    }
}

impl std::error::Error for LibraryError {}

/// A component library: functional units, a register and a multiplexer.
///
/// The library "generally consists of more than one component which can
/// implement each operation type" (paper §2.2); picking one module per
/// class yields a [`ModuleSet`], and the cartesian product of choices is
/// what BAD sweeps.
///
/// # Examples
///
/// ```
/// use chop_library::standard::table1_library;
/// use chop_dfg::OpClass;
///
/// let lib = table1_library();
/// assert_eq!(lib.candidates(OpClass::Addition).len(), 3);
/// assert!(lib.register().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Library {
    modules: Vec<HwModule>,
}

impl Library {
    /// Creates an empty library.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a library from modules.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::DuplicateName`] if two modules share a name.
    pub fn from_modules(
        modules: impl IntoIterator<Item = HwModule>,
    ) -> Result<Self, LibraryError> {
        let mut lib = Library::new();
        for m in modules {
            lib.add(m)?;
        }
        Ok(lib)
    }

    /// Adds one module.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::DuplicateName`] if a module with the same
    /// name already exists.
    pub fn add(&mut self, module: HwModule) -> Result<(), LibraryError> {
        if self.modules.iter().any(|m| m.name() == module.name()) {
            return Err(LibraryError::DuplicateName(module.name().to_owned()));
        }
        self.modules.push(module);
        Ok(())
    }

    /// All modules, in insertion order.
    #[must_use]
    pub fn modules(&self) -> &[HwModule] {
        &self.modules
    }

    /// Looks a module up by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&HwModule> {
        self.modules.iter().find(|m| m.name() == name)
    }

    /// Functional modules implementing an operation class, fastest first.
    #[must_use]
    pub fn candidates(&self, class: OpClass) -> Vec<&HwModule> {
        let mut v: Vec<&HwModule> =
            self.modules.iter().filter(|m| m.kind().op_class() == Some(class)).collect();
        v.sort_by(|a, b| {
            a.delay().value().partial_cmp(&b.delay().value()).expect("delays are finite")
        });
        v
    }

    /// The register module, if present.
    #[must_use]
    pub fn register(&self) -> Option<&HwModule> {
        self.modules.iter().find(|m| m.kind() == ModuleKind::Register)
    }

    /// The multiplexer module, if present.
    #[must_use]
    pub fn multiplexer(&self) -> Option<&HwModule> {
        self.modules.iter().find(|m| m.kind() == ModuleKind::Multiplexer)
    }

    /// Checks the library can serve a design using the given classes.
    ///
    /// # Errors
    ///
    /// Returns the first missing capability as a [`LibraryError`].
    pub fn check_supports(
        &self,
        classes: impl IntoIterator<Item = OpClass>,
    ) -> Result<(), LibraryError> {
        for class in classes {
            if self.candidates(class).is_empty() {
                return Err(LibraryError::NoImplementation(class));
            }
        }
        if self.register().is_none() {
            return Err(LibraryError::NoRegister);
        }
        if self.multiplexer().is_none() {
            return Err(LibraryError::NoMultiplexer);
        }
        Ok(())
    }

    /// Enumerates every module set over the given operation classes: the
    /// cartesian product of one module choice per class.
    ///
    /// Classes with no candidates produce an empty result. Duplicate
    /// classes in the input are deduplicated.
    ///
    /// # Examples
    ///
    /// ```
    /// use chop_library::standard::table1_library;
    /// use chop_dfg::OpClass;
    ///
    /// let lib = table1_library();
    /// let sets = lib.module_sets([OpClass::Addition]);
    /// assert_eq!(sets.len(), 3);
    /// ```
    #[must_use]
    pub fn module_sets(&self, classes: impl IntoIterator<Item = OpClass>) -> Vec<ModuleSet> {
        let mut unique: Vec<OpClass> = Vec::new();
        for c in classes {
            if !unique.contains(&c) {
                unique.push(c);
            }
        }
        unique.sort();
        let mut sets = vec![ModuleSet::empty()];
        for class in unique {
            let candidates = self.candidates(class);
            if candidates.is_empty() {
                return Vec::new();
            }
            let mut next = Vec::with_capacity(sets.len() * candidates.len());
            for set in &sets {
                for cand in &candidates {
                    let mut s = set.clone();
                    s.choices.insert(class, cand.name().to_owned());
                    next.push(s);
                }
            }
            sets = next;
        }
        sets
    }
}

impl Extend<HwModule> for Library {
    /// Extends the library, panicking on duplicate names.
    fn extend<T: IntoIterator<Item = HwModule>>(&mut self, iter: T) {
        for m in iter {
            self.add(m).expect("duplicate module name in extend");
        }
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Library({} modules)", self.modules.len())
    }
}

/// One module choice per operation class.
///
/// # Examples
///
/// ```
/// use chop_library::standard::table1_library;
/// use chop_dfg::OpClass;
///
/// let lib = table1_library();
/// let set = &lib.module_sets([OpClass::Addition, OpClass::Multiplication])[0];
/// let adder = set.module_for(&lib, OpClass::Addition).unwrap();
/// assert!(adder.name().starts_with("add"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleSet {
    choices: BTreeMap<OpClass, String>,
}

impl ModuleSet {
    /// A module set with no choices (for designs with no FU operations).
    #[must_use]
    pub fn empty() -> Self {
        Self { choices: BTreeMap::new() }
    }

    /// A module set from explicit `(class, module name)` choices — the
    /// constructor deserializers use to rebuild a set that was persisted
    /// (e.g. from a prediction-cache snapshot). Later duplicates of a
    /// class override earlier ones.
    #[must_use]
    pub fn from_choices<I, S>(choices: I) -> Self
    where
        I: IntoIterator<Item = (OpClass, S)>,
        S: Into<String>,
    {
        Self { choices: choices.into_iter().map(|(c, n)| (c, n.into())).collect() }
    }

    /// The chosen module name for a class.
    #[must_use]
    pub fn name_for(&self, class: OpClass) -> Option<&str> {
        self.choices.get(&class).map(String::as_str)
    }

    /// Resolves the chosen module for a class against a library.
    #[must_use]
    pub fn module_for<'lib>(
        &self,
        library: &'lib Library,
        class: OpClass,
    ) -> Option<&'lib HwModule> {
        self.name_for(class).and_then(|n| library.by_name(n))
    }

    /// Iterates over `(class, module name)` choices in class order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, &str)> + '_ {
        self.choices.iter().map(|(c, n)| (*c, n.as_str()))
    }

    /// Number of classes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether no classes are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

impl fmt::Display for ModuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.choices.values().map(String::clone).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use chop_stat::units::{Bits, Nanos, SquareMils};

    use super::*;
    use crate::standard::table1_library;

    #[test]
    fn duplicate_names_rejected() {
        let m = HwModule::new(
            "x",
            ModuleKind::Register,
            Bits::new(1),
            SquareMils::new(1.0),
            Nanos::new(1.0),
        );
        let mut lib = Library::new();
        lib.add(m.clone()).unwrap();
        assert_eq!(lib.add(m), Err(LibraryError::DuplicateName("x".into())));
    }

    #[test]
    fn candidates_sorted_fastest_first() {
        let lib = table1_library();
        let adders = lib.candidates(OpClass::Addition);
        let delays: Vec<f64> = adders.iter().map(|m| m.delay().value()).collect();
        assert_eq!(delays, vec![34.0, 53.0, 151.0]);
    }

    #[test]
    fn module_sets_cartesian_product() {
        let lib = table1_library();
        let sets = lib.module_sets([OpClass::Addition, OpClass::Multiplication]);
        assert_eq!(sets.len(), 9);
        // All sets are distinct.
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                assert_ne!(sets[i], sets[j]);
            }
        }
    }

    #[test]
    fn module_sets_dedupe_classes() {
        let lib = table1_library();
        let sets = lib.module_sets([OpClass::Addition, OpClass::Addition]);
        assert_eq!(sets.len(), 3);
    }

    #[test]
    fn module_sets_empty_for_missing_class() {
        let lib = table1_library();
        assert!(lib.module_sets([OpClass::Division]).is_empty());
    }

    #[test]
    fn module_sets_with_no_classes_is_singleton_empty() {
        let lib = table1_library();
        let sets = lib.module_sets([]);
        assert_eq!(sets.len(), 1);
        assert!(sets[0].is_empty());
    }

    #[test]
    fn check_supports_reports_missing() {
        let lib = table1_library();
        assert!(lib.check_supports([OpClass::Addition]).is_ok());
        assert_eq!(
            lib.check_supports([OpClass::Division]),
            Err(LibraryError::NoImplementation(OpClass::Division))
        );
    }

    #[test]
    fn module_set_resolution() {
        let lib = table1_library();
        let sets = lib.module_sets([OpClass::Multiplication]);
        for set in &sets {
            let m = set.module_for(&lib, OpClass::Multiplication).unwrap();
            assert_eq!(m.kind().op_class(), Some(OpClass::Multiplication));
        }
    }
}
