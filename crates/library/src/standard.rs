//! The paper's input data: Table 1 (3 µm module library) and Table 2
//! (MOSIS package subset), plus example memories for extended scenarios.

use chop_dfg::OpClass;
use chop_stat::units::{Bits, Mils, Nanos, SquareMils};

use crate::chip::ChipPackage;
use crate::library::Library;
use crate::memory::{MemoryModule, MemoryPlacement};
use crate::module::{HwModule, ModuleKind};

/// The 3 µm library of Table 1.
///
/// | Module   | Type            | Bits | Area (mil²) | Delay (ns) |
/// |----------|-----------------|------|-------------|------------|
/// | add1     | Addition        | 16   | 4200        | 34         |
/// | add2     | Addition        | 16   | 2880        | 53         |
/// | add3     | Addition        | 16   | 1200        | 151        |
/// | mul1     | Multiplication  | 16   | 49000       | 375        |
/// | mul2     | Multiplication  | 16   | 9800        | 2950       |
/// | mul3     | Multiplication  | 16   | 7100        | 7370       |
/// | register | Register        | 1    | 31          | 5          |
/// | mux      | 2:1 Multiplexer | 1    | 18          | 4          |
///
/// # Examples
///
/// ```
/// use chop_library::standard::table1_library;
///
/// let lib = table1_library();
/// assert_eq!(lib.modules().len(), 8);
/// assert_eq!(lib.by_name("mul1").unwrap().delay().value(), 375.0);
/// ```
#[must_use]
pub fn table1_library() -> Library {
    let w16 = Bits::new(16);
    let w1 = Bits::new(1);
    let add = ModuleKind::Functional(OpClass::Addition);
    let mul = ModuleKind::Functional(OpClass::Multiplication);
    let rows = [
        HwModule::new("add1", add, w16, SquareMils::new(4200.0), Nanos::new(34.0)),
        HwModule::new("add2", add, w16, SquareMils::new(2880.0), Nanos::new(53.0)),
        HwModule::new("add3", add, w16, SquareMils::new(1200.0), Nanos::new(151.0)),
        HwModule::new("mul1", mul, w16, SquareMils::new(49_000.0), Nanos::new(375.0)),
        HwModule::new("mul2", mul, w16, SquareMils::new(9800.0), Nanos::new(2950.0)),
        HwModule::new("mul3", mul, w16, SquareMils::new(7100.0), Nanos::new(7370.0)),
        HwModule::new(
            "register",
            ModuleKind::Register,
            w1,
            SquareMils::new(31.0),
            Nanos::new(5.0),
        ),
        HwModule::new(
            "mux",
            ModuleKind::Multiplexer,
            w1,
            SquareMils::new(18.0),
            Nanos::new(4.0),
        ),
    ];
    Library::from_modules(rows).expect("table 1 has unique names")
}

/// The MOSIS standard-package subset of Table 2.
///
/// | No | Width (mil) | Height (mil) | Pins | Pad delay (ns) | Pad area (mil²) |
/// |----|-------------|--------------|------|----------------|-----------------|
/// | 1  | 311.02      | 362.20       | 64   | 25.0           | 297.60          |
/// | 2  | 311.02      | 362.20       | 84   | 25.0           | 297.60          |
///
/// # Examples
///
/// ```
/// use chop_library::standard::table2_packages;
///
/// let pkgs = table2_packages();
/// assert_eq!(pkgs[0].pins(), 64);
/// assert_eq!(pkgs[1].pins(), 84);
/// ```
#[must_use]
pub fn table2_packages() -> Vec<ChipPackage> {
    let (w, h) = (Mils::new(311.02), Mils::new(362.20));
    vec![
        ChipPackage::new(
            "MOSIS-1 (64 pin)",
            w,
            h,
            64,
            Nanos::new(25.0),
            SquareMils::new(297.60),
        ),
        ChipPackage::new(
            "MOSIS-2 (84 pin)",
            w,
            h,
            84,
            Nanos::new(25.0),
            SquareMils::new(297.60),
        ),
    ]
}

/// The Table 1 library extended with comparator, logic-unit and shifter
/// modules (consistent 3 µm scaling) so that workloads beyond the AR
/// filter — the HAL differential-equation solver, FFT control paths — can
/// be partitioned too.
///
/// # Examples
///
/// ```
/// use chop_library::standard::extended_library;
/// use chop_dfg::OpClass;
///
/// let lib = extended_library();
/// assert!(!lib.candidates(OpClass::Comparison).is_empty());
/// assert!(!lib.candidates(OpClass::Logic).is_empty());
/// ```
#[must_use]
pub fn extended_library() -> Library {
    let mut lib = table1_library();
    let w16 = Bits::new(16);
    let extra = [
        HwModule::new(
            "cmp1",
            ModuleKind::Functional(OpClass::Comparison),
            w16,
            SquareMils::new(1400.0),
            Nanos::new(40.0),
        ),
        HwModule::new(
            "cmp2",
            ModuleKind::Functional(OpClass::Comparison),
            w16,
            SquareMils::new(700.0),
            Nanos::new(120.0),
        ),
        HwModule::new(
            "logic1",
            ModuleKind::Functional(OpClass::Logic),
            w16,
            SquareMils::new(900.0),
            Nanos::new(18.0),
        ),
        HwModule::new(
            "shift1",
            ModuleKind::Functional(OpClass::Shift),
            w16,
            SquareMils::new(2100.0),
            Nanos::new(30.0),
        ),
        HwModule::new(
            "shift2",
            ModuleKind::Functional(OpClass::Shift),
            w16,
            SquareMils::new(800.0),
            Nanos::new(95.0),
        ),
    ];
    lib.extend(extra);
    lib
}

/// A small single-port on-chip RAM consistent with the 3 µm library, for
/// memory-partitioning scenarios beyond the AR filter.
///
/// # Examples
///
/// ```
/// use chop_library::standard::example_on_chip_ram;
///
/// let ram = example_on_chip_ram();
/// assert_eq!(ram.words(), 256);
/// ```
#[must_use]
pub fn example_on_chip_ram() -> MemoryModule {
    MemoryModule::new(
        "ram256x16",
        256,
        Bits::new(16),
        1,
        Nanos::new(150.0),
        SquareMils::new(14_000.0),
        MemoryPlacement::OnChip,
    )
}

/// An off-the-shelf SRAM part usable next to the chip set.
///
/// # Examples
///
/// ```
/// use chop_library::standard::example_off_shelf_ram;
/// use chop_library::MemoryPlacement;
///
/// let ram = example_off_shelf_ram();
/// assert_eq!(ram.placement(), MemoryPlacement::OffTheShelf);
/// assert_eq!(ram.area().value(), 0.0);
/// ```
#[must_use]
pub fn example_off_shelf_ram() -> MemoryModule {
    MemoryModule::new(
        "sram4kx16",
        4096,
        Bits::new(16),
        1,
        Nanos::new(200.0),
        SquareMils::new(0.0),
        MemoryPlacement::OffTheShelf,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let lib = table1_library();
        let check = |name: &str, area: f64, delay: f64| {
            let m = lib.by_name(name).unwrap();
            assert_eq!(m.area().value(), area, "{name} area");
            assert_eq!(m.delay().value(), delay, "{name} delay");
        };
        check("add1", 4200.0, 34.0);
        check("add2", 2880.0, 53.0);
        check("add3", 1200.0, 151.0);
        check("mul1", 49_000.0, 375.0);
        check("mul2", 9800.0, 2950.0);
        check("mul3", 7100.0, 7370.0);
        check("register", 31.0, 5.0);
        check("mux", 18.0, 4.0);
    }

    #[test]
    fn table1_supports_ar_filter_classes() {
        let lib = table1_library();
        assert!(lib.check_supports([OpClass::Addition, OpClass::Multiplication]).is_ok());
    }

    #[test]
    fn table2_matches_paper_rows() {
        let pkgs = table2_packages();
        for p in &pkgs {
            assert_eq!(p.width().value(), 311.02);
            assert_eq!(p.height().value(), 362.20);
            assert_eq!(p.pad_delay().value(), 25.0);
            assert_eq!(p.pad_area().value(), 297.60);
        }
        assert_eq!(pkgs[0].pins(), 64);
        assert_eq!(pkgs[1].pins(), 84);
    }

    #[test]
    fn area_delay_tradeoff_is_monotone_in_table1() {
        // Within each class, smaller modules are slower — the
        // serial/parallel tradeoff CHOP exploits.
        let lib = table1_library();
        for class in [OpClass::Addition, OpClass::Multiplication] {
            let mods = lib.candidates(class); // sorted fastest first
            for pair in mods.windows(2) {
                assert!(pair[0].area().value() > pair[1].area().value());
                assert!(pair[0].delay().value() < pair[1].delay().value());
            }
        }
    }
}
