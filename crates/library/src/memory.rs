//! On- and off-chip memory modules.

use std::fmt;

use chop_stat::units::{Bits, Nanos, SquareMils};
use serde::{Deserialize, Serialize};

/// Identifier of a memory block within a partitioning environment.
///
/// Matches [`chop_dfg::MemoryRef`] indices: `MemoryRef::new(i)` in a DFG
/// refers to `MemoryId::new(i)` in the environment.
///
/// # Examples
///
/// ```
/// use chop_library::MemoryId;
///
/// assert_eq!(MemoryId::new(0).to_string(), "M0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MemoryId(u32);

impl MemoryId {
    /// Creates a memory id.
    #[must_use]
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The raw index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl From<chop_dfg::MemoryRef> for MemoryId {
    fn from(r: chop_dfg::MemoryRef) -> Self {
        MemoryId::new(r.index())
    }
}

impl fmt::Display for MemoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Whether a memory block occupies chip project area or is an off-the-shelf
/// part outside the chip set.
///
/// CHOP explicitly "allows the use of off-the-shelf memory chips" (paper
/// §2.4); those consume pins for access but no project area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPlacement {
    /// Synthesized on a chip of the set; consumes project area there.
    OnChip,
    /// A separate off-the-shelf part; consumes only pins and wires.
    OffTheShelf,
}

impl fmt::Display for MemoryPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryPlacement::OnChip => write!(f, "on-chip"),
            MemoryPlacement::OffTheShelf => write!(f, "off-the-shelf"),
        }
    }
}

/// A memory block: geometry, timing, ports and placement style.
///
/// # Examples
///
/// ```
/// use chop_library::{MemoryModule, MemoryPlacement};
/// use chop_stat::units::{Bits, Nanos, SquareMils};
///
/// let ram = MemoryModule::new(
///     "ram256x16",
///     256,
///     Bits::new(16),
///     1,
///     Nanos::new(120.0),
///     SquareMils::new(12_000.0),
///     MemoryPlacement::OnChip,
/// );
/// assert_eq!(ram.ports(), 1);
/// assert_eq!(ram.data_width().value(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModule {
    name: String,
    words: u64,
    data_width: Bits,
    ports: u32,
    access_time: Nanos,
    area: SquareMils,
    placement: MemoryPlacement,
}

impl MemoryModule {
    /// Creates a memory-module description.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty, `words` is zero, `data_width` is zero or
    /// `ports` is zero.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        words: u64,
        data_width: Bits,
        ports: u32,
        access_time: Nanos,
        area: SquareMils,
        placement: MemoryPlacement,
    ) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "memory name must not be empty");
        assert!(words > 0, "memory must have at least one word");
        assert!(data_width.value() > 0, "memory data width must be positive");
        assert!(ports > 0, "memory must have at least one port");
        Self { name, words, data_width, ports, access_time, area, placement }
    }

    /// The block's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Word count.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Data width per word.
    #[must_use]
    pub fn data_width(&self) -> Bits {
        self.data_width
    }

    /// Simultaneous access ports.
    #[must_use]
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// Access (cycle) time of one port.
    #[must_use]
    pub fn access_time(&self) -> Nanos {
        self.access_time
    }

    /// Project area consumed when placed on-chip (zero off-the-shelf).
    #[must_use]
    pub fn area(&self) -> SquareMils {
        match self.placement {
            MemoryPlacement::OnChip => self.area,
            MemoryPlacement::OffTheShelf => SquareMils::zero(),
        }
    }

    /// Placement style.
    #[must_use]
    pub fn placement(&self) -> MemoryPlacement {
        self.placement
    }

    /// Address width in bits (`ceil(log2(words))`, at least 1).
    #[must_use]
    pub fn address_width(&self) -> Bits {
        let w = 64 - (self.words - 1).leading_zeros().min(63);
        Bits::new(u64::from(w.max(1)))
    }

    /// Pins a chip must reserve to talk to this memory: data + address +
    /// select + read/write strobe per port.
    ///
    /// These are the "necessary signal pins which are not shared (Select,
    /// R/W lines for memory blocks)" the paper reserves in §2.4.
    #[must_use]
    pub fn interface_pins(&self) -> u32 {
        let per_port = self.data_width.value() as u32 + self.address_width().value() as u32 + 2;
        per_port * self.ports
    }

    /// Peak transfer bandwidth in bits per access across all ports.
    #[must_use]
    pub fn bandwidth_per_access(&self) -> Bits {
        Bits::new(self.data_width.value() * u64::from(self.ports))
    }
}

impl fmt::Display for MemoryModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}×{} bits, {} port(s), {}, {})",
            self.name,
            self.words,
            self.data_width.value(),
            self.ports,
            self.access_time,
            self.placement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ram(words: u64, placement: MemoryPlacement) -> MemoryModule {
        MemoryModule::new(
            "ram",
            words,
            Bits::new(16),
            1,
            Nanos::new(100.0),
            SquareMils::new(10_000.0),
            placement,
        )
    }

    #[test]
    fn address_width_rounds_up() {
        assert_eq!(ram(1, MemoryPlacement::OnChip).address_width().value(), 1);
        assert_eq!(ram(2, MemoryPlacement::OnChip).address_width().value(), 1);
        assert_eq!(ram(3, MemoryPlacement::OnChip).address_width().value(), 2);
        assert_eq!(ram(256, MemoryPlacement::OnChip).address_width().value(), 8);
        assert_eq!(ram(257, MemoryPlacement::OnChip).address_width().value(), 9);
    }

    #[test]
    fn off_the_shelf_has_no_area() {
        assert_eq!(ram(256, MemoryPlacement::OffTheShelf).area().value(), 0.0);
        assert_eq!(ram(256, MemoryPlacement::OnChip).area().value(), 10_000.0);
    }

    #[test]
    fn interface_pins_count_data_addr_control() {
        let m = ram(256, MemoryPlacement::OnChip);
        // 16 data + 8 address + select + r/w = 26.
        assert_eq!(m.interface_pins(), 26);
    }

    #[test]
    fn multiport_bandwidth_scales() {
        let m = MemoryModule::new(
            "dp",
            64,
            Bits::new(8),
            2,
            Nanos::new(80.0),
            SquareMils::new(5_000.0),
            MemoryPlacement::OnChip,
        );
        assert_eq!(m.bandwidth_per_access().value(), 16);
        assert_eq!(m.interface_pins(), (8 + 6 + 2) * 2);
    }

    #[test]
    fn memory_id_from_ref() {
        let id: MemoryId = chop_dfg::MemoryRef::new(4).into();
        assert_eq!(id.index(), 4);
    }
}
