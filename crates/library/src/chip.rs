//! Chip packages and chip sets.

use std::fmt;

use chop_stat::units::{Mils, Nanos, SquareMils};
use serde::{Deserialize, Serialize};

/// Identifier of a chip within a [`ChipSet`].
///
/// # Examples
///
/// ```
/// use chop_library::ChipId;
///
/// let c = ChipId::new(2);
/// assert_eq!(c.to_string(), "chip2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ChipId(u32);

impl ChipId {
    /// Creates a chip id.
    #[must_use]
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The chip's index into its [`ChipSet`].
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}", self.0)
    }
}

/// A chip package: project-area dimensions, pin count, pad delay and I/O
/// pad area (Table 2 of the paper — a subset of MOSIS standard packages).
///
/// # Examples
///
/// ```
/// use chop_library::ChipPackage;
/// use chop_stat::units::{Mils, Nanos, SquareMils};
///
/// let pkg = ChipPackage::new(
///     "MOSIS-84",
///     Mils::new(311.02),
///     Mils::new(362.20),
///     84,
///     Nanos::new(25.0),
///     SquareMils::new(297.60),
/// );
/// assert_eq!(pkg.pins(), 84);
/// assert!(pkg.usable_area().value() < pkg.project_area().value());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipPackage {
    name: String,
    width: Mils,
    height: Mils,
    pins: u32,
    pad_delay: Nanos,
    pad_area: SquareMils,
}

impl ChipPackage {
    /// Creates a package description.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty, `pins` is zero, or the dimensions are
    /// zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        width: Mils,
        height: Mils,
        pins: u32,
        pad_delay: Nanos,
        pad_area: SquareMils,
    ) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "package name must not be empty");
        assert!(pins > 0, "package must have pins");
        assert!(
            width.value() > 0.0 && height.value() > 0.0,
            "package dimensions must be positive"
        );
        Self { name, width, height, pins, pad_delay, pad_area }
    }

    /// The package's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Project-area width.
    #[must_use]
    pub fn width(&self) -> Mils {
        self.width
    }

    /// Project-area height.
    #[must_use]
    pub fn height(&self) -> Mils {
        self.height
    }

    /// Number of package pins.
    #[must_use]
    pub fn pins(&self) -> u32 {
        self.pins
    }

    /// Delay through one I/O pad.
    #[must_use]
    pub fn pad_delay(&self) -> Nanos {
        self.pad_delay
    }

    /// Area of one I/O pad.
    #[must_use]
    pub fn pad_area(&self) -> SquareMils {
        self.pad_area
    }

    /// Total project area (`width × height`).
    #[must_use]
    pub fn project_area(&self) -> SquareMils {
        self.width * self.height
    }

    /// Project area left for logic inside the I/O pad ring.
    ///
    /// The pad ring spans the die periphery regardless of how many pins
    /// the package bonds out, so two packages sharing a die (Table 2's
    /// 64- and 84-pin MOSIS parts) have the same usable area; the pin
    /// count matters for bandwidth, not for logic area. The ring depth is
    /// one pad side (`√pad_area`) on each edge.
    #[must_use]
    pub fn usable_area(&self) -> SquareMils {
        let ring = 2.0 * self.pad_area.value().sqrt();
        let w = (self.width.value() - ring).max(0.0);
        let h = (self.height.value() - ring).max(0.0);
        SquareMils::new(w * h)
    }
}

impl fmt::Display for ChipPackage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} × {}, {} pins, pad {} / {})",
            self.name, self.width, self.height, self.pins, self.pad_delay, self.pad_area
        )
    }
}

/// The chip set onto which a design is partitioned: one package per chip.
///
/// Several chips may share the same package type (as in the paper's
/// experiments, where every chip uses package 1 or package 2).
///
/// # Examples
///
/// ```
/// use chop_library::{standard, ChipSet};
///
/// let pkgs = standard::table2_packages();
/// let chips = ChipSet::uniform(pkgs[1].clone(), 3);
/// assert_eq!(chips.len(), 3);
/// assert_eq!(chips.total_pins(), 3 * 84);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ChipSet {
    chips: Vec<ChipPackage>,
}

impl ChipSet {
    /// Creates an empty chip set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a chip set of `count` chips sharing one package type.
    #[must_use]
    pub fn uniform(package: ChipPackage, count: usize) -> Self {
        Self { chips: vec![package; count] }
    }

    /// Creates a chip set from explicit packages.
    #[must_use]
    pub fn from_packages(packages: impl IntoIterator<Item = ChipPackage>) -> Self {
        Self { chips: packages.into_iter().collect() }
    }

    /// Adds one chip and returns its id.
    pub fn push(&mut self, package: ChipPackage) -> ChipId {
        let id = ChipId::new(self.chips.len() as u32);
        self.chips.push(package);
        id
    }

    /// Number of chips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// The package of a chip.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn chip(&self, id: ChipId) -> &ChipPackage {
        &self.chips[id.index()]
    }

    /// Iterates over `(id, package)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ChipId, &ChipPackage)> + '_ {
        self.chips.iter().enumerate().map(|(i, p)| (ChipId::new(i as u32), p))
    }

    /// All chip ids.
    pub fn ids(&self) -> impl Iterator<Item = ChipId> + '_ {
        (0..self.chips.len()).map(|i| ChipId::new(i as u32))
    }

    /// Sum of pins over all chips.
    #[must_use]
    pub fn total_pins(&self) -> u32 {
        self.chips.iter().map(ChipPackage::pins).sum()
    }
}

impl fmt::Display for ChipSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChipSet({} chips)", self.chips.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::table2_packages;

    #[test]
    fn table2_package_geometry() {
        let pkgs = table2_packages();
        assert_eq!(pkgs.len(), 2);
        assert_eq!(pkgs[0].pins(), 64);
        assert_eq!(pkgs[1].pins(), 84);
        // Both share the same project area.
        assert_eq!(pkgs[0].project_area().value(), pkgs[1].project_area().value());
    }

    #[test]
    fn usable_area_is_the_die_minus_pad_ring() {
        let pkgs = table2_packages();
        let a64 = pkgs[0].usable_area().value();
        let a84 = pkgs[1].usable_area().value();
        // Same die, same pad ring: pin count does not change logic area.
        assert_eq!(a64, a84);
        assert!(a64 > 0.0);
        assert!(a64 < pkgs[0].project_area().value());
    }

    #[test]
    fn chip_set_uniform_and_push() {
        let pkgs = table2_packages();
        let mut set = ChipSet::uniform(pkgs[0].clone(), 2);
        let id = set.push(pkgs[1].clone());
        assert_eq!(set.len(), 3);
        assert_eq!(set.chip(id).pins(), 84);
        assert_eq!(set.ids().count(), 3);
    }

    #[test]
    #[should_panic(expected = "pins")]
    fn zero_pins_panics() {
        let _ = ChipPackage::new(
            "bad",
            Mils::new(1.0),
            Mils::new(1.0),
            0,
            Nanos::new(1.0),
            SquareMils::new(1.0),
        );
    }
}
