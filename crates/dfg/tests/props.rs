//! Property-based tests for the DFG substrate.

use std::collections::HashMap;

use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
use chop_dfg::eval::{evaluate, Memory};
use chop_dfg::grouping::{
    cut_values, extract_group, extract_group_detailed, GroupOrigin, Grouping,
};
use chop_dfg::parse::{parse_dfg, to_text};
use chop_dfg::{analysis, NodeId, OpClass, Operation};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = (u64, RandomDfgParams)> {
    (any::<u64>(), 1usize..6, 1usize..8, 1usize..5, 0u32..100).prop_map(
        |(seed, layers, width, inputs, mul_percent)| {
            (seed, RandomDfgParams { layers, width, inputs, mul_percent, bits: 16 })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_graphs_validate((seed, params) in arb_params()) {
        let g = random_layered(seed, params);
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn topo_order_is_a_permutation((seed, params) in arb_params()) {
        let g = random_layered(seed, params);
        let mut seen = vec![false; g.len()];
        for id in g.topo_order() {
            prop_assert!(!seen[id.index()]);
            seen[id.index()] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn asap_levels_monotone_along_edges((seed, params) in arb_params()) {
        let g = random_layered(seed, params);
        let lev = analysis::asap_levels(&g);
        for (_, e) in g.edges() {
            prop_assert!(lev[e.src().index()] < lev[e.dst().index()]);
        }
    }

    #[test]
    fn horizontal_grouping_covers_and_is_forward(
        (seed, params) in arb_params(),
        k in 1usize..4,
    ) {
        let g = random_layered(seed, params);
        let k = k.min(g.len());
        let parts = Grouping::horizontal(&g, k);
        // Every node in exactly one group.
        let total: usize = (0..k).map(|i| parts.members(i).len()).sum();
        prop_assert_eq!(total, g.len());
        // Topological slicing never sends data backwards.
        for c in cut_values(&g, &parts) {
            prop_assert!(c.src_group < c.dst_group);
        }
        prop_assert!(parts.check_no_mutual_dependency(&g).is_ok());
    }

    #[test]
    fn extracted_groups_conserve_fu_operations(
        (seed, params) in arb_params(),
        k in 1usize..4,
    ) {
        let g = random_layered(seed, params);
        let k = k.min(g.len());
        let parts = Grouping::horizontal(&g, k);
        let full = g.op_histogram();
        let mut by_class = [0usize; 6];
        for group in 0..k {
            let sub = extract_group(&g, &parts, group);
            prop_assert!(sub.validate().is_ok());
            let h = sub.op_histogram();
            for (i, class) in OpClass::ALL.into_iter().enumerate() {
                by_class[i] += h.count_class(class);
            }
        }
        // Functional-unit operations are conserved across extraction —
        // only I/O nodes are synthesized at the cuts.
        for (i, class) in OpClass::ALL.into_iter().enumerate() {
            prop_assert_eq!(by_class[i], full.count_class(class));
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in ".{0,200}") {
        // Errors are fine; panics are not.
        let _ = parse_dfg(&text);
    }

    #[test]
    fn parser_never_panics_on_plausible_lines(
        lines in proptest::collection::vec("[a-z]{1,4} = [a-z]{1,6}( [a-zA-Z0-9]{1,4}){0,3}", 0..12),
    ) {
        let _ = parse_dfg(&lines.join("\n"));
    }

    #[test]
    fn text_format_round_trips((seed, params) in arb_params()) {
        let g = random_layered(seed, params);
        let text = to_text(&g);
        let back = parse_dfg(&text).expect("writer output must re-parse");
        prop_assert_eq!(back.len(), g.len());
        prop_assert_eq!(back.edges().count(), g.edges().count());
        prop_assert_eq!(back.op_histogram(), g.op_histogram());
        // Idempotence up to line order (node ids permute under re-parse).
        let sorted = |t: &str| {
            let mut v: Vec<&str> = t.lines().collect();
            v.sort_unstable();
            v.join("\n")
        };
        prop_assert_eq!(sorted(&to_text(&back)), sorted(&text));
    }

    #[test]
    fn partitioned_execution_is_equivalent(
        (seed, params) in arb_params(),
        k in 1usize..4,
        input_seed in any::<u64>(),
    ) {
        // Executing each partition independently, wiring cut values
        // across, must reproduce the whole graph's outputs exactly — the
        // semantic soundness of extract_group, which everything CHOP
        // predicts rests on.
        let g = random_layered(seed, params);
        let k = k.min(g.len());
        let grouping = Grouping::horizontal(&g, k);

        // Deterministic pseudo-random input/const streams.
        let stim = |i: u64| input_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i * 1_000_003);
        let input_vals: HashMap<NodeId, u64> = g
            .inputs()
            .enumerate()
            .map(|(i, id)| (id, stim(i as u64)))
            .collect();
        let whole_inputs: Vec<u64> = g.inputs().map(|id| input_vals[&id]).collect();
        let mut mem = Memory::new(8);
        let whole = evaluate(&g, &whole_inputs, &[], &mut mem).unwrap();

        // Partitioned execution: groups in index order (horizontal cuts
        // are forward-only, so producers always run first).
        let mut cross: HashMap<NodeId, u64> = HashMap::new();
        let mut final_outputs: HashMap<NodeId, u64> = HashMap::new();
        for group in 0..k {
            let ex = extract_group_detailed(&g, &grouping, group);
            let sub_inputs: Vec<u64> = ex
                .dfg
                .inputs()
                .map(|sid| match ex.origin[sid.index()] {
                    GroupOrigin::Original(orig) => input_vals[&orig],
                    GroupOrigin::CutInput { source } => cross[&source],
                    GroupOrigin::CutOutput { .. } => unreachable!("input cannot be cut output"),
                })
                .collect();
            let mut sub_mem = Memory::new(8);
            let out = evaluate(&ex.dfg, &sub_inputs, &[], &mut sub_mem).unwrap();
            for (value, sid) in out.into_iter().zip(ex.dfg.outputs()) {
                match ex.origin[sid.index()] {
                    GroupOrigin::Original(orig) => {
                        final_outputs.insert(orig, value);
                    }
                    GroupOrigin::CutOutput { source } => {
                        cross.insert(source, value);
                    }
                    GroupOrigin::CutInput { .. } => unreachable!("output cannot be cut input"),
                }
            }
        }
        let partitioned: Vec<u64> = g.outputs().map(|id| final_outputs[&id]).collect();
        prop_assert_eq!(partitioned, whole);
        // random_layered has no constants or memory ops, so streams align.
        prop_assert_eq!(
            g.nodes().filter(|(_, n)| n.op() == Operation::Const).count(),
            0
        );
    }

    #[test]
    fn partitioned_execution_equivalent_with_constants(k in 1usize..5) {
        // Deterministic workload with constant nodes: the DCT-8. Verifies
        // the const-stream mapping of extract_group_detailed.
        let g = chop_dfg::benchmarks::dct8();
        let k = k.min(g.len());
        let grouping = Grouping::horizontal(&g, k);
        let input_vals: HashMap<NodeId, u64> =
            g.inputs().enumerate().map(|(i, id)| (id, (i as u64) * 31 + 5)).collect();
        let const_vals: HashMap<NodeId, u64> = g
            .nodes()
            .filter(|(_, n)| n.op() == Operation::Const)
            .enumerate()
            .map(|(i, (id, _))| (id, (i as u64) * 7 + 2))
            .collect();
        let whole_inputs: Vec<u64> = g.inputs().map(|id| input_vals[&id]).collect();
        let whole_consts: Vec<u64> = g
            .nodes()
            .filter(|(_, n)| n.op() == Operation::Const)
            .map(|(id, _)| const_vals[&id])
            .collect();
        let mut mem = Memory::new(4);
        let whole = evaluate(&g, &whole_inputs, &whole_consts, &mut mem).unwrap();

        let mut cross: HashMap<NodeId, u64> = HashMap::new();
        let mut final_outputs: HashMap<NodeId, u64> = HashMap::new();
        for group in 0..k {
            let ex = extract_group_detailed(&g, &grouping, group);
            let sub_inputs: Vec<u64> = ex
                .dfg
                .inputs()
                .map(|sid| match ex.origin[sid.index()] {
                    GroupOrigin::Original(orig) => input_vals[&orig],
                    GroupOrigin::CutInput { source } => cross[&source],
                    GroupOrigin::CutOutput { .. } => unreachable!(),
                })
                .collect();
            let sub_consts: Vec<u64> = ex
                .dfg
                .nodes()
                .filter(|(_, n)| n.op() == Operation::Const)
                .map(|(sid, _)| match ex.origin[sid.index()] {
                    GroupOrigin::Original(orig) => const_vals[&orig],
                    _ => unreachable!("constants are never synthesized"),
                })
                .collect();
            let mut sub_mem = Memory::new(4);
            let out = evaluate(&ex.dfg, &sub_inputs, &sub_consts, &mut sub_mem).unwrap();
            for (value, sid) in out.into_iter().zip(ex.dfg.outputs()) {
                match ex.origin[sid.index()] {
                    GroupOrigin::Original(orig) => {
                        final_outputs.insert(orig, value);
                    }
                    GroupOrigin::CutOutput { source } => {
                        cross.insert(source, value);
                    }
                    GroupOrigin::CutInput { .. } => unreachable!(),
                }
            }
        }
        let partitioned: Vec<u64> = g.outputs().map(|id| final_outputs[&id]).collect();
        prop_assert_eq!(partitioned, whole);
    }

    #[test]
    fn merging_two_groups_never_increases_cut_bits(
        (seed, params) in arb_params(),
    ) {
        let g = random_layered(seed, params);
        if g.len() < 3 {
            return Ok(());
        }
        let three = Grouping::horizontal(&g, 3.min(g.len()));
        if three.group_count() < 3 {
            return Ok(());
        }
        // Merge groups 1 and 2 of the SAME grouping: a true coarsening.
        let merged_assignment: Vec<usize> = g
            .node_ids()
            .map(|id| three.group_of(id).min(1))
            .collect();
        let merged = Grouping::new(&g, 2, merged_assignment).unwrap();
        let bits = |cuts: &[chop_dfg::grouping::CutValue]| -> u64 {
            cuts.iter().map(|c| c.bits.value()).sum()
        };
        prop_assert!(bits(&cut_values(&g, &merged)) <= bits(&cut_values(&g, &three)));
    }
}
