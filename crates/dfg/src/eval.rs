//! Behavioral evaluation of data-flow graphs.
//!
//! CHOP itself never executes the behavior — it predicts implementations —
//! but the *reproduction* uses this evaluator to prove that partition
//! extraction preserves semantics: executing the partitions of a
//! [`crate::grouping::Grouping`] independently, wiring cut values across,
//! produces exactly the outputs of the whole graph (see the
//! `partitioned_execution_is_equivalent` property test).
//!
//! Arithmetic is fixed-point two's-complement at each node's bit width
//! (values wrap modulo 2^width); comparisons yield 0/1.

use std::collections::BTreeMap;
use std::fmt;

use crate::graph::{Dfg, NodeId};
use crate::op::Operation;

/// A simple word-addressed memory model shared by all blocks during
/// evaluation.
///
/// # Examples
///
/// ```
/// use chop_dfg::eval::Memory;
///
/// let mut m = Memory::new(16);
/// m.write(0, 3, 0xBEEF);
/// assert_eq!(m.read(0, 3), 0xBEEF);
/// assert_eq!(m.read(1, 3), 0); // blocks are independent
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    words: usize,
    blocks: BTreeMap<u32, Vec<u64>>,
}

impl Memory {
    /// Creates a memory model with `words` words per block (addresses wrap
    /// modulo `words`).
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn new(words: usize) -> Self {
        assert!(words > 0, "memory must have at least one word");
        Self { words, blocks: BTreeMap::new() }
    }

    /// Reads block `block` at `addr` (zero if never written).
    #[must_use]
    pub fn read(&self, block: u32, addr: u64) -> u64 {
        let idx = (addr as usize) % self.words;
        self.blocks.get(&block).map_or(0, |b| b[idx])
    }

    /// Writes block `block` at `addr`.
    pub fn write(&mut self, block: u32, addr: u64, value: u64) {
        let words = self.words;
        let idx = (addr as usize) % words;
        self.blocks.entry(block).or_insert_with(|| vec![0; words])[idx] = value;
    }
}

/// Error from [`evaluate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Fewer input values than input nodes.
    NotEnoughInputs {
        /// Input nodes in the graph.
        expected: usize,
        /// Values supplied.
        found: usize,
    },
    /// Fewer constant values than constant nodes.
    NotEnoughConsts {
        /// Constant nodes in the graph.
        expected: usize,
        /// Values supplied.
        found: usize,
    },
    /// A node is missing a required operand (graph fails validation).
    MissingOperand(NodeId),
    /// Division by zero.
    DivideByZero(NodeId),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotEnoughInputs { expected, found } => {
                write!(f, "graph has {expected} inputs, {found} values supplied")
            }
            EvalError::NotEnoughConsts { expected, found } => {
                write!(f, "graph has {expected} constants, {found} values supplied")
            }
            EvalError::MissingOperand(n) => write!(f, "node {n} is missing an operand"),
            EvalError::DivideByZero(n) => write!(f, "division by zero at {n}"),
        }
    }
}

impl std::error::Error for EvalError {}

fn mask(width: u64) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Evaluates the graph: input nodes consume `inputs` in id order, constant
/// nodes consume `consts` in id order; outputs are returned in id order.
///
/// # Errors
///
/// Returns an [`EvalError`] for missing values/operands or division by
/// zero.
///
/// # Examples
///
/// ```
/// use chop_dfg::eval::{evaluate, Memory};
/// use chop_dfg::parse::parse_dfg;
///
/// let g = parse_dfg("a = input 16\nb = input 16\ns = add a b\ny = output s\n")?;
/// let mut mem = Memory::new(16);
/// let out = evaluate(&g, &[40_000, 30_000], &[], &mut mem)?;
/// // 16-bit wrap-around: 70 000 mod 65 536.
/// assert_eq!(out, vec![70_000 % 65_536]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(
    dfg: &Dfg,
    inputs: &[u64],
    consts: &[u64],
    memory: &mut Memory,
) -> Result<Vec<u64>, EvalError> {
    let n_inputs = dfg.inputs().count();
    if inputs.len() < n_inputs {
        return Err(EvalError::NotEnoughInputs { expected: n_inputs, found: inputs.len() });
    }
    let n_consts = dfg.nodes().filter(|(_, n)| n.op() == Operation::Const).count();
    if consts.len() < n_consts {
        return Err(EvalError::NotEnoughConsts { expected: n_consts, found: consts.len() });
    }
    let mut next_input = 0usize;
    let mut next_const = 0usize;
    let mut value = vec![0u64; dfg.len()];
    // Sources consume their streams in *id* order for determinism.
    for (id, node) in dfg.nodes() {
        match node.op() {
            Operation::Input => {
                value[id.index()] = inputs[next_input] & mask(node.width().value());
                next_input += 1;
            }
            Operation::Const => {
                value[id.index()] = consts[next_const] & mask(node.width().value());
                next_const += 1;
            }
            _ => {}
        }
    }
    for &id in dfg.topo_order() {
        let node = dfg.node(id);
        let w = mask(node.width().value());
        let operands: Vec<u64> = dfg.pred_nodes(id).map(|p| value[p.index()]).collect();
        let binary = |i: usize| operands.get(i).copied().ok_or(EvalError::MissingOperand(id));
        let result = match node.op() {
            Operation::Input | Operation::Const => continue,
            Operation::Output => binary(0)?,
            Operation::Add => binary(0)?.wrapping_add(binary(1)?) & w,
            Operation::Sub => binary(0)?.wrapping_sub(binary(1)?) & w,
            Operation::Mul => binary(0)?.wrapping_mul(binary(1)?) & w,
            Operation::Div => {
                let d = binary(1)?;
                if d == 0 {
                    return Err(EvalError::DivideByZero(id));
                }
                (binary(0)? / d) & w
            }
            Operation::Logic => binary(0)? ^ binary(1)?,
            Operation::Shift => {
                let amount = binary(1)? % 64;
                (binary(0)? << amount) & w
            }
            Operation::Compare => u64::from(binary(0)? < binary(1)?),
            Operation::MemRead(m) => memory.read(m.index(), binary(0)?) & w,
            Operation::MemWrite(m) => {
                let addr = binary(0)?;
                let data = binary(1)?;
                memory.write(m.index(), addr, data & w);
                data & w
            }
        };
        value[id.index()] = result;
    }
    Ok(dfg.outputs().map(|id| value[id.index()]).collect())
}

#[cfg(test)]
mod tests {
    use chop_stat::units::Bits;

    use super::*;
    use crate::graph::DfgBuilder;
    use crate::parse::parse_dfg;

    #[test]
    fn arithmetic_wraps_at_width() {
        let g = parse_dfg("a = input 8\nb = input 8\np = mul a b\ny = output p\n").unwrap();
        let mut mem = Memory::new(4);
        let out = evaluate(&g, &[200, 3], &[], &mut mem).unwrap();
        assert_eq!(out, vec![(200 * 3) % 256]);
    }

    #[test]
    fn sub_wraps_two_complement() {
        let g = parse_dfg("a = input 8\nb = input 8\nd = sub a b\ny = output d\n").unwrap();
        let mut mem = Memory::new(4);
        let out = evaluate(&g, &[1, 2], &[], &mut mem).unwrap();
        assert_eq!(out, vec![255]);
    }

    #[test]
    fn compare_yields_flag() {
        let g = parse_dfg("a = input 16\nb = input 16\nc = cmp a b\ny = output c\n").unwrap();
        let mut mem = Memory::new(4);
        assert_eq!(evaluate(&g, &[1, 2], &[], &mut mem).unwrap(), vec![1]);
        assert_eq!(evaluate(&g, &[2, 1], &[], &mut mem).unwrap(), vec![0]);
    }

    #[test]
    fn memory_round_trips_through_graph() {
        let g = parse_dfg(
            "addr = input 16\n\
             data = input 16\n\
             w = write M0 addr data\n\
             r = read M0 addr\n\
             y = output r\n",
        )
        .unwrap();
        // Note: read has no ordering edge to the write here, so make the
        // read depend on the write through its address to be safe.
        let mut mem = Memory::new(8);
        mem.write(0, 5, 77);
        let out = evaluate(&g, &[5, 99], &[], &mut mem).unwrap();
        // The read observes either the pre-written or newly written value
        // depending on topological order; both are legal data-flow
        // executions. What must hold: memory now contains 99.
        assert!(out == vec![77] || out == vec![99]);
        assert_eq!(mem.read(0, 5), 99);
    }

    #[test]
    fn divide_by_zero_reported() {
        let g = parse_dfg("a = input 8\nb = input 8\nq = div a b\ny = output q\n").unwrap();
        let mut mem = Memory::new(4);
        assert!(matches!(
            evaluate(&g, &[8, 0], &[], &mut mem),
            Err(EvalError::DivideByZero(_))
        ));
    }

    #[test]
    fn missing_inputs_reported() {
        let g = parse_dfg("a = input 8\nb = input 8\ns = add a b\ny = output s\n").unwrap();
        let mut mem = Memory::new(4);
        assert!(matches!(
            evaluate(&g, &[1], &[], &mut mem),
            Err(EvalError::NotEnoughInputs { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn consts_consumed_in_id_order() {
        let g = parse_dfg(
            "a = input 8\nc1 = const 8\nc2 = const 8\np = mul a c1\nq = add p c2\ny = output q\n",
        )
        .unwrap();
        let mut mem = Memory::new(4);
        let out = evaluate(&g, &[2], &[10, 1], &mut mem).unwrap();
        assert_eq!(out, vec![21]);
    }

    #[test]
    fn benchmark_graphs_evaluate() {
        for g in [
            crate::benchmarks::ar_lattice_filter(),
            crate::benchmarks::dct8(),
            crate::benchmarks::fir_filter(8),
        ] {
            let inputs: Vec<u64> = (0..g.inputs().count() as u64).map(|i| i * 7 + 1).collect();
            let consts: Vec<u64> =
                (0..g.nodes().filter(|(_, n)| n.op() == Operation::Const).count() as u64)
                    .map(|i| i + 2)
                    .collect();
            let mut mem = Memory::new(16);
            let out = evaluate(&g, &inputs, &consts, &mut mem).unwrap();
            assert_eq!(out.len(), g.outputs().count());
        }
    }

    #[test]
    fn wide_values_do_not_overflow_mask() {
        let mut b = DfgBuilder::new();
        let w = Bits::new(64);
        let a = b.node(Operation::Input, w);
        let o = b.node(Operation::Output, w);
        b.connect(a, o).unwrap();
        let g = b.build().unwrap();
        let mut mem = Memory::new(2);
        let out = evaluate(&g, &[u64::MAX], &[], &mut mem).unwrap();
        assert_eq!(out, vec![u64::MAX]);
    }
}
