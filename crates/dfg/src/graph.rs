//! The validated data-flow graph and its builder.

use std::fmt;

use chop_stat::units::Bits;
use serde::{Deserialize, Serialize};

use crate::op::{OpHistogram, Operation};

/// Identifier of a node within one [`Dfg`].
///
/// # Examples
///
/// ```
/// use chop_dfg::{DfgBuilder, Operation};
/// use chop_stat::units::Bits;
///
/// let mut b = DfgBuilder::new();
/// let a = b.node(Operation::Input, Bits::new(16));
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// The node's index into [`Dfg::nodes`].
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a node id from a raw index previously obtained via
    /// [`NodeId::index`] on the same graph.
    pub(crate) fn from_index(index: usize) -> Self {
        NodeId(index.try_into().expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge (a data value) within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(u32);

impl EdgeId {
    /// The edge's index into [`Dfg::edges`].
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A DFG node: an operation at a given bit width, optionally labeled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    op: Operation,
    width: Bits,
    label: Option<String>,
}

impl Node {
    /// The operation this node performs.
    #[must_use]
    pub fn op(&self) -> Operation {
        self.op
    }

    /// The node's data width.
    #[must_use]
    pub fn width(&self) -> Bits {
        self.width
    }

    /// The node's designer-facing label, if any.
    #[must_use]
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }
}

/// A DFG edge: a data value produced by `src` and consumed by `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    src: NodeId,
    dst: NodeId,
    width: Bits,
}

impl Edge {
    /// Producer of the value.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Consumer of the value.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Width of the value in bits.
    #[must_use]
    pub fn width(&self) -> Bits {
        self.width
    }
}

/// Error produced while building a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildDfgError {
    /// `connect` referenced a node id that does not exist.
    UnknownNode(NodeId),
    /// The graph contains a directed cycle (behavioral specs must be
    /// acyclic after loop unrolling, paper §2.3).
    Cyclic {
        /// A node known to participate in a cycle.
        witness: NodeId,
    },
    /// The graph has no nodes.
    Empty,
    /// A node has no path from any primary input and is not a source.
    DanglingNode(NodeId),
}

impl fmt::Display for BuildDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildDfgError::UnknownNode(n) => write!(f, "unknown node {n}"),
            BuildDfgError::Cyclic { witness } => {
                write!(f, "data flow graph contains a cycle through {witness}")
            }
            BuildDfgError::Empty => write!(f, "data flow graph has no nodes"),
            BuildDfgError::DanglingNode(n) => {
                write!(f, "node {n} consumes no values and produces none")
            }
        }
    }
}

impl std::error::Error for BuildDfgError {}

/// Error produced by [`Dfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateDfgError {
    /// A non-source node (neither input nor constant) has no operands.
    MissingOperands(NodeId),
    /// A node has more operands than its operation accepts.
    TooManyOperands {
        /// The offending node.
        node: NodeId,
        /// Operands found.
        found: usize,
        /// Maximum the operation accepts.
        max: usize,
    },
    /// An output node drives other nodes.
    OutputHasConsumers(NodeId),
}

impl fmt::Display for ValidateDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateDfgError::MissingOperands(n) => write!(f, "node {n} has no operands"),
            ValidateDfgError::TooManyOperands { node, found, max } => {
                write!(f, "node {node} has {found} operands but accepts at most {max}")
            }
            ValidateDfgError::OutputHasConsumers(n) => {
                write!(f, "output node {n} drives other nodes")
            }
        }
    }
}

impl std::error::Error for ValidateDfgError {}

/// An immutable, acyclic, validated behavioral data-flow graph.
///
/// Construct one through [`DfgBuilder`]; building fails on cycles, unknown
/// node references and empty graphs, so every `Dfg` in existence is acyclic
/// with consistent adjacency. A topological order is computed once at build
/// time and shared by all analyses.
///
/// # Examples
///
/// ```
/// use chop_dfg::{DfgBuilder, Operation};
/// use chop_stat::units::Bits;
///
/// let mut b = DfgBuilder::new();
/// let w = Bits::new(16);
/// let x = b.node(Operation::Input, w);
/// let y = b.node(Operation::Input, w);
/// let s = b.node(Operation::Add, w);
/// let o = b.node(Operation::Output, w);
/// b.connect(x, s)?;
/// b.connect(y, s)?;
/// b.connect(s, o)?;
/// let dfg = b.build()?;
/// assert_eq!(dfg.len(), 4);
/// assert_eq!(dfg.inputs().count(), 2);
/// # Ok::<(), chop_dfg::BuildDfgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dfg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    preds: Vec<Vec<EdgeId>>,
    succs: Vec<Vec<EdgeId>>,
    topo: Vec<NodeId>,
}

impl Dfg {
    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for built graphs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over `(id, node)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over `(id, edge)` pairs in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// All node ids, in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Incoming edges of a node.
    #[must_use]
    pub fn preds(&self, id: NodeId) -> &[EdgeId] {
        &self.preds[id.index()]
    }

    /// Outgoing edges of a node.
    #[must_use]
    pub fn succs(&self, id: NodeId) -> &[EdgeId] {
        &self.succs[id.index()]
    }

    /// Predecessor node ids of a node.
    pub fn pred_nodes(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[id.index()].iter().map(move |e| self.edges[e.index()].src)
    }

    /// Successor node ids of a node.
    pub fn succ_nodes(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succs[id.index()].iter().map(move |e| self.edges[e.index()].dst)
    }

    /// Node ids in a topological order (computed at build time).
    #[must_use]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Ids of primary-input nodes.
    pub fn inputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.op() == Operation::Input).map(|(id, _)| id)
    }

    /// Ids of primary-output nodes.
    pub fn outputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.op() == Operation::Output).map(|(id, _)| id)
    }

    /// Histogram of all operations in the graph.
    #[must_use]
    pub fn op_histogram(&self) -> OpHistogram {
        self.nodes.iter().map(Node::op).collect()
    }

    /// Semantic validation beyond the structural checks done at build time.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateDfgError`] found: non-source nodes with no
    /// operands, nodes exceeding their operation's arity, or outputs that
    /// drive consumers.
    pub fn validate(&self) -> Result<(), ValidateDfgError> {
        for (id, node) in self.nodes() {
            let n_preds = self.preds(id).len();
            let is_source = matches!(node.op(), Operation::Input | Operation::Const);
            if !is_source && n_preds == 0 {
                return Err(ValidateDfgError::MissingOperands(id));
            }
            if let Some(max) = node.op().max_operands() {
                if n_preds > max {
                    return Err(ValidateDfgError::TooManyOperands {
                        node: id,
                        found: n_preds,
                        max,
                    });
                }
            }
            if node.op() == Operation::Output && !self.succs(id).is_empty() {
                return Err(ValidateDfgError::OutputHasConsumers(id));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dfg({} nodes, {} values)", self.nodes.len(), self.edges.len())
    }
}

/// Incremental builder for [`Dfg`].
///
/// See [`Dfg`] for a complete example.
#[derive(Debug, Clone, Default)]
pub struct DfgBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl DfgBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn node(&mut self, op: Operation, width: Bits) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, width, label: None });
        id
    }

    /// Adds a labeled node and returns its id.
    pub fn labeled_node(
        &mut self,
        op: Operation,
        width: Bits,
        label: impl Into<String>,
    ) -> NodeId {
        let id = self.node(op, width);
        self.nodes[id.index()].label = Some(label.into());
        id
    }

    /// Connects `src` to `dst` with a value of `src`'s width.
    ///
    /// # Errors
    ///
    /// Returns [`BuildDfgError::UnknownNode`] if either id was not produced
    /// by this builder.
    pub fn connect(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, BuildDfgError> {
        let width = self.nodes.get(src.index()).ok_or(BuildDfgError::UnknownNode(src))?.width;
        self.connect_with_width(src, dst, width)
    }

    /// Connects `src` to `dst` with an explicit value width (for width
    /// conversions such as a comparison producing a 1-bit flag).
    ///
    /// # Errors
    ///
    /// Returns [`BuildDfgError::UnknownNode`] if either id was not produced
    /// by this builder.
    pub fn connect_with_width(
        &mut self,
        src: NodeId,
        dst: NodeId,
        width: Bits,
    ) -> Result<EdgeId, BuildDfgError> {
        if src.index() >= self.nodes.len() {
            return Err(BuildDfgError::UnknownNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(BuildDfgError::UnknownNode(dst));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, width });
        Ok(id)
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Width of a node previously added to this builder.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this builder.
    #[must_use]
    pub fn width_of(&self, id: NodeId) -> Bits {
        self.nodes[id.index()].width
    }

    /// Whether no nodes have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the graph: builds adjacency, checks acyclicity and computes
    /// the topological order.
    ///
    /// # Errors
    ///
    /// Returns [`BuildDfgError::Empty`] for an empty builder and
    /// [`BuildDfgError::Cyclic`] if the edges form a directed cycle.
    pub fn build(self) -> Result<Dfg, BuildDfgError> {
        if self.nodes.is_empty() {
            return Err(BuildDfgError::Empty);
        }
        let n = self.nodes.len();
        let mut preds: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            succs[e.src.index()].push(id);
            preds[e.dst.index()].push(id);
        }
        // Kahn's algorithm for topological order / cycle detection.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: Vec<NodeId> =
            (0..n).filter(|&i| indeg[i] == 0).map(|i| NodeId(i as u32)).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(id) = ready.pop() {
            topo.push(id);
            for &e in &succs[id.index()] {
                let dst = self.edges[e.index()].dst;
                indeg[dst.index()] -= 1;
                if indeg[dst.index()] == 0 {
                    ready.push(dst);
                }
            }
        }
        if topo.len() != n {
            let witness = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| NodeId(i as u32))
                .expect("some node must have positive in-degree in a cycle");
            return Err(BuildDfgError::Cyclic { witness });
        }
        Ok(Dfg { nodes: self.nodes, edges: self.edges, preds, succs, topo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w16() -> Bits {
        Bits::new(16)
    }

    #[test]
    fn build_simple_chain() {
        let mut b = DfgBuilder::new();
        let a = b.node(Operation::Input, w16());
        let c = b.node(Operation::Add, w16());
        let o = b.node(Operation::Output, w16());
        b.connect(a, c).unwrap();
        b.connect(a, c).unwrap();
        b.connect(c, o).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.preds(c).len(), 2);
        assert_eq!(g.succs(a).len(), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(DfgBuilder::new().build().unwrap_err(), BuildDfgError::Empty);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.node(Operation::Add, w16());
        let y = b.node(Operation::Add, w16());
        b.connect(x, y).unwrap();
        b.connect(y, x).unwrap();
        assert!(matches!(b.build().unwrap_err(), BuildDfgError::Cyclic { .. }));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.node(Operation::Input, w16());
        let mut other = DfgBuilder::new();
        let y = other.node(Operation::Input, w16());
        let _ = other.node(Operation::Input, w16());
        let bogus = other.node(Operation::Input, w16());
        assert!(b.connect(x, bogus).is_err());
        let _ = y;
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = DfgBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|_| b.node(Operation::Add, w16())).collect();
        b.connect(n[0], n[1]).unwrap();
        b.connect(n[1], n[2]).unwrap();
        b.connect(n[0], n[3]).unwrap();
        b.connect(n[3], n[4]).unwrap();
        b.connect(n[2], n[4]).unwrap();
        let g = b.build().unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.len()];
            for (i, id) in g.topo_order().iter().enumerate() {
                pos[id.index()] = i;
            }
            pos
        };
        for (_, e) in g.edges() {
            assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }

    #[test]
    fn validate_flags_missing_operands() {
        let mut b = DfgBuilder::new();
        let _ = b.node(Operation::Add, w16());
        let g = b.build().unwrap();
        assert!(matches!(g.validate(), Err(ValidateDfgError::MissingOperands(_))));
    }

    #[test]
    fn validate_flags_arity_overflow() {
        let mut b = DfgBuilder::new();
        let i1 = b.node(Operation::Input, w16());
        let i2 = b.node(Operation::Input, w16());
        let i3 = b.node(Operation::Input, w16());
        let add = b.node(Operation::Add, w16());
        b.connect(i1, add).unwrap();
        b.connect(i2, add).unwrap();
        b.connect(i3, add).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(g.validate(), Err(ValidateDfgError::TooManyOperands { .. })));
    }

    #[test]
    fn validate_flags_output_consumers() {
        let mut b = DfgBuilder::new();
        let i = b.node(Operation::Input, w16());
        let o = b.node(Operation::Output, w16());
        let o2 = b.node(Operation::Output, w16());
        b.connect(i, o).unwrap();
        b.connect(o, o2).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(g.validate(), Err(ValidateDfgError::OutputHasConsumers(_))));
    }

    #[test]
    fn labels_round_trip() {
        let mut b = DfgBuilder::new();
        let x = b.labeled_node(Operation::Input, w16(), "x0");
        let g = {
            let o = b.node(Operation::Output, w16());
            b.connect(x, o).unwrap();
            b.build().unwrap()
        };
        assert_eq!(g.node(x).label(), Some("x0"));
    }

    #[test]
    fn explicit_width_edges() {
        let mut b = DfgBuilder::new();
        let i1 = b.node(Operation::Input, w16());
        let i2 = b.node(Operation::Input, w16());
        let c = b.node(Operation::Compare, Bits::new(1));
        b.connect(i1, c).unwrap();
        b.connect(i2, c).unwrap();
        let o = b.node(Operation::Output, Bits::new(1));
        b.connect_with_width(c, o, Bits::new(1)).unwrap();
        let g = b.build().unwrap();
        let out_edge = g.succs(c)[0];
        assert_eq!(g.edge(out_edge).width(), Bits::new(1));
    }
}
