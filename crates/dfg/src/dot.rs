//! Graphviz (DOT) export of data-flow graphs.

use std::fmt::Write as _;

use crate::graph::Dfg;
use crate::grouping::Grouping;

/// Renders the graph in Graphviz DOT syntax.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, dot};
///
/// let text = dot::to_dot(&benchmarks::diffeq());
/// assert!(text.starts_with("digraph dfg"));
/// assert!(text.contains("->"));
/// ```
#[must_use]
pub fn to_dot(dfg: &Dfg) -> String {
    render(dfg, None)
}

/// Renders the graph with nodes clustered by partition group — this is the
/// visual counterpart of Fig. 2's "example partitioning".
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, dot, grouping::Grouping};
///
/// let g = benchmarks::ar_lattice_filter();
/// let parts = Grouping::horizontal(&g, 2);
/// let text = dot::to_dot_grouped(&g, &parts);
/// assert!(text.contains("subgraph cluster_0"));
/// assert!(text.contains("subgraph cluster_1"));
/// ```
#[must_use]
pub fn to_dot_grouped(dfg: &Dfg, grouping: &Grouping) -> String {
    render(dfg, Some(grouping))
}

fn render(dfg: &Dfg, grouping: Option<&Grouping>) -> String {
    let mut out = String::from("digraph dfg {\n  rankdir=TB;\n  node [shape=box];\n");
    let node_line = |dfg: &Dfg, id: crate::NodeId| {
        let n = dfg.node(id);
        let label = match n.label() {
            Some(l) => format!("{l}\\n{}", n.op()),
            None => n.op().to_string(),
        };
        format!("  {id} [label=\"{label}\"];\n")
    };
    match grouping {
        Some(g) => {
            for group in 0..g.group_count() {
                let _ = writeln!(out, "  subgraph cluster_{group} {{");
                let _ = writeln!(out, "    label=\"P{}\";", group + 1);
                for id in g.members(group) {
                    out.push_str("  ");
                    out.push_str(&node_line(dfg, id));
                }
                out.push_str("  }\n");
            }
        }
        None => {
            for (id, _) in dfg.nodes() {
                out.push_str(&node_line(dfg, id));
            }
        }
    }
    for (_, e) in dfg.edges() {
        let _ =
            writeln!(out, "  {} -> {} [label=\"{}\"];", e.src(), e.dst(), e.width().value());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = benchmarks::diffeq();
        let text = to_dot(&g);
        for (id, _) in g.nodes() {
            assert!(text.contains(&format!("{id} [label=")));
        }
        assert_eq!(text.matches("->").count(), g.edges().count());
    }

    #[test]
    fn grouped_dot_has_one_cluster_per_group() {
        let g = benchmarks::ar_lattice_filter();
        let parts = Grouping::horizontal(&g, 3);
        let text = to_dot_grouped(&g, &parts);
        assert_eq!(text.matches("subgraph cluster_").count(), 3);
    }
}
