//! Structural analyses over data-flow graphs.
//!
//! These are the graph-side primitives the predictor and the partitioner
//! build on: ASAP depth levels, weighted critical paths and transitive
//! reachability (used to detect mutual data dependency between partitions,
//! which the paper forbids in §2.3).

use std::collections::VecDeque;

use crate::graph::{Dfg, NodeId};

/// ASAP level of every node when every operation takes one time step.
///
/// Sources sit at level 0; each node sits one past its deepest predecessor.
///
/// # Examples
///
/// ```
/// use chop_dfg::{analysis, benchmarks};
///
/// let g = benchmarks::ar_lattice_filter();
/// let levels = analysis::asap_levels(&g);
/// assert_eq!(levels.len(), g.len());
/// ```
#[must_use]
pub fn asap_levels(dfg: &Dfg) -> Vec<u32> {
    let mut level = vec![0u32; dfg.len()];
    for &id in dfg.topo_order() {
        let deepest = dfg.pred_nodes(id).map(|p| level[p.index()] + 1).max().unwrap_or(0);
        level[id.index()] = deepest;
    }
    level
}

/// Length (in operations) of the longest path through the graph, counting
/// only nodes for which `weight` returns a positive value.
///
/// With `weight = |_| 1` this is the graph's depth in operations; with a
/// module-delay weight it is the unconstrained critical-path delay.
///
/// # Examples
///
/// ```
/// use chop_dfg::{analysis, benchmarks};
///
/// let g = benchmarks::ar_lattice_filter();
/// let ops = analysis::critical_path(&g, |_, n| u64::from(n.op().class().is_some()));
/// assert!(ops >= 3);
/// ```
#[must_use]
pub fn critical_path<F>(dfg: &Dfg, mut weight: F) -> u64
where
    F: FnMut(NodeId, &crate::graph::Node) -> u64,
{
    let mut dist = vec![0u64; dfg.len()];
    let mut best = 0;
    for &id in dfg.topo_order() {
        let arrive = dfg.pred_nodes(id).map(|p| dist[p.index()]).max().unwrap_or(0);
        let here = arrive + weight(id, dfg.node(id));
        dist[id.index()] = here;
        best = best.max(here);
    }
    best
}

/// Set of nodes reachable from `from` (excluding `from` itself).
///
/// # Examples
///
/// ```
/// use chop_dfg::{analysis, DfgBuilder, Operation};
/// use chop_stat::units::Bits;
///
/// let mut b = DfgBuilder::new();
/// let i = b.node(Operation::Input, Bits::new(8));
/// let o = b.node(Operation::Output, Bits::new(8));
/// b.connect(i, o)?;
/// let g = b.build()?;
/// let r = analysis::reachable_from(&g, i);
/// assert!(r[o.index()]);
/// assert!(!r[i.index()]);
/// # Ok::<(), chop_dfg::BuildDfgError>(())
/// ```
#[must_use]
pub fn reachable_from(dfg: &Dfg, from: NodeId) -> Vec<bool> {
    let mut seen = vec![false; dfg.len()];
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(id) = queue.pop_front() {
        for succ in dfg.succ_nodes(id) {
            if !seen[succ.index()] {
                seen[succ.index()] = true;
                queue.push_back(succ);
            }
        }
    }
    seen
}

/// A structural profile of a behavioral specification — the numbers a
/// designer looks at before choosing a partition count (operation mix,
/// parallelism profile, value traffic).
#[derive(Debug, Clone, PartialEq)]
pub struct DfgProfile {
    /// Total nodes.
    pub nodes: usize,
    /// Total values (edges).
    pub values: usize,
    /// Functional-unit operations.
    pub operations: usize,
    /// Critical path in FU operations.
    pub critical_path: u64,
    /// Peak FU operations runnable in one unit-delay level.
    pub peak_parallelism: usize,
    /// Average FU parallelism (`operations / critical path`).
    pub average_parallelism: f64,
    /// Total value bits (sum of edge widths).
    pub value_bits: u64,
    /// Primary input bits.
    pub input_bits: u64,
    /// Primary output bits.
    pub output_bits: u64,
}

impl std::fmt::Display for DfgProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} ops (cp {}, peak ∥ {}, avg ∥ {:.1}), {} value bits, I/O {}/{} bits",
            self.nodes,
            self.operations,
            self.critical_path,
            self.peak_parallelism,
            self.average_parallelism,
            self.value_bits,
            self.input_bits,
            self.output_bits
        )
    }
}

/// Profiles a specification.
///
/// # Examples
///
/// ```
/// use chop_dfg::{analysis, benchmarks};
///
/// let p = analysis::profile(&benchmarks::ar_lattice_filter());
/// assert_eq!(p.operations, 28);
/// assert_eq!(p.critical_path, 5);
/// assert!(p.peak_parallelism >= 8);
/// assert!(p.average_parallelism > 4.0);
/// ```
#[must_use]
pub fn profile(dfg: &Dfg) -> DfgProfile {
    let levels = asap_levels(dfg);
    let mut per_level: std::collections::BTreeMap<u32, usize> = Default::default();
    let mut operations = 0usize;
    for (id, node) in dfg.nodes() {
        if node.op().class().is_some() {
            operations += 1;
            *per_level.entry(levels[id.index()]).or_insert(0) += 1;
        }
    }
    let critical_path = critical_path(dfg, |_, n| u64::from(n.op().class().is_some()));
    let peak_parallelism = per_level.values().copied().max().unwrap_or(0);
    let value_bits: u64 = dfg.edges().map(|(_, e)| e.width().value()).sum();
    let input_bits: u64 = dfg.inputs().map(|id| dfg.node(id).width().value()).sum();
    let output_bits: u64 = dfg.outputs().map(|id| dfg.node(id).width().value()).sum();
    DfgProfile {
        nodes: dfg.len(),
        values: dfg.edges().count(),
        operations,
        critical_path,
        peak_parallelism,
        average_parallelism: if critical_path > 0 {
            operations as f64 / critical_path as f64
        } else {
            0.0
        },
        value_bits,
        input_bits,
        output_bits,
    }
}

/// Whether any node in `a` reaches any node in `b` through the data flow.
///
/// CHOP uses this in both directions to detect *mutual* data dependency
/// between two partitions, which its independent-prediction model does not
/// support (paper §2.3).
#[must_use]
pub fn group_reaches(dfg: &Dfg, a: &[NodeId], b: &[NodeId]) -> bool {
    let mut target = vec![false; dfg.len()];
    for id in b {
        target[id.index()] = true;
    }
    let mut seen = vec![false; dfg.len()];
    let mut queue: VecDeque<NodeId> = a.iter().copied().collect();
    for id in a {
        seen[id.index()] = true;
    }
    while let Some(id) = queue.pop_front() {
        for succ in dfg.succ_nodes(id) {
            if target[succ.index()] {
                return true;
            }
            if !seen[succ.index()] {
                seen[succ.index()] = true;
                queue.push_back(succ);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use chop_stat::units::Bits;

    use super::*;
    use crate::graph::DfgBuilder;
    use crate::op::Operation;

    fn diamond() -> (Dfg, [NodeId; 4]) {
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        let i = b.node(Operation::Input, w);
        let l = b.node(Operation::Add, w);
        let r = b.node(Operation::Mul, w);
        let o = b.node(Operation::Output, w);
        b.connect(i, l).unwrap();
        b.connect(i, r).unwrap();
        b.connect(l, o).unwrap();
        b.connect(r, o).unwrap();
        (b.build().unwrap(), [i, l, r, o])
    }

    #[test]
    fn asap_levels_of_diamond() {
        let (g, [i, l, r, o]) = diamond();
        let lev = asap_levels(&g);
        assert_eq!(lev[i.index()], 0);
        assert_eq!(lev[l.index()], 1);
        assert_eq!(lev[r.index()], 1);
        assert_eq!(lev[o.index()], 2);
    }

    #[test]
    fn critical_path_counts_weights() {
        let (g, _) = diamond();
        // Only Add/Mul weighted: longest chain has exactly one of them.
        let cp = critical_path(&g, |_, n| u64::from(n.op().class().is_some()));
        assert_eq!(cp, 1);
        // All nodes weighted 1: path i -> l -> o has 3 nodes.
        let cp_all = critical_path(&g, |_, _| 1);
        assert_eq!(cp_all, 3);
    }

    #[test]
    fn critical_path_with_module_like_weights() {
        let (g, _) = diamond();
        // Mul = 10, Add = 2: critical path goes through the multiplier.
        let cp = critical_path(&g, |_, n| match n.op() {
            Operation::Mul => 10,
            Operation::Add => 2,
            _ => 0,
        });
        assert_eq!(cp, 10);
    }

    #[test]
    fn reachability() {
        let (g, [i, l, _r, o]) = diamond();
        let r_from_i = reachable_from(&g, i);
        assert!(r_from_i[o.index()]);
        let r_from_l = reachable_from(&g, l);
        assert!(r_from_l[o.index()]);
        assert!(!r_from_l[i.index()]);
    }

    #[test]
    fn profile_of_known_workloads() {
        let p = profile(&crate::benchmarks::fir_filter(8));
        assert_eq!(p.operations, 15); // 8 muls + 7 adds
        assert_eq!(p.critical_path, 4); // mul + 3 tree levels
        assert_eq!(p.peak_parallelism, 8);
        assert_eq!(p.input_bits, 8 * 16);
        assert_eq!(p.output_bits, 16);
        assert!(p.to_string().contains("15 ops"));

        let ewf = profile(&crate::benchmarks::elliptic_wave_filter());
        // The EWF's signature: low average parallelism.
        assert!(ewf.average_parallelism < 2.0);
    }

    #[test]
    fn group_reachability_directions() {
        let (g, [i, l, r, o]) = diamond();
        assert!(group_reaches(&g, &[i], &[o]));
        assert!(!group_reaches(&g, &[o], &[i]));
        assert!(!group_reaches(&g, &[l], &[r]));
    }
}
