//! Stable structural hashing of data-flow graphs.
//!
//! The incremental exploration engine memoizes per-partition predictions
//! under a *content-addressed* key: two partitions whose extracted DFGs are
//! structurally identical (same operations, widths and dependence edges in
//! the same concrete order) hash equal, so re-exploring a partitioning in
//! which only one partition changed re-predicts only that partition.
//!
//! The hash is a plain FNV-1a over a canonical byte feed — deliberately
//! *not* [`std::hash::DefaultHasher`], whose per-process random keys would
//! make the value useless as a persistent cache key. Node labels are
//! excluded: they are designer-facing names and do not affect prediction.
//!
//! # Examples
//!
//! ```
//! use chop_dfg::hash::structural_hash;
//! use chop_dfg::benchmarks;
//!
//! let a = benchmarks::ar_lattice_filter();
//! let b = benchmarks::ar_lattice_filter();
//! assert_eq!(structural_hash(&a), structural_hash(&b));
//! assert_ne!(structural_hash(&a), structural_hash(&benchmarks::diffeq()));
//! ```

use crate::graph::Dfg;
use crate::op::Operation;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic, seed-free 64-bit FNV-1a hasher.
///
/// Unlike the standard library's hashers this produces the same value for
/// the same feed in every process and on every platform with the same
/// endianness conventions (integers are fed in little-endian byte order),
/// which is what a content-addressed cache key needs.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds one `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds one `f64` by its IEEE-754 bit pattern. `NaN` payloads and
    /// signed zeros hash by their exact bits — callers wanting semantic
    /// equality must canonicalize first.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A small stable tag per operation variant (memory operations fold in the
/// referenced block index so accesses to different blocks hash apart).
fn op_tag(op: Operation) -> u64 {
    match op {
        Operation::Input => 1,
        Operation::Output => 2,
        Operation::Const => 3,
        Operation::Add => 4,
        Operation::Sub => 5,
        Operation::Mul => 6,
        Operation::Div => 7,
        Operation::Logic => 8,
        Operation::Shift => 9,
        Operation::Compare => 10,
        Operation::MemRead(m) => 0x100 + u64::from(m.index()),
        Operation::MemWrite(m) => 0x2_0000 + u64::from(m.index()),
    }
}

/// Hashes the graph's structure: every node's operation and width in node
/// order, then every dependence edge's endpoints and width in edge order.
///
/// The hash is over the *concrete representation* (node/edge numbering as
/// built), not an isomorphism class: graphs that differ only by node
/// renumbering hash differently. That is the right trade-off for a
/// prediction cache — partition extraction is deterministic, so an
/// unchanged partition re-extracts to a byte-identical graph, while
/// representation hashing avoids the collision risk of canonicalization.
/// Node labels are ignored.
#[must_use]
pub fn structural_hash(dfg: &Dfg) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(dfg.nodes().count() as u64);
    for (id, node) in dfg.nodes() {
        h.write_u64(id.index() as u64);
        h.write_u64(op_tag(node.op()));
        h.write_u64(node.width().value());
    }
    h.write_u64(dfg.edges().count() as u64);
    for (_, edge) in dfg.edges() {
        h.write_u64(edge.src().index() as u64);
        h.write_u64(edge.dst().index() as u64);
        h.write_u64(edge.width().value());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::graph::DfgBuilder;
    use crate::op::MemoryRef;

    #[test]
    fn identical_builds_hash_equal() {
        assert_eq!(
            structural_hash(&benchmarks::ar_lattice_filter()),
            structural_hash(&benchmarks::ar_lattice_filter())
        );
    }

    #[test]
    fn distinct_benchmarks_hash_apart() {
        let hashes: Vec<u64> = [
            structural_hash(&benchmarks::ar_lattice_filter()),
            structural_hash(&benchmarks::diffeq()),
            structural_hash(&benchmarks::elliptic_wave_filter()),
        ]
        .into();
        assert_ne!(hashes[0], hashes[1]);
        assert_ne!(hashes[1], hashes[2]);
        assert_ne!(hashes[0], hashes[2]);
    }

    fn two_node_graph(width: u64, label: &str) -> Dfg {
        use chop_stat::units::Bits;
        let mut b = DfgBuilder::new();
        let x = b.labeled_node(Operation::Input, Bits::new(width), label);
        let y = b.node(Operation::Output, Bits::new(width));
        b.connect(x, y).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn width_change_changes_hash() {
        assert_ne!(
            structural_hash(&two_node_graph(16, "x")),
            structural_hash(&two_node_graph(32, "x"))
        );
    }

    #[test]
    fn labels_do_not_affect_hash() {
        assert_eq!(
            structural_hash(&two_node_graph(16, "x")),
            structural_hash(&two_node_graph(16, "completely_different"))
        );
    }

    #[test]
    fn memory_block_index_is_part_of_the_hash() {
        let tag0 = op_tag(Operation::MemRead(MemoryRef::new(0)));
        let tag1 = op_tag(Operation::MemRead(MemoryRef::new(1)));
        let w0 = op_tag(Operation::MemWrite(MemoryRef::new(0)));
        assert_ne!(tag0, tag1);
        assert_ne!(tag0, w0);
    }

    #[test]
    fn hasher_is_seed_free_and_order_sensitive() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn f64_hashes_by_bits() {
        let mut a = StableHasher::new();
        a.write_f64(0.0);
        let mut b = StableHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
