//! Behavioral data-flow-graph substrate for the CHOP partitioner.
//!
//! CHOP partitions *behavioral specifications in the form of a data flow
//! graph (with added control constructs)* (paper §2.2). This crate is that
//! substrate:
//!
//! * [`Dfg`] / [`DfgBuilder`] — a validated, acyclic, typed data-flow graph
//!   whose nodes carry an [`Operation`] and a bit width,
//! * [`analysis`] — topological ordering, ASAP/depth levels, critical paths,
//!   operation histograms,
//! * [`grouping`] — cut-value extraction between disjoint node groups (the
//!   raw material for CHOP's data-transfer tasks),
//! * [`unroll`] — unrolling of inner loops with determinate iteration counts
//!   (paper §2.3: such loops "can be unrolled so that the resulting data
//!   flow graph is acyclic"),
//! * [`benchmarks`] — the AR lattice filter of Fig. 6 plus the classic HLS
//!   workloads (elliptic wave filter, FIR, FFT, HAL differential equation
//!   solver) and a random layered-DFG generator,
//! * [`dot`] — Graphviz export for inspection.
//!
//! # Examples
//!
//! ```
//! use chop_dfg::{benchmarks, Operation};
//!
//! let ar = benchmarks::ar_lattice_filter();
//! let hist = ar.op_histogram();
//! assert_eq!(hist.count_class(chop_dfg::OpClass::Multiplication), 16);
//! assert_eq!(hist.count_class(chop_dfg::OpClass::Addition), 12);
//! assert!(ar.validate().is_ok());
//! # let _ = Operation::Add;
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// Library code must surface failures as typed errors, never unwrap; tests
// may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod analysis;
pub mod benchmarks;
pub mod dot;
pub mod eval;
mod graph;
pub mod grouping;
pub mod hash;
mod op;
pub mod parse;
pub mod unroll;

pub use graph::{BuildDfgError, Dfg, DfgBuilder, Edge, EdgeId, Node, NodeId, ValidateDfgError};
pub use op::{MemoryRef, OpClass, OpHistogram, Operation};
