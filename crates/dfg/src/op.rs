//! Operation kinds carried by DFG nodes.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Reference to a memory block declared in the partitioning environment.
///
/// The DFG itself does not know memory geometry; it only records *which*
/// memory block an access touches so that CHOP can compute per-block
/// bandwidth requirements (paper §2.4: BAD reports "memory bandwidth
/// requirements for each memory block").
///
/// # Examples
///
/// ```
/// use chop_dfg::MemoryRef;
///
/// let m = MemoryRef::new(0);
/// assert_eq!(m.index(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MemoryRef(u32);

impl MemoryRef {
    /// Creates a reference to the memory block with the given index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The referenced memory-block index.
    #[must_use]
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for MemoryRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// The operation performed by a DFG node.
///
/// I/O operations are modeled explicitly; memory accesses are modeled as
/// memory-mapped I/O against a [`MemoryRef`], exactly as the paper does.
///
/// # Examples
///
/// ```
/// use chop_dfg::{OpClass, Operation};
///
/// assert_eq!(Operation::Add.class(), Some(OpClass::Addition));
/// assert!(Operation::Input.is_io());
/// assert!(!Operation::Mul.is_io());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Primary input of the specification.
    Input,
    /// Primary output of the specification.
    Output,
    /// A compile-time constant source.
    Const,
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction (binds to addition-class modules).
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Bitwise/logic operation (AND, OR, XOR, NOT …).
    Logic,
    /// Shift by a constant or variable amount.
    Shift,
    /// Magnitude comparison.
    Compare,
    /// Read from a memory block.
    MemRead(MemoryRef),
    /// Write to a memory block.
    MemWrite(MemoryRef),
}

impl Operation {
    /// The functional-unit class implementing this operation, or `None` for
    /// operations (I/O, constants, memory accesses) that do not occupy a
    /// datapath functional unit.
    #[must_use]
    pub fn class(&self) -> Option<OpClass> {
        match self {
            Operation::Add | Operation::Sub => Some(OpClass::Addition),
            Operation::Mul => Some(OpClass::Multiplication),
            Operation::Div => Some(OpClass::Division),
            Operation::Logic => Some(OpClass::Logic),
            Operation::Shift => Some(OpClass::Shift),
            Operation::Compare => Some(OpClass::Comparison),
            Operation::Input
            | Operation::Output
            | Operation::Const
            | Operation::MemRead(_)
            | Operation::MemWrite(_) => None,
        }
    }

    /// Whether this is a primary input or output.
    #[must_use]
    pub fn is_io(&self) -> bool {
        matches!(self, Operation::Input | Operation::Output)
    }

    /// Whether this operation accesses a memory block.
    #[must_use]
    pub fn is_memory_access(&self) -> bool {
        matches!(self, Operation::MemRead(_) | Operation::MemWrite(_))
    }

    /// The memory block this operation accesses, if any.
    #[must_use]
    pub fn memory(&self) -> Option<MemoryRef> {
        match self {
            Operation::MemRead(m) | Operation::MemWrite(m) => Some(*m),
            _ => None,
        }
    }

    /// Maximum number of data operands this operation accepts, or `None`
    /// when unbounded (outputs and memory writes take exactly what they are
    /// given; logic is treated as binary here).
    #[must_use]
    pub fn max_operands(&self) -> Option<usize> {
        match self {
            Operation::Input | Operation::Const => Some(0),
            Operation::MemRead(_) => Some(1),
            Operation::Output => Some(1),
            Operation::MemWrite(_) => Some(2),
            Operation::Add
            | Operation::Sub
            | Operation::Mul
            | Operation::Div
            | Operation::Logic
            | Operation::Shift
            | Operation::Compare => Some(2),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Input => write!(f, "in"),
            Operation::Output => write!(f, "out"),
            Operation::Const => write!(f, "const"),
            Operation::Add => write!(f, "+"),
            Operation::Sub => write!(f, "-"),
            Operation::Mul => write!(f, "*"),
            Operation::Div => write!(f, "/"),
            Operation::Logic => write!(f, "logic"),
            Operation::Shift => write!(f, "shift"),
            Operation::Compare => write!(f, "cmp"),
            Operation::MemRead(m) => write!(f, "rd[{m}]"),
            Operation::MemWrite(m) => write!(f, "wr[{m}]"),
        }
    }
}

/// Functional-unit classes a component library can implement.
///
/// # Examples
///
/// ```
/// use chop_dfg::OpClass;
///
/// assert_eq!(OpClass::Addition.to_string(), "Addition");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Adders/subtracters.
    Addition,
    /// Multipliers.
    Multiplication,
    /// Dividers.
    Division,
    /// Logic units.
    Logic,
    /// Shifters.
    Shift,
    /// Comparators.
    Comparison,
}

impl OpClass {
    /// All functional-unit classes, in a stable order.
    pub const ALL: [OpClass; 6] = [
        OpClass::Addition,
        OpClass::Multiplication,
        OpClass::Division,
        OpClass::Logic,
        OpClass::Shift,
        OpClass::Comparison,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Addition => "Addition",
            OpClass::Multiplication => "Multiplication",
            OpClass::Division => "Division",
            OpClass::Logic => "Logic",
            OpClass::Shift => "Shift",
            OpClass::Comparison => "Comparison",
        };
        f.write_str(s)
    }
}

/// Histogram of operations in a DFG or a subset of one.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
///
/// let h = benchmarks::ar_lattice_filter().op_histogram();
/// assert!(h.count_class(OpClass::Multiplication) > h.count_class(OpClass::Division));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpHistogram {
    counts: BTreeMap<Operation, usize>,
}

impl OpHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `op`.
    pub fn record(&mut self, op: Operation) {
        *self.counts.entry(op).or_insert(0) += 1;
    }

    /// Occurrences of an exact operation.
    #[must_use]
    pub fn count(&self, op: Operation) -> usize {
        self.counts.get(&op).copied().unwrap_or(0)
    }

    /// Occurrences of all operations in a functional-unit class.
    #[must_use]
    pub fn count_class(&self, class: OpClass) -> usize {
        self.counts.iter().filter(|(op, _)| op.class() == Some(class)).map(|(_, n)| n).sum()
    }

    /// Total number of recorded operations.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Iterates over `(operation, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Operation, usize)> + '_ {
        self.counts.iter().map(|(op, n)| (*op, *n))
    }

    /// The functional-unit classes present, in a stable order.
    #[must_use]
    pub fn classes(&self) -> Vec<OpClass> {
        let mut classes: Vec<OpClass> =
            OpClass::ALL.into_iter().filter(|c| self.count_class(*c) > 0).collect();
        classes.dedup();
        classes
    }
}

impl FromIterator<Operation> for OpHistogram {
    fn from_iter<I: IntoIterator<Item = Operation>>(iter: I) -> Self {
        let mut h = OpHistogram::new();
        for op in iter {
            h.record(op);
        }
        h
    }
}

impl fmt::Display for OpHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> =
            self.counts.iter().map(|(op, n)| format!("{op}×{n}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping() {
        assert_eq!(Operation::Sub.class(), Some(OpClass::Addition));
        assert_eq!(Operation::Mul.class(), Some(OpClass::Multiplication));
        assert_eq!(Operation::Input.class(), None);
        assert_eq!(Operation::MemRead(MemoryRef::new(1)).class(), None);
    }

    #[test]
    fn memory_ops_expose_block() {
        let m = MemoryRef::new(3);
        assert_eq!(Operation::MemWrite(m).memory(), Some(m));
        assert!(Operation::MemWrite(m).is_memory_access());
        assert_eq!(Operation::Add.memory(), None);
    }

    #[test]
    fn histogram_counts_by_class() {
        let h: OpHistogram = [Operation::Add, Operation::Sub, Operation::Mul, Operation::Input]
            .into_iter()
            .collect();
        assert_eq!(h.count_class(OpClass::Addition), 2);
        assert_eq!(h.count_class(OpClass::Multiplication), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.classes(), vec![OpClass::Addition, OpClass::Multiplication]);
    }

    #[test]
    fn histogram_display_nonempty() {
        let h: OpHistogram = [Operation::Add].into_iter().collect();
        assert!(h.to_string().contains('+'));
    }

    #[test]
    fn operand_arities() {
        assert_eq!(Operation::Input.max_operands(), Some(0));
        assert_eq!(Operation::Add.max_operands(), Some(2));
        assert_eq!(Operation::Output.max_operands(), Some(1));
    }
}
