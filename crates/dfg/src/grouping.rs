//! Node groupings and cut-value extraction.
//!
//! A [`Grouping`] assigns every DFG node to a group (a tentative partition).
//! From it CHOP derives the *data-transfer requirements* between partitions
//! — the amount of data that must cross each ordered pair of groups — and
//! extracts the induced sub-DFG of one group (with cut edges replaced by
//! primary I/O) that is handed to the BAD predictor, matching the paper's
//! assumption that "all inputs to partitions are … simultaneously available
//! before the execution starts" (§2.3).

use std::collections::BTreeMap;
use std::fmt;

use chop_stat::units::Bits;
use serde::{Deserialize, Serialize};

use crate::analysis::group_reaches;
use crate::graph::{Dfg, DfgBuilder, NodeId};
use crate::op::Operation;

/// Error constructing or using a [`Grouping`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupingError {
    /// The assignment vector length does not match the graph size.
    WrongLength {
        /// Nodes in the graph.
        expected: usize,
        /// Entries supplied.
        found: usize,
    },
    /// A node was assigned to a group index out of range.
    GroupOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Its assigned group.
        group: usize,
        /// Number of groups.
        groups: usize,
    },
    /// A group index was empty (every group must contain at least one node).
    EmptyGroup(usize),
    /// Two groups depend on each other's data (forbidden, paper §2.3).
    MutualDependency(usize, usize),
}

impl fmt::Display for GroupingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupingError::WrongLength { expected, found } => {
                write!(f, "assignment has {found} entries for a {expected}-node graph")
            }
            GroupingError::GroupOutOfRange { node, group, groups } => {
                write!(f, "node {node} assigned to group {group} of {groups}")
            }
            GroupingError::EmptyGroup(g) => write!(f, "group {g} contains no nodes"),
            GroupingError::MutualDependency(a, b) => {
                write!(f, "groups {a} and {b} have mutual data dependency")
            }
        }
    }
}

impl std::error::Error for GroupingError {}

/// A total assignment of DFG nodes to `group_count` groups.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, grouping::Grouping};
///
/// let g = benchmarks::ar_lattice_filter();
/// let single = Grouping::single(&g);
/// assert_eq!(single.group_count(), 1);
/// assert_eq!(single.members(0).len(), g.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grouping {
    assignment: Vec<usize>,
    group_count: usize,
}

impl Grouping {
    /// Creates a grouping from an explicit per-node assignment.
    ///
    /// # Errors
    ///
    /// Returns a [`GroupingError`] if the vector length mismatches the
    /// graph, an index is out of range, or a group is empty.
    pub fn new(
        dfg: &Dfg,
        group_count: usize,
        assignment: Vec<usize>,
    ) -> Result<Self, GroupingError> {
        if assignment.len() != dfg.len() {
            return Err(GroupingError::WrongLength {
                expected: dfg.len(),
                found: assignment.len(),
            });
        }
        let mut seen = vec![false; group_count];
        for (i, &g) in assignment.iter().enumerate() {
            if g >= group_count {
                return Err(GroupingError::GroupOutOfRange {
                    node: dfg.topo_order()[0], // placeholder replaced below
                    group: g,
                    groups: group_count,
                }
                .fix_node(dfg, i));
            }
            seen[g] = true;
        }
        if let Some(g) = seen.iter().position(|s| !s) {
            return Err(GroupingError::EmptyGroup(g));
        }
        Ok(Self { assignment, group_count })
    }

    /// Puts every node into a single group.
    #[must_use]
    pub fn single(dfg: &Dfg) -> Self {
        Self { assignment: vec![0; dfg.len()], group_count: 1 }
    }

    /// Splits the graph into `k` groups by a "horizontal cut" — the scheme
    /// the paper's experiments use for 2 and 3 partitions.
    ///
    /// Functional-unit operations are ranked topologically and divided into
    /// `k` contiguous slices of approximately equal *operation* count (so
    /// the datapath work is balanced); primary inputs and constants join
    /// the group of their earliest consumer, outputs and other non-FU
    /// nodes the group of their latest producer. The resulting cut only
    /// moves data forward, so no mutual dependency can arise.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the node count.
    #[must_use]
    pub fn horizontal(dfg: &Dfg, k: usize) -> Self {
        assert!(k >= 1 && k <= dfg.len(), "group count must be in 1..=len");
        let levels = crate::analysis::asap_levels(dfg);
        let mut fu_nodes: Vec<NodeId> = dfg
            .topo_order()
            .iter()
            .copied()
            .filter(|&id| dfg.node(id).op().class().is_some())
            .collect();
        // Order by ASAP level so slices are true horizontal bands of the
        // graph; ties broken by id for determinism.
        fu_nodes.sort_by_key(|id| (levels[id.index()], id.index()));
        if fu_nodes.len() < k {
            // Too few operations to balance: fall back to node-count slices.
            let order = dfg.topo_order();
            let mut assignment = vec![0usize; dfg.len()];
            for (pos, id) in order.iter().enumerate() {
                assignment[id.index()] = (pos * k / order.len()).min(k - 1);
            }
            return Self { assignment, group_count: k };
        }
        let mut assignment: Vec<Option<usize>> = vec![None; dfg.len()];
        for (rank, id) in fu_nodes.iter().enumerate() {
            assignment[id.index()] = Some((rank * k / fu_nodes.len()).min(k - 1));
        }
        // Downstream non-FU nodes (outputs, memory ops): latest producer.
        for &id in dfg.topo_order() {
            if assignment[id.index()].is_some() {
                continue;
            }
            let from_preds = dfg.pred_nodes(id).filter_map(|p| assignment[p.index()]).max();
            if let Some(g) = from_preds {
                assignment[id.index()] = Some(g);
            }
        }
        // Sources (inputs, constants): earliest consumer.
        for &id in dfg.topo_order().iter().rev() {
            if assignment[id.index()].is_some() {
                continue;
            }
            let from_succs = dfg.succ_nodes(id).filter_map(|s| assignment[s.index()]).min();
            assignment[id.index()] = Some(from_succs.unwrap_or(0));
        }
        let assignment: Vec<usize> = assignment.into_iter().map(|g| g.unwrap_or(0)).collect();
        Self { assignment, group_count: k }
    }

    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Group of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn group_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()]
    }

    /// Node ids belonging to a group.
    #[must_use]
    pub fn members(&self, group: usize) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &g)| g == group)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Moves one node to a different group, returning the updated grouping.
    ///
    /// This is the primitive behind the paper's "operation migrations from
    /// partition to partition" modification (§2.7).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range or `node` is invalid.
    #[must_use]
    pub fn with_node_moved(&self, node: NodeId, group: usize) -> Self {
        assert!(group < self.group_count, "target group out of range");
        let mut next = self.clone();
        next.assignment[node.index()] = group;
        next
    }

    /// Verifies that no two groups mutually depend on each other's data.
    ///
    /// # Errors
    ///
    /// Returns [`GroupingError::MutualDependency`] naming the first
    /// offending pair.
    pub fn check_no_mutual_dependency(&self, dfg: &Dfg) -> Result<(), GroupingError> {
        let members: Vec<Vec<NodeId>> =
            (0..self.group_count).map(|g| self.members(g)).collect();
        for a in 0..self.group_count {
            for b in (a + 1)..self.group_count {
                if group_reaches(dfg, &members[a], &members[b])
                    && group_reaches(dfg, &members[b], &members[a])
                {
                    return Err(GroupingError::MutualDependency(a, b));
                }
            }
        }
        Ok(())
    }
}

impl GroupingError {
    fn fix_node(self, dfg: &Dfg, index: usize) -> Self {
        if let GroupingError::GroupOutOfRange { group, groups, .. } = self {
            let node =
                dfg.node_ids().nth(index).expect("index checked against assignment length");
            GroupingError::GroupOutOfRange { node, group, groups }
        } else {
            self
        }
    }
}

/// Aggregated data crossing from one group to another (or to/from the
/// outside world).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutValue {
    /// Producing group.
    pub src_group: usize,
    /// Consuming group.
    pub dst_group: usize,
    /// Total bits crossing per initiation.
    pub bits: Bits,
    /// Number of distinct values crossing.
    pub values: usize,
}

/// Computes the aggregated cut values between every ordered pair of groups.
///
/// Each DFG edge whose endpoints lie in different groups contributes its
/// width once. Results are sorted by `(src_group, dst_group)`.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, grouping};
///
/// let g = benchmarks::ar_lattice_filter();
/// let parts = grouping::Grouping::horizontal(&g, 2);
/// let cuts = grouping::cut_values(&g, &parts);
/// assert!(!cuts.is_empty());
/// // A horizontal cut only moves data forward.
/// assert!(cuts.iter().all(|c| c.src_group <= c.dst_group));
/// ```
#[must_use]
pub fn cut_values(dfg: &Dfg, grouping: &Grouping) -> Vec<CutValue> {
    let mut agg: BTreeMap<(usize, usize), (u64, usize)> = BTreeMap::new();
    for (_, e) in dfg.edges() {
        let sg = grouping.group_of(e.src());
        let dg = grouping.group_of(e.dst());
        if sg != dg {
            let entry = agg.entry((sg, dg)).or_insert((0, 0));
            entry.0 += e.width().value();
            entry.1 += 1;
        }
    }
    agg.into_iter()
        .map(|((src_group, dst_group), (bits, values))| CutValue {
            src_group,
            dst_group,
            bits: Bits::new(bits),
            values,
        })
        .collect()
}

/// Extracts the induced sub-DFG of one group.
///
/// Values flowing *into* the group become fresh [`Operation::Input`] nodes
/// and values flowing *out* become [`Operation::Output`] nodes, so the
/// result is a self-contained behavioral specification suitable for
/// independent prediction — exactly the partition model BAD assumes.
///
/// # Panics
///
/// Panics if `group` is out of range (empty groups cannot occur in a valid
/// [`Grouping`]).
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, grouping};
///
/// let g = benchmarks::ar_lattice_filter();
/// let parts = grouping::Grouping::horizontal(&g, 3);
/// let sub = grouping::extract_group(&g, &parts, 1);
/// assert!(sub.len() > 0);
/// assert!(sub.validate().is_ok());
/// ```
#[must_use]
pub fn extract_group(dfg: &Dfg, grouping: &Grouping, group: usize) -> Dfg {
    extract_group_detailed(dfg, grouping, group).dfg
}

/// Where a node of an extracted group sub-graph came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupOrigin {
    /// A member node of the group (the original node id).
    Original(NodeId),
    /// A synthesized [`Operation::Input`] standing for a value produced by
    /// `source` in another group.
    CutInput {
        /// The original producer node.
        source: NodeId,
    },
    /// A synthesized [`Operation::Output`] exporting the value `source`
    /// produces to another group.
    CutOutput {
        /// The original producer node (a member of this group).
        source: NodeId,
    },
}

/// An extracted group sub-graph plus the origin of every sub node —
/// enough to wire partitioned execution back together (see
/// [`crate::eval`]).
#[derive(Debug, Clone)]
pub struct ExtractedGroup {
    /// The self-contained sub-graph.
    pub dfg: Dfg,
    /// Origin of each sub node, indexed by the sub node's id.
    pub origin: Vec<GroupOrigin>,
}

/// Like [`extract_group`], additionally reporting each sub node's origin.
///
/// # Panics
///
/// Panics if `group` is out of range.
#[must_use]
pub fn extract_group_detailed(dfg: &Dfg, grouping: &Grouping, group: usize) -> ExtractedGroup {
    assert!(group < grouping.group_count(), "group out of range");
    let mut b = DfgBuilder::new();
    let mut map: Vec<Option<NodeId>> = vec![None; dfg.len()];
    let mut origin: Vec<GroupOrigin> = Vec::new();
    for &id in dfg.topo_order() {
        if grouping.group_of(id) == group {
            let n = dfg.node(id);
            let new = match n.label() {
                Some(l) => b.labeled_node(n.op(), n.width(), l),
                None => b.node(n.op(), n.width()),
            };
            debug_assert_eq!(new.index(), origin.len());
            origin.push(GroupOrigin::Original(id));
            map[id.index()] = Some(new);
        }
    }
    for (_, e) in dfg.edges() {
        let sg = grouping.group_of(e.src());
        let dg = grouping.group_of(e.dst());
        match (sg == group, dg == group) {
            (true, true) => {
                let s = map[e.src().index()].expect("mapped");
                let d = map[e.dst().index()].expect("mapped");
                b.connect_with_width(s, d, e.width()).expect("ids valid");
            }
            (false, true) => {
                let input = b.node(Operation::Input, e.width());
                debug_assert_eq!(input.index(), origin.len());
                origin.push(GroupOrigin::CutInput { source: e.src() });
                let d = map[e.dst().index()].expect("mapped");
                b.connect_with_width(input, d, e.width()).expect("ids valid");
            }
            (true, false) => {
                let s = map[e.src().index()].expect("mapped");
                let output = b.node(Operation::Output, e.width());
                debug_assert_eq!(output.index(), origin.len());
                origin.push(GroupOrigin::CutOutput { source: e.src() });
                b.connect_with_width(s, output, e.width()).expect("ids valid");
            }
            (false, false) => {}
        }
    }
    let dfg = b.build().expect("group subgraph of an acyclic graph is acyclic and non-empty");
    ExtractedGroup { dfg, origin }
}

#[cfg(test)]
mod tests {
    use chop_stat::units::Bits;

    use super::*;
    use crate::graph::DfgBuilder;
    use crate::op::Operation;

    fn chain() -> Dfg {
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        let i = b.node(Operation::Input, w);
        let a = b.node(Operation::Add, w);
        let m = b.node(Operation::Mul, w);
        let o = b.node(Operation::Output, w);
        b.connect(i, a).unwrap();
        b.connect(i, a).unwrap();
        b.connect(a, m).unwrap();
        b.connect(a, m).unwrap();
        b.connect(m, o).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn single_grouping_covers_all() {
        let g = chain();
        let gr = Grouping::single(&g);
        assert_eq!(gr.members(0).len(), g.len());
        assert!(cut_values(&g, &gr).is_empty());
    }

    #[test]
    fn wrong_length_rejected() {
        let g = chain();
        assert!(matches!(
            Grouping::new(&g, 1, vec![0]),
            Err(GroupingError::WrongLength { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let g = chain();
        assert!(matches!(
            Grouping::new(&g, 1, vec![0, 0, 1, 0]),
            Err(GroupingError::GroupOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_group_rejected() {
        let g = chain();
        assert!(matches!(
            Grouping::new(&g, 3, vec![0, 0, 1, 1]),
            Err(GroupingError::EmptyGroup(2))
        ));
    }

    #[test]
    fn cut_values_aggregate_widths() {
        let g = chain();
        // Split: {input, add} vs {mul, output}. Two 16-bit values cross
        // (add feeds mul twice).
        let gr = Grouping::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let cuts = cut_values(&g, &gr);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].src_group, 0);
        assert_eq!(cuts[0].dst_group, 1);
        assert_eq!(cuts[0].bits, Bits::new(32));
        assert_eq!(cuts[0].values, 2);
    }

    #[test]
    fn horizontal_split_has_forward_cuts_only() {
        let g = chain();
        let gr = Grouping::horizontal(&g, 2);
        for c in cut_values(&g, &gr) {
            assert!(c.src_group < c.dst_group);
        }
        assert!(gr.check_no_mutual_dependency(&g).is_ok());
    }

    #[test]
    fn mutual_dependency_detected() {
        // i -> a -> m -> o with interleaved groups a∈0, m∈1 plus a second
        // chain m2 ∈ 1 feeding o2 ∈ 0 creates 0→1 and 1→0 flows.
        let mut b = DfgBuilder::new();
        let w = Bits::new(8);
        let i = b.node(Operation::Input, w);
        let a = b.node(Operation::Add, w);
        let m = b.node(Operation::Mul, w);
        let o = b.node(Operation::Output, w);
        b.connect(i, a).unwrap();
        b.connect(a, m).unwrap();
        b.connect(m, o).unwrap();
        let g = b.build().unwrap();
        // groups: i,a -> 0; m -> 1; o -> 0. Then 0 reaches 1 (a->m) and 1
        // reaches 0 (m->o).
        let gr = Grouping::new(&g, 2, vec![0, 0, 1, 0]).unwrap();
        assert!(matches!(
            gr.check_no_mutual_dependency(&g),
            Err(GroupingError::MutualDependency(0, 1))
        ));
    }

    #[test]
    fn extract_group_adds_io_at_cut() {
        let g = chain();
        let gr = Grouping::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let sub = extract_group(&g, &gr, 1);
        // mul + output + two fresh inputs.
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.inputs().count(), 2);
        assert_eq!(sub.outputs().count(), 1);
        assert!(sub.validate().is_ok());
    }

    #[test]
    fn extract_group_preserves_internal_structure() {
        let g = chain();
        let gr = Grouping::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let sub = extract_group(&g, &gr, 0);
        let hist = sub.op_histogram();
        assert_eq!(hist.count(Operation::Add), 1);
        assert_eq!(hist.count(Operation::Mul), 0);
        // The add's two results leaving the group become outputs.
        assert_eq!(sub.outputs().count(), 2);
    }

    #[test]
    fn with_node_moved_changes_only_one_node() {
        let g = chain();
        let gr = Grouping::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let node = gr.members(0)[1];
        let moved = gr.with_node_moved(node, 1);
        assert_eq!(moved.group_of(node), 1);
        assert_eq!(moved.members(0).len(), 1);
    }
}
