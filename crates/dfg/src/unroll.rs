//! Unrolling of inner loops with determinate iteration counts.
//!
//! CHOP requires the behavioral specification to be free of inner loops;
//! "inner loops with determinate iteration counts can be unrolled so that
//! the resulting data flow graph is acyclic" (paper §2.3, citing Park and
//! Paulin/Knight). [`LoopSpec`] captures a loop body with its loop-carried
//! values and [`LoopSpec::unroll`] produces the acyclic unrolled DFG.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::{Dfg, DfgBuilder, NodeId};
use crate::op::Operation;

/// Error building or unrolling a [`LoopSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// The trip count was zero.
    ZeroTripCount,
    /// A carried pair referenced a node that is not an output (source side)
    /// or not an input (destination side) of the body.
    BadCarriedPair {
        /// The offending source node.
        output: NodeId,
        /// The offending destination node.
        input: NodeId,
    },
    /// The same body input was listed as the destination of two carried
    /// pairs.
    DuplicateCarriedInput(NodeId),
}

impl fmt::Display for UnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrollError::ZeroTripCount => write!(f, "loop trip count must be at least 1"),
            UnrollError::BadCarriedPair { output, input } => {
                write!(f, "carried pair ({output} -> {input}) must map an output to an input")
            }
            UnrollError::DuplicateCarriedInput(n) => {
                write!(f, "body input {n} is the destination of two carried pairs")
            }
        }
    }
}

impl std::error::Error for UnrollError {}

/// An inner loop: an acyclic body plus loop-carried value pairs.
///
/// Each carried pair `(output, input)` means "the value this body output
/// produces in iteration *i* is what this body input consumes in iteration
/// *i + 1*".
///
/// # Examples
///
/// A one-operation accumulator loop `acc = acc + x[i]`, unrolled 4 times,
/// becomes a 4-addition chain:
///
/// ```
/// use chop_dfg::{DfgBuilder, Operation, unroll::LoopSpec};
/// use chop_stat::units::Bits;
///
/// let mut b = DfgBuilder::new();
/// let w = Bits::new(16);
/// let acc_in = b.node(Operation::Input, w);
/// let x = b.node(Operation::Input, w);
/// let sum = b.node(Operation::Add, w);
/// let acc_out = b.node(Operation::Output, w);
/// b.connect(acc_in, sum)?;
/// b.connect(x, sum)?;
/// b.connect(sum, acc_out)?;
/// let body = b.build()?;
///
/// let spec = LoopSpec::new(body, 4, vec![(acc_out, acc_in)])?;
/// let unrolled = spec.unroll();
/// let h = unrolled.op_histogram();
/// assert_eq!(h.count(Operation::Add), 4);
/// // 1 initial accumulator + 4 streaming inputs.
/// assert_eq!(unrolled.inputs().count(), 5);
/// // Only the final accumulator leaves the loop.
/// assert_eq!(unrolled.outputs().count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopSpec {
    body: Dfg,
    trip_count: u32,
    carried: Vec<(NodeId, NodeId)>,
}

impl LoopSpec {
    /// Creates a loop specification.
    ///
    /// # Errors
    ///
    /// Returns an [`UnrollError`] if `trip_count` is zero, a carried pair
    /// does not map a body output to a body input, or an input appears as
    /// the destination of two pairs.
    pub fn new(
        body: Dfg,
        trip_count: u32,
        carried: Vec<(NodeId, NodeId)>,
    ) -> Result<Self, UnrollError> {
        if trip_count == 0 {
            return Err(UnrollError::ZeroTripCount);
        }
        let mut seen_inputs = Vec::new();
        for &(out, inp) in &carried {
            let out_ok = out.index() < body.len() && body.node(out).op() == Operation::Output;
            let in_ok = inp.index() < body.len() && body.node(inp).op() == Operation::Input;
            if !out_ok || !in_ok {
                return Err(UnrollError::BadCarriedPair { output: out, input: inp });
            }
            if seen_inputs.contains(&inp) {
                return Err(UnrollError::DuplicateCarriedInput(inp));
            }
            seen_inputs.push(inp);
        }
        Ok(Self { body, trip_count, carried })
    }

    /// The loop body.
    #[must_use]
    pub fn body(&self) -> &Dfg {
        &self.body
    }

    /// The iteration count.
    #[must_use]
    pub fn trip_count(&self) -> u32 {
        self.trip_count
    }

    /// Unrolls the loop into a flat acyclic DFG.
    ///
    /// * Carried inputs of iteration 0 stay primary inputs (initial state);
    /// * carried outputs of the final iteration stay primary outputs;
    /// * intermediate carried values become direct edges — the Input/Output
    ///   node pair of the body disappears;
    /// * non-carried inputs/outputs are replicated once per iteration.
    #[must_use]
    pub fn unroll(&self) -> Dfg {
        let mut b = DfgBuilder::new();
        // For each iteration, the producer node feeding each carried output.
        let carried_src: Vec<NodeId> = self
            .carried
            .iter()
            .map(|&(out, _)| {
                self.body.pred_nodes(out).next().expect("a carried output must be driven")
            })
            .collect();
        // Previous iteration's mapped producer for each carried pair.
        let mut prev_carried: Vec<Option<NodeId>> = vec![None; self.carried.len()];
        for iter in 0..self.trip_count {
            let first = iter == 0;
            let last = iter + 1 == self.trip_count;
            let mut map: Vec<Option<NodeId>> = vec![None; self.body.len()];
            for &id in self.body.topo_order() {
                let n = self.body.node(id);
                let carried_in = self.carried.iter().position(|&(_, inp)| inp == id);
                let carried_out = self.carried.iter().position(|&(out, _)| out == id);
                if let Some(pair) = carried_in {
                    if first {
                        let new = b.node(Operation::Input, n.width());
                        map[id.index()] = Some(new);
                    } else {
                        // Consumers will be wired straight to the previous
                        // iteration's producer.
                        map[id.index()] = prev_carried[pair];
                    }
                } else if carried_out.is_some() && !last {
                    // Intermediate carried output disappears.
                    map[id.index()] = None;
                } else {
                    let new = match n.label() {
                        Some(l) => b.labeled_node(n.op(), n.width(), format!("{l}@{iter}")),
                        None => b.node(n.op(), n.width()),
                    };
                    map[id.index()] = Some(new);
                }
            }
            for (_, e) in self.body.edges() {
                let (Some(s), Some(d)) = (map[e.src().index()], map[e.dst().index()]) else {
                    continue;
                };
                b.connect_with_width(s, d, e.width()).expect("ids valid");
            }
            for (pair, src) in carried_src.iter().enumerate() {
                prev_carried[pair] = map[src.index()];
            }
        }
        b.build().expect("unrolled acyclic body stays acyclic")
    }
}

#[cfg(test)]
mod tests {
    use chop_stat::units::Bits;

    use super::*;

    fn accumulator_body() -> (Dfg, NodeId, NodeId) {
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        let acc_in = b.node(Operation::Input, w);
        let x = b.node(Operation::Input, w);
        let sum = b.node(Operation::Add, w);
        let acc_out = b.node(Operation::Output, w);
        b.connect(acc_in, sum).unwrap();
        b.connect(x, sum).unwrap();
        b.connect(sum, acc_out).unwrap();
        (b.build().unwrap(), acc_in, acc_out)
    }

    #[test]
    fn zero_trip_count_rejected() {
        let (body, acc_in, acc_out) = accumulator_body();
        assert_eq!(
            LoopSpec::new(body, 0, vec![(acc_out, acc_in)]).unwrap_err(),
            UnrollError::ZeroTripCount
        );
    }

    #[test]
    fn bad_pair_rejected() {
        let (body, acc_in, acc_out) = accumulator_body();
        // Swapped: input as source, output as destination.
        assert!(matches!(
            LoopSpec::new(body, 2, vec![(acc_in, acc_out)]),
            Err(UnrollError::BadCarriedPair { .. })
        ));
    }

    #[test]
    fn duplicate_carried_input_rejected() {
        let (body, acc_in, acc_out) = accumulator_body();
        assert!(matches!(
            LoopSpec::new(body, 2, vec![(acc_out, acc_in), (acc_out, acc_in)]),
            Err(UnrollError::DuplicateCarriedInput(_))
        ));
    }

    #[test]
    fn single_iteration_is_body_shaped() {
        let (body, acc_in, acc_out) = accumulator_body();
        let spec = LoopSpec::new(body.clone(), 1, vec![(acc_out, acc_in)]).unwrap();
        let u = spec.unroll();
        assert_eq!(u.len(), body.len());
        assert_eq!(u.op_histogram().count(Operation::Add), 1);
    }

    #[test]
    fn unroll_chains_adds() {
        let (body, acc_in, acc_out) = accumulator_body();
        let spec = LoopSpec::new(body, 5, vec![(acc_out, acc_in)]).unwrap();
        let u = spec.unroll();
        assert_eq!(u.op_histogram().count(Operation::Add), 5);
        assert_eq!(u.inputs().count(), 6); // initial acc + 5 stream inputs
        assert_eq!(u.outputs().count(), 1);
        // Depth of the additive chain = 5.
        let depth =
            crate::analysis::critical_path(&u, |_, n| u64::from(n.op().class().is_some()));
        assert_eq!(depth, 5);
        assert!(u.validate().is_ok());
    }

    #[test]
    fn nested_loops_unroll_by_composition() {
        // Inner: acc += x, 3 iterations → a 3-add chain with one carried
        // output. Outer: run that chain 2 times, carrying the accumulator
        // through → a 6-add chain. Nesting is plain composition of
        // LoopSpec::unroll.
        let (inner_body, acc_in, acc_out) = accumulator_body();
        let inner = LoopSpec::new(inner_body, 3, vec![(acc_out, acc_in)]).unwrap();
        let inner_unrolled = inner.unroll();
        assert_eq!(inner_unrolled.op_histogram().count(Operation::Add), 3);

        // Identify the inner result's carried ports in the unrolled graph:
        // the single output, and the accumulator input (the one feeding
        // the first add, distinguishable as the input whose consumer has
        // the smallest topo position — here simply the first input).
        let outer_acc_out = inner_unrolled.outputs().next().unwrap();
        let outer_acc_in = inner_unrolled.inputs().next().unwrap();
        let outer =
            LoopSpec::new(inner_unrolled, 2, vec![(outer_acc_out, outer_acc_in)]).unwrap();
        let full = outer.unroll();
        assert_eq!(full.op_histogram().count(Operation::Add), 6);
        assert_eq!(full.outputs().count(), 1);
        assert!(full.validate().is_ok());
        let depth =
            crate::analysis::critical_path(&full, |_, n| u64::from(n.op().class().is_some()));
        assert_eq!(depth, 6, "the nested recurrence is fully serial");
    }

    #[test]
    fn non_carried_outputs_replicated() {
        // Body: out2 observes the sum every iteration.
        let mut b = DfgBuilder::new();
        let w = Bits::new(8);
        let acc_in = b.node(Operation::Input, w);
        let x = b.node(Operation::Input, w);
        let sum = b.node(Operation::Add, w);
        let acc_out = b.node(Operation::Output, w);
        let probe = b.node(Operation::Output, w);
        b.connect(acc_in, sum).unwrap();
        b.connect(x, sum).unwrap();
        b.connect(sum, acc_out).unwrap();
        b.connect(sum, probe).unwrap();
        let body = b.build().unwrap();
        let spec = LoopSpec::new(body, 3, vec![(acc_out, acc_in)]).unwrap();
        let u = spec.unroll();
        // 3 probes + 1 final carried output.
        assert_eq!(u.outputs().count(), 4);
    }
}
