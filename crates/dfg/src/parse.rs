//! A small textual format for behavioral specifications.
//!
//! CHOP's input is "the behavioral specification in the form of a data
//! flow graph" (paper §2.2); this module gives that input a concrete
//! file format so the tool can be driven from disk:
//!
//! ```text
//! # one definition per line:  name = op operands...
//! x  = input 16          # primary input, explicit width
//! c  = const 16          # constant source, explicit width
//! s  = add x c           # add/sub/mul/div/logic/shift (width of operands)
//! t  = cmp s x           # comparison (1-bit result)
//! r  = read M0 x         # memory read: block, address operand
//! w  = write M0 x s      # memory write: block, address, data
//! y  = output s          # primary output
//! ```
//!
//! Identifiers are `[A-Za-z_][A-Za-z0-9_]*`; comments run from `#` to end
//! of line; memory blocks are `M<index>`. [`parse_dfg`] builds a validated
//! [`Dfg`]; [`to_text`] writes one back out (round-trip stable up to
//! whitespace).

use std::collections::HashMap;
use std::fmt;

use chop_stat::units::Bits;

use crate::graph::{Dfg, DfgBuilder, NodeId};
use crate::op::{MemoryRef, Operation};

/// Error from [`parse_dfg`], with the offending 1-based line and column.
///
/// Whole-graph errors (cycles found after the last line) carry
/// `line == 0` and `column == 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDfgError {
    /// 1-based line the error occurred on (0 for whole-graph errors).
    pub line: usize,
    /// 1-based column of the offending token (0 when unknown).
    pub column: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The line is not of the form `name = op operands…`.
    Malformed,
    /// The operation name is unknown.
    UnknownOp(String),
    /// An operand name was never defined.
    UnknownName(String),
    /// A name was defined twice.
    Redefined(String),
    /// A width or memory index failed to parse.
    BadNumber(String),
    /// Wrong operand count for the operation.
    WrongArity {
        /// The operation.
        op: String,
        /// Operands expected.
        expected: usize,
        /// Operands found.
        found: usize,
    },
    /// The finished graph failed structural validation.
    Graph(String),
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)?;
        if self.column > 0 {
            write!(f, ", column {}", self.column)?;
        }
        write!(f, ": ")?;
        match &self.kind {
            ParseErrorKind::Malformed => write!(f, "expected `name = op operands…`"),
            ParseErrorKind::UnknownOp(op) => write!(f, "unknown operation {op:?}"),
            ParseErrorKind::UnknownName(n) => write!(f, "undefined operand {n:?}"),
            ParseErrorKind::Redefined(n) => write!(f, "{n:?} defined twice"),
            ParseErrorKind::BadNumber(s) => write!(f, "bad number {s:?}"),
            ParseErrorKind::WrongArity { op, expected, found } => {
                write!(f, "{op} takes {expected} operand(s), found {found}")
            }
            ParseErrorKind::Graph(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for ParseDfgError {}

/// Parses the textual format into a validated [`Dfg`].
///
/// # Errors
///
/// Returns a [`ParseDfgError`] naming the offending line and column for
/// syntax errors, unknown names, redefinitions, arity mismatches and
/// structural failures (cycles).
///
/// # Examples
///
/// ```
/// use chop_dfg::parse::parse_dfg;
///
/// let g = parse_dfg(
///     "x = input 16\n\
///      y = input 16\n\
///      s = add x y\n\
///      o = output s\n",
/// )?;
/// assert_eq!(g.len(), 4);
/// assert!(g.validate().is_ok());
/// # Ok::<(), chop_dfg::parse::ParseDfgError>(())
/// ```
pub fn parse_dfg(text: &str) -> Result<Dfg, ParseDfgError> {
    let mut builder = DfgBuilder::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let err_at = |column: usize, kind| ParseDfgError { line, column, kind };
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let eq_byte = raw.find('=');
        // Column of a token on the left-hand side (the defined name).
        let lhs_col = |token: &str| token_column(raw, token, 0);
        // Column of a token on the right-hand side (op or operand), so a
        // name that also appears left of `=` is not matched there.
        let rhs_col = |token: &str| token_column(raw, token, eq_byte.map_or(0, |b| b + 1));
        let (name, rest) =
            content.split_once('=').ok_or_else(|| err_at(1, ParseErrorKind::Malformed))?;
        let name = name.trim();
        if name.is_empty() || !is_ident(name) {
            return Err(err_at(lhs_col(name), ParseErrorKind::Malformed));
        }
        if names.contains_key(name) {
            return Err(err_at(lhs_col(name), ParseErrorKind::Redefined(name.to_owned())));
        }
        let mut tokens = rest.split_whitespace();
        let op_token = tokens.next().ok_or_else(|| err_at(1, ParseErrorKind::Malformed))?;
        let op = op_token.to_ascii_lowercase();
        let op_col = rhs_col(op_token);
        let args: Vec<&str> = tokens.collect();
        let lookup = |names: &HashMap<String, NodeId>, n: &str| {
            names
                .get(n)
                .copied()
                .ok_or_else(|| err_at(rhs_col(n), ParseErrorKind::UnknownName(n.to_owned())))
        };
        let arity = |expected: usize| {
            if args.len() == expected {
                Ok(())
            } else {
                Err(err_at(
                    op_col,
                    ParseErrorKind::WrongArity { op: op.clone(), expected, found: args.len() },
                ))
            }
        };
        let parse_width = |s: &str| {
            s.parse::<u64>()
                .ok()
                .filter(|&w| w > 0)
                .map(Bits::new)
                .ok_or_else(|| err_at(rhs_col(s), ParseErrorKind::BadNumber(s.to_owned())))
        };
        let parse_mem = |s: &str| {
            s.strip_prefix('M')
                .and_then(|d| d.parse::<u32>().ok())
                .map(MemoryRef::new)
                .ok_or_else(|| err_at(rhs_col(s), ParseErrorKind::BadNumber(s.to_owned())))
        };
        let connect = |builder: &mut DfgBuilder, src: NodeId, dst: NodeId, operand: &str| {
            builder
                .connect(src, dst)
                .map(|_| ())
                .map_err(|e| err_at(rhs_col(operand), ParseErrorKind::Graph(e.to_string())))
        };

        let id = match op.as_str() {
            "input" | "const" => {
                arity(1)?;
                let width = parse_width(args[0])?;
                let operation = if op == "input" { Operation::Input } else { Operation::Const };
                builder.labeled_node(operation, width, name)
            }
            "add" | "sub" | "mul" | "div" | "logic" | "shift" => {
                arity(2)?;
                let a = lookup(&names, args[0])?;
                let b = lookup(&names, args[1])?;
                let width = builder_width(&builder, a);
                let operation = match op.as_str() {
                    "add" => Operation::Add,
                    "sub" => Operation::Sub,
                    "mul" => Operation::Mul,
                    "div" => Operation::Div,
                    "logic" => Operation::Logic,
                    _ => Operation::Shift,
                };
                let n = builder.labeled_node(operation, width, name);
                connect(&mut builder, a, n, args[0])?;
                connect(&mut builder, b, n, args[1])?;
                n
            }
            "cmp" => {
                arity(2)?;
                let a = lookup(&names, args[0])?;
                let b = lookup(&names, args[1])?;
                let n = builder.labeled_node(Operation::Compare, Bits::new(1), name);
                connect(&mut builder, a, n, args[0])?;
                connect(&mut builder, b, n, args[1])?;
                n
            }
            "read" => {
                arity(2)?;
                let mem = parse_mem(args[0])?;
                let addr = lookup(&names, args[1])?;
                let width = builder_width(&builder, addr);
                let n = builder.labeled_node(Operation::MemRead(mem), width, name);
                connect(&mut builder, addr, n, args[1])?;
                n
            }
            "write" => {
                arity(3)?;
                let mem = parse_mem(args[0])?;
                let addr = lookup(&names, args[1])?;
                let data = lookup(&names, args[2])?;
                let width = builder_width(&builder, data);
                let n = builder.labeled_node(Operation::MemWrite(mem), width, name);
                connect(&mut builder, addr, n, args[1])?;
                connect(&mut builder, data, n, args[2])?;
                n
            }
            "output" => {
                arity(1)?;
                let src = lookup(&names, args[0])?;
                let width = builder_width(&builder, src);
                let n = builder.labeled_node(Operation::Output, width, name);
                connect(&mut builder, src, n, args[0])?;
                n
            }
            other => return Err(err_at(op_col, ParseErrorKind::UnknownOp(other.to_owned()))),
        };
        names.insert(name.to_owned(), id);
    }
    let dfg = builder.build().map_err(|e| ParseDfgError {
        line: 0,
        column: 0,
        kind: ParseErrorKind::Graph(e.to_string()),
    })?;
    dfg.validate().map_err(|e| ParseDfgError {
        line: 0,
        column: 0,
        kind: ParseErrorKind::Graph(e.to_string()),
    })?;
    Ok(dfg)
}

/// 1-based character column of the first whole-token occurrence of
/// `token` in `raw` at or after byte offset `from`; falls back to 1 when
/// the token cannot be located (e.g. it was synthesized by the parser).
fn token_column(raw: &str, token: &str, from: usize) -> usize {
    if token.is_empty() || from > raw.len() {
        return 1;
    }
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut search = from;
    while let Some(rel) = raw[search..].find(token) {
        let start = search + rel;
        let end = start + token.len();
        let ok_before = raw[..start].chars().next_back().is_none_or(|c| !is_word(c));
        let ok_after = raw[end..].chars().next().is_none_or(|c| !is_word(c));
        if ok_before && ok_after {
            return raw[..start].chars().count() + 1;
        }
        search = start + token.len().max(1);
    }
    1
}

// DfgBuilder has no width getter; track it through a tiny shadow helper.
// (Widths are only needed for inheritance, and every node was created in
// this pass, so indexing by insertion order is safe.)
fn builder_width(builder: &DfgBuilder, id: NodeId) -> Bits {
    builder.width_of(id)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Writes a DFG back into the textual format (labels are preserved when
/// present, otherwise `n<i>` names are generated).
///
/// # Examples
///
/// ```
/// use chop_dfg::parse::{parse_dfg, to_text};
///
/// let src = "a = input 8\nb = output a\n";
/// let g = parse_dfg(src)?;
/// let round = parse_dfg(&to_text(&g))?;
/// assert_eq!(g.len(), round.len());
/// # Ok::<(), chop_dfg::parse::ParseDfgError>(())
/// ```
#[must_use]
pub fn to_text(dfg: &Dfg) -> String {
    use std::fmt::Write as _;
    let name = |id: NodeId| -> String {
        match dfg.node(id).label() {
            Some(l) if is_ident(l) => l.to_owned(),
            _ => format!("n{}", id.index()),
        }
    };
    let mut out = String::new();
    for &id in dfg.topo_order() {
        let n = dfg.node(id);
        let operands: Vec<String> = dfg.pred_nodes(id).map(name).collect();
        let line = match n.op() {
            Operation::Input => format!("{} = input {}", name(id), n.width().value()),
            Operation::Const => format!("{} = const {}", name(id), n.width().value()),
            Operation::Add => format!("{} = add {}", name(id), operands.join(" ")),
            Operation::Sub => format!("{} = sub {}", name(id), operands.join(" ")),
            Operation::Mul => format!("{} = mul {}", name(id), operands.join(" ")),
            Operation::Div => format!("{} = div {}", name(id), operands.join(" ")),
            Operation::Logic => format!("{} = logic {}", name(id), operands.join(" ")),
            Operation::Shift => format!("{} = shift {}", name(id), operands.join(" ")),
            Operation::Compare => format!("{} = cmp {}", name(id), operands.join(" ")),
            Operation::MemRead(m) => {
                format!("{} = read M{} {}", name(id), m.index(), operands.join(" "))
            }
            Operation::MemWrite(m) => {
                format!("{} = write M{} {}", name(id), m.index(), operands.join(" "))
            }
            Operation::Output => format!("{} = output {}", name(id), operands.join(" ")),
        };
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::OpClass;

    #[test]
    fn parse_simple_spec() {
        let g = parse_dfg(
            "# MAC kernel\n\
             x = input 16\n\
             c = const 16\n\
             p = mul x c\n\
             s = add p x\n\
             y = output s\n",
        )
        .unwrap();
        assert_eq!(g.len(), 5);
        let h = g.op_histogram();
        assert_eq!(h.count_class(OpClass::Multiplication), 1);
        assert_eq!(h.count_class(OpClass::Addition), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_dfg("\n# nothing\n  \nx = input 8\ny = output x # tail\n").unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn unknown_operand_reported_with_line_and_column() {
        let e = parse_dfg("x = input 8\ns = add x ghost\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 11); // "s = add x ghost" — ghost starts at column 11
        assert!(matches!(e.kind, ParseErrorKind::UnknownName(ref n) if n == "ghost"));
        assert_eq!(e.to_string(), "line 2, column 11: undefined operand \"ghost\"");
    }

    #[test]
    fn operand_column_skips_lhs_name() {
        // `x` also appears left of `=`; the column must point at the operand.
        let e = parse_dfg("q = input 8\nx = add x q\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 9);
        assert!(matches!(e.kind, ParseErrorKind::UnknownName(ref n) if n == "x"));
    }

    #[test]
    fn redefinition_rejected() {
        let e = parse_dfg("x = input 8\nx = input 8\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 1);
        assert!(matches!(e.kind, ParseErrorKind::Redefined(_)));
    }

    #[test]
    fn arity_checked() {
        let e = parse_dfg("x = input 8\ns = add x\n").unwrap_err();
        assert_eq!(e.column, 5); // points at the op token
        assert!(matches!(e.kind, ParseErrorKind::WrongArity { expected: 2, found: 1, .. }));
    }

    #[test]
    fn bad_width_rejected() {
        let e = parse_dfg("x = input zero\n").unwrap_err();
        assert_eq!(e.column, 11);
        assert!(matches!(e.kind, ParseErrorKind::BadNumber(_)));
        let e0 = parse_dfg("x = input 0\n").unwrap_err();
        assert!(matches!(e0.kind, ParseErrorKind::BadNumber(_)));
    }

    #[test]
    fn unknown_op_rejected() {
        let e = parse_dfg("x = frobnicate 8\n").unwrap_err();
        assert_eq!(e.column, 5);
        assert!(matches!(e.kind, ParseErrorKind::UnknownOp(_)));
    }

    #[test]
    fn malformed_line_points_at_start() {
        let e = parse_dfg("this line has no equals sign\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.column, 1);
        assert!(matches!(e.kind, ParseErrorKind::Malformed));
    }

    #[test]
    fn whole_graph_errors_carry_no_position() {
        // An output feeding another node only fails whole-graph validation.
        let e = parse_dfg("x = input 8\ny = output x\nz = output y\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert_eq!(e.column, 0);
        assert!(matches!(e.kind, ParseErrorKind::Graph(_)));
        assert!(e.to_string().starts_with("line 0: "));
    }

    #[test]
    fn column_counts_chars_not_bytes() {
        // A multi-byte comment before the error must not skew the column.
        let e = parse_dfg("x = input 8\ns = add x bogus # µ-op\n").unwrap_err();
        assert_eq!(e.column, 11);
    }

    #[test]
    fn memory_ops_parse() {
        let g = parse_dfg(
            "a = input 16\n\
             r = read M0 a\n\
             w = write M1 a r\n\
             y = output r\n",
        )
        .unwrap();
        let h = g.op_histogram();
        assert_eq!(h.count(Operation::MemRead(MemoryRef::new(0))), 1);
        assert_eq!(h.count(Operation::MemWrite(MemoryRef::new(1))), 1);
    }

    #[test]
    fn cmp_produces_one_bit() {
        let g = parse_dfg("a = input 16\nb = input 16\nc = cmp a b\ny = output c\n").unwrap();
        let cmp =
            g.nodes().find(|(_, n)| n.op() == Operation::Compare).map(|(id, _)| id).unwrap();
        assert_eq!(g.node(cmp).width().value(), 1);
    }

    #[test]
    fn round_trip_benchmarks() {
        for g in
            [benchmarks::ar_lattice_filter(), benchmarks::fir_filter(6), benchmarks::diffeq()]
        {
            let text = to_text(&g);
            let back = parse_dfg(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(back.len(), g.len());
            assert_eq!(back.edges().count(), g.edges().count());
            assert_eq!(back.op_histogram(), g.op_histogram());
        }
    }

    #[test]
    fn forward_references_rejected() {
        let e = parse_dfg("s = add x x\nx = input 8\n").unwrap_err();
        assert_eq!(e.line, 1);
    }
}
