//! The paper's workload (AR lattice filter, Fig. 6) and the classic
//! high-level-synthesis benchmarks used for extended experiments.
//!
//! The AR lattice filter is reconstructed with the canonical operation mix
//! of the HLS literature — 16 multiplications and 12 additions at 16 bits —
//! arranged as two levels of four lattice butterflies plus a combining adder
//! row (Fig. 6 of the paper is only partially legible; DESIGN.md documents
//! this substitution). The filter has no memory or I/O *operations*, only
//! primary inputs/outputs, exactly as the paper notes.

use chop_stat::units::Bits;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Dfg, DfgBuilder, NodeId};
use crate::op::Operation;

const W16: u64 = 16;

/// The AR lattice filter element of Fig. 6: 16 multiplications, 12
/// additions, 8 data inputs, 16 coefficient constants and 4 outputs.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
///
/// let ar = benchmarks::ar_lattice_filter();
/// let h = ar.op_histogram();
/// assert_eq!(h.count_class(OpClass::Multiplication), 16);
/// assert_eq!(h.count_class(OpClass::Addition), 12);
/// assert_eq!(ar.inputs().count(), 8);
/// assert_eq!(ar.outputs().count(), 4);
/// ```
#[must_use]
pub fn ar_lattice_filter() -> Dfg {
    let w = Bits::new(W16);
    let mut b = DfgBuilder::new();

    let xs: Vec<NodeId> =
        (0..4).map(|i| b.labeled_node(Operation::Input, w, format!("x{i}"))).collect();
    let ys: Vec<NodeId> =
        (0..4).map(|i| b.labeled_node(Operation::Input, w, format!("y{i}"))).collect();
    let mut coeff = {
        let mut k = 0;
        move |b: &mut DfgBuilder| {
            let c = b.labeled_node(Operation::Const, w, format!("c{k}"));
            k += 1;
            c
        }
    };

    // One lattice butterfly: s = u*cu + v*cv.
    let mut butterfly = |b: &mut DfgBuilder, u: NodeId, v: NodeId, tag: &str| {
        let cu = coeff(b);
        let cv = coeff(b);
        let m1 = b.labeled_node(Operation::Mul, w, format!("{tag}.m1"));
        let m2 = b.labeled_node(Operation::Mul, w, format!("{tag}.m2"));
        let s = b.labeled_node(Operation::Add, w, format!("{tag}.s"));
        b.connect(u, m1).expect("valid");
        b.connect(cu, m1).expect("valid");
        b.connect(v, m2).expect("valid");
        b.connect(cv, m2).expect("valid");
        b.connect(m1, s).expect("valid");
        b.connect(m2, s).expect("valid");
        s
    };

    // Level 1: four butterflies pairing x_i with y_i.
    let level1: Vec<NodeId> =
        (0..4).map(|i| butterfly(&mut b, xs[i], ys[i], &format!("l1b{i}"))).collect();

    // Level 2: four butterflies pairing neighbouring level-1 sums — the
    // lattice cross-links.
    let level2: Vec<NodeId> = (0..4)
        .map(|j| butterfly(&mut b, level1[j], level1[(j + 1) % 4], &format!("l2b{j}")))
        .collect();

    // Combining row: z_j = level2[j] + level1[(j+2) % 4].
    for j in 0..4 {
        let z = b.labeled_node(Operation::Add, w, format!("z{j}"));
        b.connect(level2[j], z).expect("valid");
        b.connect(level1[(j + 2) % 4], z).expect("valid");
        let out = b.labeled_node(Operation::Output, w, format!("out{j}"));
        b.connect(z, out).expect("valid");
    }

    let g = b.build().expect("AR filter is acyclic by construction");
    debug_assert!(g.validate().is_ok());
    g
}

/// A fifth-order elliptic wave filter with the canonical operation mix of
/// the HLS benchmark suite: 26 additions and 8 multiplications.
///
/// The exact EWF netlist is reconstructed as a serpentine adder backbone
/// with multiplier side-chains, preserving the benchmark's signature
/// properties: a long additive critical path (≈ 14 additions) and sparse
/// multiplications hanging off it.
///
/// # Examples
///
/// ```
/// use chop_dfg::{analysis, benchmarks, OpClass};
///
/// let g = benchmarks::elliptic_wave_filter();
/// let h = g.op_histogram();
/// assert_eq!(h.count_class(OpClass::Addition), 26);
/// assert_eq!(h.count_class(OpClass::Multiplication), 8);
/// let depth = analysis::critical_path(&g, |_, n| u64::from(n.op().class().is_some()));
/// assert!(depth >= 12);
/// ```
#[must_use]
pub fn elliptic_wave_filter() -> Dfg {
    let w = Bits::new(W16);
    let mut b = DfgBuilder::new();
    let input = b.labeled_node(Operation::Input, w, "in");
    let states: Vec<NodeId> =
        (0..7).map(|i| b.labeled_node(Operation::Input, w, format!("s{i}"))).collect();

    // Backbone: a chain of additions; every other stage mixes in a state
    // register or a multiplier side-chain until 26 adds and 8 muls are
    // placed.
    let mut adds = 0usize;
    let mut muls = 0usize;
    let mut frontier = input;
    let mut state_iter = states.iter().copied().cycle();
    let mut side_values: Vec<NodeId> = Vec::new();
    while adds < 26 {
        let other = if muls < 8 && adds % 3 == 1 {
            // Multiplier side-chain: state * backbone.
            let m = b.labeled_node(Operation::Mul, w, format!("m{muls}"));
            let s = state_iter.next().expect("cycle is infinite");
            b.connect(frontier, m).expect("valid");
            b.connect(s, m).expect("valid");
            muls += 1;
            m
        } else {
            state_iter.next().expect("cycle is infinite")
        };
        let a = b.labeled_node(Operation::Add, w, format!("a{adds}"));
        b.connect(frontier, a).expect("valid");
        b.connect(other, a).expect("valid");
        if adds % 5 == 4 {
            side_values.push(a);
        }
        frontier = a;
        adds += 1;
    }
    let out = b.labeled_node(Operation::Output, w, "out");
    b.connect(frontier, out).expect("valid");
    for (i, v) in side_values.into_iter().enumerate() {
        let o = b.labeled_node(Operation::Output, w, format!("tap{i}"));
        b.connect(v, o).expect("valid");
    }
    let g = b.build().expect("EWF is acyclic by construction");
    debug_assert!(g.validate().is_ok());
    g
}

/// An `n`-tap FIR filter: `n` multiplications and an `n-1`-addition
/// balanced reduction tree.
///
/// # Panics
///
/// Panics if `taps` is zero.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
///
/// let g = benchmarks::fir_filter(8);
/// let h = g.op_histogram();
/// assert_eq!(h.count_class(OpClass::Multiplication), 8);
/// assert_eq!(h.count_class(OpClass::Addition), 7);
/// ```
#[must_use]
pub fn fir_filter(taps: usize) -> Dfg {
    assert!(taps >= 1, "FIR filter needs at least one tap");
    let w = Bits::new(W16);
    let mut b = DfgBuilder::new();
    let mut products = Vec::with_capacity(taps);
    for i in 0..taps {
        let x = b.labeled_node(Operation::Input, w, format!("x{i}"));
        let c = b.labeled_node(Operation::Const, w, format!("h{i}"));
        let m = b.labeled_node(Operation::Mul, w, format!("p{i}"));
        b.connect(x, m).expect("valid");
        b.connect(c, m).expect("valid");
        products.push(m);
    }
    // Balanced adder tree.
    let mut layer = products;
    let mut k = 0;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let a = b.labeled_node(Operation::Add, w, format!("t{k}"));
                k += 1;
                b.connect(pair[0], a).expect("valid");
                b.connect(pair[1], a).expect("valid");
                next.push(a);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let out = b.labeled_node(Operation::Output, w, "y");
    b.connect(layer[0], out).expect("valid");
    let g = b.build().expect("FIR is acyclic by construction");
    debug_assert!(g.validate().is_ok());
    g
}

/// A radix-2 decimation-in-time FFT dataflow network with `stages` stages
/// over `2^stages` points (real-valued simplification: each butterfly is
/// one multiplication, one addition and one subtraction).
///
/// # Panics
///
/// Panics if `stages` is zero or greater than 10.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
///
/// let g = benchmarks::fft_network(3); // 8-point FFT
/// let h = g.op_histogram();
/// assert_eq!(h.count_class(OpClass::Multiplication), 12); // 3 stages × 4 butterflies
/// assert_eq!(h.count_class(OpClass::Addition), 24);
/// ```
#[must_use]
pub fn fft_network(stages: u32) -> Dfg {
    assert!((1..=10).contains(&stages), "stages must be in 1..=10");
    let n = 1usize << stages;
    let w = Bits::new(W16);
    let mut b = DfgBuilder::new();
    let mut values: Vec<NodeId> =
        (0..n).map(|i| b.labeled_node(Operation::Input, w, format!("x{i}"))).collect();
    for s in 0..stages {
        let half = 1usize << s;
        let mut next = values.clone();
        let mut pair_index = 0;
        let mut i = 0;
        while i < n {
            for j in 0..half {
                let a = values[i + j];
                let bb = values[i + j + half];
                let tw = b.labeled_node(Operation::Const, w, format!("w{s}_{pair_index}"));
                let t = b.labeled_node(Operation::Mul, w, format!("bt{s}_{pair_index}.t"));
                b.connect(bb, t).expect("valid");
                b.connect(tw, t).expect("valid");
                let hi = b.labeled_node(Operation::Add, w, format!("bt{s}_{pair_index}.hi"));
                let lo = b.labeled_node(Operation::Sub, w, format!("bt{s}_{pair_index}.lo"));
                b.connect(a, hi).expect("valid");
                b.connect(t, hi).expect("valid");
                b.connect(a, lo).expect("valid");
                b.connect(t, lo).expect("valid");
                next[i + j] = hi;
                next[i + j + half] = lo;
                pair_index += 1;
            }
            i += half * 2;
        }
        values = next;
    }
    for (i, v) in values.iter().enumerate() {
        let o = b.labeled_node(Operation::Output, w, format!("y{i}"));
        b.connect(*v, o).expect("valid");
    }
    let g = b.build().expect("FFT network is acyclic by construction");
    debug_assert!(g.validate().is_ok());
    g
}

/// The HAL differential-equation solver benchmark (`y'' + 3xy' + 3y = 0`):
/// 6 multiplications, 2 additions, 2 subtractions and a comparison.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass, Operation};
///
/// let g = benchmarks::diffeq();
/// let h = g.op_histogram();
/// assert_eq!(h.count_class(OpClass::Multiplication), 6);
/// assert_eq!(h.count(Operation::Add), 2);
/// assert_eq!(h.count(Operation::Sub), 2);
/// assert_eq!(h.count_class(OpClass::Comparison), 1);
/// ```
#[must_use]
pub fn diffeq() -> Dfg {
    let w = Bits::new(W16);
    let mut b = DfgBuilder::new();
    let x = b.labeled_node(Operation::Input, w, "x");
    let y = b.labeled_node(Operation::Input, w, "y");
    let u = b.labeled_node(Operation::Input, w, "u");
    let dx = b.labeled_node(Operation::Input, w, "dx");
    let a_limit = b.labeled_node(Operation::Input, w, "a");
    let three = b.labeled_node(Operation::Const, w, "3");

    // x1 = x + dx
    let x1 = b.labeled_node(Operation::Add, w, "x1");
    b.connect(x, x1).expect("valid");
    b.connect(dx, x1).expect("valid");
    // t1 = 3 * x;  t2 = u * dx;  t3 = t1 * t2  (3*x*u*dx)
    let t1 = b.labeled_node(Operation::Mul, w, "t1");
    b.connect(three, t1).expect("valid");
    b.connect(x, t1).expect("valid");
    let t2 = b.labeled_node(Operation::Mul, w, "t2");
    b.connect(u, t2).expect("valid");
    b.connect(dx, t2).expect("valid");
    let t3 = b.labeled_node(Operation::Mul, w, "t3");
    b.connect(t1, t3).expect("valid");
    b.connect(t2, t3).expect("valid");
    // t4 = 3 * y;  t5 = t4 * dx  (3*y*dx)
    let t4 = b.labeled_node(Operation::Mul, w, "t4");
    b.connect(three, t4).expect("valid");
    b.connect(y, t4).expect("valid");
    let t5 = b.labeled_node(Operation::Mul, w, "t5");
    b.connect(t4, t5).expect("valid");
    b.connect(dx, t5).expect("valid");
    // u1 = (u - t3) - t5
    let d1 = b.labeled_node(Operation::Sub, w, "d1");
    b.connect(u, d1).expect("valid");
    b.connect(t3, d1).expect("valid");
    let u1 = b.labeled_node(Operation::Sub, w, "u1");
    b.connect(d1, u1).expect("valid");
    b.connect(t5, u1).expect("valid");
    // y1 = y + u * dx
    let t6 = b.labeled_node(Operation::Mul, w, "t6");
    b.connect(u, t6).expect("valid");
    b.connect(dx, t6).expect("valid");
    let y1 = b.labeled_node(Operation::Add, w, "y1");
    b.connect(y, y1).expect("valid");
    b.connect(t6, y1).expect("valid");
    // c = x1 < a
    let c = b.labeled_node(Operation::Compare, Bits::new(1), "c");
    b.connect(x1, c).expect("valid");
    b.connect(a_limit, c).expect("valid");

    for (v, name, width) in
        [(x1, "x_out", w), (y1, "y_out", w), (u1, "u_out", w), (c, "c_out", Bits::new(1))]
    {
        let o = b.labeled_node(Operation::Output, width, name);
        b.connect_with_width(v, o, width).expect("valid");
    }
    let g = b.build().expect("diffeq is acyclic by construction");
    debug_assert!(g.validate().is_ok());
    g
}

/// An 8-point DCT butterfly/rotation network (simplified Loeffler
/// structure): a stage of 8 input butterflies, an even half computed as a
/// DCT-4 and an odd half of two rotation pairs — 12 multiplications and
/// 24 additions/subtractions.
///
/// # Examples
///
/// ```
/// use chop_dfg::{benchmarks, OpClass};
///
/// let g = benchmarks::dct8();
/// let h = g.op_histogram();
/// assert_eq!(h.count_class(OpClass::Multiplication), 12);
/// assert_eq!(h.count_class(OpClass::Addition), 24);
/// assert_eq!(g.inputs().count(), 8);
/// assert_eq!(g.outputs().count(), 8);
/// ```
#[must_use]
pub fn dct8() -> Dfg {
    let w = Bits::new(W16);
    let mut b = DfgBuilder::new();
    let x: Vec<NodeId> =
        (0..8).map(|i| b.labeled_node(Operation::Input, w, format!("x{i}"))).collect();
    let mut coeff_k = 0;
    let mut coeff = |b: &mut DfgBuilder| {
        let c = b.labeled_node(Operation::Const, w, format!("k{coeff_k}"));
        coeff_k += 1;
        c
    };
    let add = |b: &mut DfgBuilder, u: NodeId, v: NodeId, tag: String| {
        let n = b.labeled_node(Operation::Add, w, tag);
        b.connect(u, n).expect("valid");
        b.connect(v, n).expect("valid");
        n
    };
    let sub = |b: &mut DfgBuilder, u: NodeId, v: NodeId, tag: String| {
        let n = b.labeled_node(Operation::Sub, w, tag);
        b.connect(u, n).expect("valid");
        b.connect(v, n).expect("valid");
        n
    };
    // rot(u, v) = (u·c + v·s, v·c − u·s): 4 muls, one add, one sub.
    let mut rot = |b: &mut DfgBuilder, u: NodeId, v: NodeId, tag: &str| {
        let (c, s) = (coeff(b), coeff(b));
        let mul = |b: &mut DfgBuilder, a: NodeId, k: NodeId, t: String| {
            let n = b.labeled_node(Operation::Mul, w, t);
            b.connect(a, n).expect("valid");
            b.connect(k, n).expect("valid");
            n
        };
        let uc = mul(b, u, c, format!("{tag}.uc"));
        let vs = mul(b, v, s, format!("{tag}.vs"));
        let vc = mul(b, v, c, format!("{tag}.vc"));
        let us = mul(b, u, s, format!("{tag}.us"));
        let p = add(b, uc, vs, format!("{tag}.p"));
        let q = sub(b, vc, us, format!("{tag}.q"));
        (p, q)
    };

    // Stage 1: input butterflies.
    let s: Vec<NodeId> = (0..4).map(|i| add(&mut b, x[i], x[7 - i], format!("s{i}"))).collect();
    let d: Vec<NodeId> = (0..4).map(|i| sub(&mut b, x[i], x[7 - i], format!("d{i}"))).collect();

    // Even half: DCT-4 on s.
    let e0 = add(&mut b, s[0], s[3], "e0".into());
    let e1 = add(&mut b, s[1], s[2], "e1".into());
    let e2 = sub(&mut b, s[0], s[3], "e2".into());
    let e3 = sub(&mut b, s[1], s[2], "e3".into());
    let y0 = add(&mut b, e0, e1, "y0".into());
    let y4 = sub(&mut b, e0, e1, "y4".into());
    let (y2, y6) = rot(&mut b, e2, e3, "even_rot");

    // Odd half: two rotation pairs, then output butterflies.
    let (u0, v0) = rot(&mut b, d[0], d[3], "odd_rot0");
    let (u1, v1) = rot(&mut b, d[1], d[2], "odd_rot1");
    let y1 = add(&mut b, u0, u1, "y1".into());
    let y7 = sub(&mut b, u0, u1, "y7".into());
    let y5 = add(&mut b, v0, v1, "y5".into());
    let y3 = sub(&mut b, v0, v1, "y3".into());

    for (i, v) in [y0, y1, y2, y3, y4, y5, y6, y7].into_iter().enumerate() {
        let o = b.labeled_node(Operation::Output, w, format!("Y{i}"));
        b.connect(v, o).expect("valid");
    }
    let g = b.build().expect("DCT-8 is acyclic by construction");
    debug_assert!(g.validate().is_ok());
    g
}

/// Parameters for [`random_layered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDfgParams {
    /// Number of operation layers.
    pub layers: usize,
    /// Operations per layer.
    pub width: usize,
    /// Primary inputs feeding layer 0.
    pub inputs: usize,
    /// Percentage (0–100) of operations that are multiplications; the rest
    /// are additions/subtractions.
    pub mul_percent: u32,
    /// Data width of every value.
    pub bits: u64,
}

impl Default for RandomDfgParams {
    fn default() -> Self {
        Self { layers: 4, width: 6, inputs: 4, mul_percent: 40, bits: 16 }
    }
}

/// Generates a random layered DFG — useful for property tests and scaling
/// benchmarks beyond the paper's single workload.
///
/// Deterministic for a given `(seed, params)` pair.
///
/// # Panics
///
/// Panics if `layers`, `width` or `inputs` is zero.
///
/// # Examples
///
/// ```
/// use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
///
/// let g = random_layered(42, RandomDfgParams::default());
/// assert!(g.validate().is_ok());
/// let same = random_layered(42, RandomDfgParams::default());
/// assert_eq!(g.len(), same.len());
/// ```
#[must_use]
pub fn random_layered(seed: u64, params: RandomDfgParams) -> Dfg {
    assert!(params.layers >= 1, "need at least one layer");
    assert!(params.width >= 1, "need at least one op per layer");
    assert!(params.inputs >= 1, "need at least one input");
    let w = Bits::new(params.bits);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DfgBuilder::new();
    let mut previous: Vec<NodeId> = (0..params.inputs)
        .map(|i| b.labeled_node(Operation::Input, w, format!("x{i}")))
        .collect();
    for layer in 0..params.layers {
        let mut current = Vec::with_capacity(params.width);
        for i in 0..params.width {
            let op = if rng.gen_range(0..100) < params.mul_percent {
                Operation::Mul
            } else if rng.gen_bool(0.5) {
                Operation::Add
            } else {
                Operation::Sub
            };
            let n = b.labeled_node(op, w, format!("l{layer}o{i}"));
            let a = previous[rng.gen_range(0..previous.len())];
            let c = previous[rng.gen_range(0..previous.len())];
            b.connect(a, n).expect("valid");
            b.connect(c, n).expect("valid");
            current.push(n);
        }
        previous = current;
    }
    for (i, v) in previous.iter().enumerate() {
        let o = b.labeled_node(Operation::Output, w, format!("y{i}"));
        b.connect(*v, o).expect("valid");
    }
    let g = b.build().expect("layered graph is acyclic by construction");
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use crate::analysis::critical_path;
    use crate::op::OpClass;

    use super::*;

    #[test]
    fn ar_filter_shape() {
        let g = ar_lattice_filter();
        let h = g.op_histogram();
        assert_eq!(h.count_class(OpClass::Multiplication), 16);
        assert_eq!(h.count_class(OpClass::Addition), 12);
        assert_eq!(g.inputs().count(), 8);
        assert_eq!(g.outputs().count(), 4);
        assert!(g.validate().is_ok());
        // mul, add, mul, add, add — five FU operations on the critical path.
        let depth = critical_path(&g, |_, n| u64::from(n.op().class().is_some()));
        assert_eq!(depth, 5);
    }

    #[test]
    fn ewf_shape() {
        let g = elliptic_wave_filter();
        let h = g.op_histogram();
        assert_eq!(h.count_class(OpClass::Addition), 26);
        assert_eq!(h.count_class(OpClass::Multiplication), 8);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn fir_counts_scale_with_taps() {
        for taps in [1usize, 2, 5, 16] {
            let g = fir_filter(taps);
            let h = g.op_histogram();
            assert_eq!(h.count_class(OpClass::Multiplication), taps);
            assert_eq!(h.count_class(OpClass::Addition), taps - 1);
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn fft_counts() {
        let g = fft_network(2); // 4-point: 2 stages × 2 butterflies
        let h = g.op_histogram();
        assert_eq!(h.count_class(OpClass::Multiplication), 4);
        assert_eq!(h.count_class(OpClass::Addition), 8);
        assert_eq!(g.inputs().count(), 4);
        assert_eq!(g.outputs().count(), 4);
    }

    #[test]
    fn dct8_shape() {
        let g = dct8();
        let h = g.op_histogram();
        assert_eq!(h.count_class(OpClass::Multiplication), 12);
        assert_eq!(h.count_class(OpClass::Addition), 24);
        assert!(g.validate().is_ok());
        // butterfly → even butterfly → rotation mul → rotation add = depth 4.
        let depth = critical_path(&g, |_, n| u64::from(n.op().class().is_some()));
        assert_eq!(depth, 4);
    }

    #[test]
    fn diffeq_validates() {
        let g = diffeq();
        assert!(g.validate().is_ok());
        assert_eq!(g.outputs().count(), 4);
    }

    #[test]
    fn random_layered_is_deterministic() {
        let p = RandomDfgParams { layers: 6, width: 8, inputs: 5, mul_percent: 30, bits: 8 };
        let a = random_layered(7, p);
        let b = random_layered(7, p);
        assert_eq!(a, b);
        let c = random_layered(8, p);
        // Different seeds shuffle connectivity (sizes stay equal).
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn random_layered_depth_tracks_layers() {
        let g = random_layered(
            1,
            RandomDfgParams { layers: 10, width: 3, inputs: 2, mul_percent: 50, bits: 16 },
        );
        let depth = critical_path(&g, |_, n| u64::from(n.op().class().is_some()));
        assert_eq!(depth, 10);
    }
}
